"""Registry of external predicates and their directional implementations.

The paper (Section 2, "External Predicates"): an external predicate such
as ``decomp(N, LN, FN)`` "is implemented as a pair of functions ...
defined in the mediator specification".  Each implementation is declared
for an *adornment* — which arguments it needs bound ('b') and which it
produces ('f').  At execution time the engine picks an implementation
whose bound arguments are available ("having more than one function for
decomp gives flexibility at execution time"); when *all* arguments are
bound, any implementation can be used as a membership check (footnote 2).

Implementations are plain Python callables registered under a name.  A
callable receives the bound arguments in argument order and returns an
iterable of tuples for the free arguments (or, for fully-bound
adornments, a boolean).  Returning a single tuple / atom instead of an
iterable of tuples is accepted and normalised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

__all__ = [
    "ExternalFunctionError",
    "Implementation",
    "ExternalRegistry",
    "default_registry",
]


class ExternalFunctionError(Exception):
    """An external function is missing, misdeclared, or misbehaved."""


@dataclass(frozen=True, slots=True)
class Implementation:
    """One registered implementation of a predicate for one adornment."""

    predicate: str
    adornment: tuple[str, ...]
    function_name: str
    function: Callable[..., object]

    @property
    def bound_positions(self) -> tuple[int, ...]:
        return tuple(
            i for i, a in enumerate(self.adornment) if a == "b"
        )

    @property
    def free_positions(self) -> tuple[int, ...]:
        return tuple(
            i for i, a in enumerate(self.adornment) if a == "f"
        )

    def matches(self, bound: Sequence[bool]) -> bool:
        """Is this implementation callable given availability ``bound``?

        An argument declared bound must be available; an argument
        declared free may be available (we then post-filter on it).
        """
        if len(bound) != len(self.adornment):
            return False
        return all(
            available or letter == "f"
            for available, letter in zip(bound, self.adornment)
        )

    def specificity(self, bound: Sequence[bool]) -> int:
        """Prefer implementations that consume more of what's bound."""
        return sum(
            1
            for available, letter in zip(bound, self.adornment)
            if available and letter == "b"
        )


class ExternalRegistry:
    """Maps function names to callables and predicates to implementations.

    A mediator specification's ``EXT`` declarations name functions; the
    host application registers the actual Python callables here.  The
    split keeps specifications declarative while letting functions be
    "in principle written in any programming language".
    """

    def __init__(self) -> None:
        self._functions: dict[str, Callable[..., object]] = {}
        self._implementations: dict[str, list[Implementation]] = {}

    # -- function-level API ----------------------------------------------

    def register_function(
        self, name: str, function: Callable[..., object]
    ) -> None:
        """Register a callable under ``name`` (referenced by EXT ... BY name)."""
        if name in self._functions:
            raise ExternalFunctionError(
                f"function {name!r} is already registered"
            )
        self._functions[name] = function

    def function(self, name: str) -> Callable[..., object]:
        func = self._functions.get(name)
        if func is None:
            raise ExternalFunctionError(
                f"no registered function named {name!r}"
            )
        return func

    def has_function(self, name: str) -> bool:
        return name in self._functions

    # -- declaration-level API ---------------------------------------------

    def declare(
        self, predicate: str, adornment: Sequence[str], function_name: str
    ) -> None:
        """Attach a declared implementation to ``predicate``.

        Called by the mediator when it loads a specification's ``EXT``
        declarations.
        """
        impl = Implementation(
            predicate,
            tuple(adornment),
            function_name,
            self.function(function_name),
        )
        self._implementations.setdefault(predicate, []).append(impl)

    def implementations(self, predicate: str) -> list[Implementation]:
        return list(self._implementations.get(predicate, []))

    def select(
        self, predicate: str, bound: Sequence[bool]
    ) -> Implementation:
        """Pick the best implementation callable with availability ``bound``.

        Raises when no declared implementation fits — the rule is then
        unexecutable in that join order and the optimizer must reorder.
        """
        candidates = [
            impl
            for impl in self._implementations.get(predicate, [])
            if impl.matches(bound)
        ]
        if not candidates:
            raise ExternalFunctionError(
                f"no implementation of {predicate!r} callable with"
                f" bound-pattern {''.join('b' if b else 'f' for b in bound)}"
            )
        return max(candidates, key=lambda impl: impl.specificity(bound))

    # -- evaluation ----------------------------------------------------------

    def evaluate(
        self,
        predicate: str,
        args: Sequence[object],
        available: Sequence[bool],
    ) -> Iterable[tuple[object, ...]]:
        """Evaluate ``predicate`` and yield full argument tuples.

        ``args[i]`` holds the current value when ``available[i]``; free
        outputs are filled from the implementation's results.  Arguments
        that were available but declared free are post-filtered.
        """
        impl = self.select(predicate, available)
        call_args = [args[i] for i in impl.bound_positions]
        try:
            raw = impl.function(*call_args)
        except Exception as exc:  # surface with context, keep cause
            raise ExternalFunctionError(
                f"external function {impl.function_name!r} raised: {exc}"
            ) from exc

        free = impl.free_positions
        for out in _normalise(raw, len(free), impl):
            full = list(args)
            ok = True
            for position, value in zip(free, out):
                if available[position]:
                    if full[position] != value:
                        ok = False
                        break
                else:
                    full[position] = value
            if ok:
                yield tuple(full)

    def copy(self) -> "ExternalRegistry":
        """An independent copy (used to sandbox per-mediator declarations)."""
        clone = ExternalRegistry()
        clone._functions = dict(self._functions)
        clone._implementations = {
            predicate: list(impls)
            for predicate, impls in self._implementations.items()
        }
        return clone


def _normalise(
    raw: object, free_count: int, impl: Implementation
) -> Iterable[tuple[object, ...]]:
    """Coerce an implementation's return value into tuples of free values."""
    if free_count == 0:
        # fully bound: the function is a membership check
        if isinstance(raw, bool):
            return [()] if raw else []
        raise ExternalFunctionError(
            f"{impl.function_name!r} with fully-bound adornment must"
            f" return bool, got {raw!r}"
        )
    if raw is None or raw is False:
        return []
    if isinstance(raw, tuple) and len(raw) == free_count:
        return [raw]
    if isinstance(raw, (str, bytes, int, float, bool)):
        if free_count == 1:
            return [(raw,)]
        raise ExternalFunctionError(
            f"{impl.function_name!r} returned a single atom but"
            f" {free_count} free arguments are declared"
        )
    if isinstance(raw, Iterable):
        rows: list[tuple[object, ...]] = []
        for row in raw:
            if isinstance(row, tuple):
                if len(row) != free_count:
                    raise ExternalFunctionError(
                        f"{impl.function_name!r} yielded a tuple of arity"
                        f" {len(row)}, expected {free_count}"
                    )
                rows.append(row)
            elif free_count == 1:
                rows.append((row,))
            else:
                raise ExternalFunctionError(
                    f"{impl.function_name!r} yielded {row!r}, expected"
                    f" {free_count}-tuples"
                )
        return rows
    raise ExternalFunctionError(
        f"{impl.function_name!r} returned unsupported value {raw!r}"
    )


def default_registry() -> ExternalRegistry:
    """A registry preloaded with the standard library of functions."""
    from repro.external import functions

    registry = ExternalRegistry()
    for name, func in functions.STANDARD_FUNCTIONS.items():
        registry.register_function(name, func)
    return registry

"""External predicates: registry, declarations, standard functions."""

from repro.external.functions import (
    STANDARD_FUNCTIONS,
    add,
    check_name_lnfn,
    concat,
    lnfn_to_name,
    name_to_lnfn,
    split_at,
    string_of,
    to_lower,
    to_upper,
)
from repro.external.registry import (
    ExternalFunctionError,
    ExternalRegistry,
    Implementation,
    default_registry,
)

__all__ = [
    "STANDARD_FUNCTIONS",
    "ExternalFunctionError",
    "ExternalRegistry",
    "Implementation",
    "add",
    "check_name_lnfn",
    "concat",
    "default_registry",
    "lnfn_to_name",
    "name_to_lnfn",
    "split_at",
    "string_of",
    "to_lower",
    "to_upper",
]

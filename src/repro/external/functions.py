"""Standard external functions, including the paper's ``decomp`` pair.

The paper's running example declares

.. code-block:: text

    EXT decomp(bound, free, free) BY name_to_lnfn
    EXT decomp(free, bound, bound) BY lnfn_to_name

``name_to_lnfn`` decomposes a full name into (last, first);
``lnfn_to_name`` composes (last, first) back into a full name.  We add a
small library of similar value-translation functions that mediator
authors typically need (case normalisation, concatenation, arithmetic),
all usable through ``EXT`` declarations.
"""

from __future__ import annotations

from typing import Callable

__all__ = [
    "name_to_lnfn",
    "lnfn_to_name",
    "check_name_lnfn",
    "to_upper",
    "to_lower",
    "concat",
    "split_at",
    "string_of",
    "add",
    "STANDARD_FUNCTIONS",
]


def name_to_lnfn(name: object) -> list[tuple[str, str]]:
    """Decompose a full name into (last_name, first_name).

    The convention of the paper's sources: a full name is written
    ``'First Last'`` (possibly with middle parts attached to the first
    name), so ``'Joe Chung'`` decomposes to ``('Chung', 'Joe')``.
    Non-strings and unsplittable names yield no decomposition (the
    predicate simply fails, as a predicate should).
    """
    if not isinstance(name, str):
        return []
    parts = name.strip().rsplit(" ", 1)
    if len(parts) != 2 or not parts[0] or not parts[1]:
        return []
    first, last = parts
    return [(last, first)]


def lnfn_to_name(last: object, first: object) -> list[tuple[str]]:
    """Compose (last_name, first_name) into the full name ``'First Last'``."""
    if not isinstance(last, str) or not isinstance(first, str):
        return []
    if not last or not first:
        return []
    return [(f"{first} {last}",)]


def check_name_lnfn(name: object, last: object, first: object) -> bool:
    """Fully-bound check that ``name`` decomposes into (last, first).

    The paper's footnote 2: "if the implementor had provided a function
    check_name_lnfn that is called with all three parameters bound, we
    would simply call it".
    """
    return name_to_lnfn(name) == [(last, first)]


def to_upper(value: object) -> list[tuple[str]]:
    """Uppercase a string (adornment ``(bound, free)``)."""
    if not isinstance(value, str):
        return []
    return [(value.upper(),)]


def to_lower(value: object) -> list[tuple[str]]:
    """Lowercase a string (adornment ``(bound, free)``)."""
    if not isinstance(value, str):
        return []
    return [(value.lower(),)]


def concat(left: object, right: object) -> list[tuple[str]]:
    """Concatenate two strings (adornment ``(bound, bound, free)``)."""
    if not isinstance(left, str) or not isinstance(right, str):
        return []
    return [(left + right,)]


def split_at(value: object, separator: object) -> list[tuple[str, str]]:
    """Split ``value`` at the first ``separator``.

    Adornment ``(bound, bound, free, free)``.  Fails when the separator
    does not occur.
    """
    if not isinstance(value, str) or not isinstance(separator, str):
        return []
    head, sep, tail = value.partition(separator)
    if not sep:
        return []
    return [(head, tail)]


def string_of(value: object) -> list[tuple[str]]:
    """Render any atom as a string (adornment ``(bound, free)``)."""
    if isinstance(value, bool):
        return [("true" if value else "false",)]
    return [(str(value),)]


def add(left: object, right: object) -> list[tuple[object]]:
    """Numeric addition (adornment ``(bound, bound, free)``)."""
    if not isinstance(left, (int, float)) or not isinstance(
        right, (int, float)
    ):
        return []
    if isinstance(left, bool) or isinstance(right, bool):
        return []
    return [(left + right,)]


#: Functions preregistered in :func:`repro.external.registry.default_registry`.
STANDARD_FUNCTIONS: dict[str, Callable[..., object]] = {
    "name_to_lnfn": name_to_lnfn,
    "lnfn_to_name": lnfn_to_name,
    "check_name_lnfn": check_name_lnfn,
    "to_upper": to_upper,
    "to_lower": to_lower,
    "concat": concat,
    "split_at": split_at,
    "string_of": string_of,
    "add": add,
}

"""Hierarchical query spans: the tracing half of the telemetry subsystem.

A :class:`Span` is one timed unit of mediator work.  Spans form a tree
per user-visible query::

    query
    ├── view-expansion
    └── plan-stage 1..N
        └── plan-node
            ├── source-call
            ├── pattern-match
            └── external-predicate

Every span carries the ``query_id`` of its root, its parent's
``span_id``, start/end timestamps on an injectable monotonic
:class:`~repro.reliability.clock.Clock`, a status (``ok`` /
``degraded`` / ``cancelled`` / ``error``), the recording thread's name,
and a dict of typed attributes (rows in/out, cache hits, retry
attempts, breaker state, budget consumption — whatever the emitting
layer knows).

The *current* span travels in a :mod:`contextvars` context variable —
the same mechanism the execution layer's
:class:`~repro.exec.dispatcher.TaskScope` uses — so spans emitted from
:class:`~repro.exec.dispatcher.SourceDispatcher` worker threads parent
correctly without any plumbing through call signatures: the dispatcher
submits tasks with a copied context, and the copy carries the parent
span along.

Sampling is *head-based*: the keep/drop decision is made once, when the
root query span starts, from a seeded RNG — children of an unsampled
root are never materialized (creation returns a shared no-op span), so
an unsampled query costs a handful of attribute reads.  The one
exception is the **slow-query log**: the root span itself is always
timed, and a root that exceeds ``slow_query_ms`` is retained (and
listed in :attr:`Tracer.slow_queries`) even when sampling dropped it.
"""

from __future__ import annotations

import contextvars
import itertools
import random
import threading

from repro.reliability.clock import Clock, MonotonicClock

__all__ = [
    "Span",
    "SPAN_KINDS",
    "STATUSES",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "current_span",
]

#: The span kinds the mediator emits, from root to leaf.
SPAN_KINDS = (
    "query",
    "view-expansion",
    "plan-stage",
    "plan-node",
    "pipeline-stage",
    "source-call",
    "pattern-match",
    "external-predicate",
    "misestimate",
)

#: The terminal statuses a span may carry.
STATUSES = ("ok", "degraded", "cancelled", "error")

#: The span the current thread of control is inside (None outside one).
_CURRENT: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_span", default=None
)


def current_span() -> "Span | None":
    """The span new child spans would parent to (None outside a trace)."""
    span = _CURRENT.get()
    return None if span is _NOOP_SPAN else span


class Span:
    """One timed, attributed unit of work inside a query trace."""

    __slots__ = (
        "kind",
        "name",
        "span_id",
        "parent_id",
        "query_id",
        "start",
        "end",
        "status",
        "attributes",
        "thread",
        "sampled",
    )

    def __init__(
        self,
        kind: str,
        name: str,
        span_id: int,
        parent_id: int | None,
        query_id: str,
        start: float,
        sampled: bool = True,
    ) -> None:
        self.kind = kind
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.query_id = query_id
        self.start = start
        self.end: float | None = None
        self.status = "ok"
        self.attributes: dict[str, object] = {}
        self.thread = threading.current_thread().name
        self.sampled = sampled

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def set_status(self, status: str) -> None:
        if status not in STATUSES:
            raise ValueError(f"unknown span status {status!r}")
        self.status = status

    def to_dict(self) -> dict[str, object]:
        """A JSON-serializable record (the JSONL exporter's row)."""
        return {
            "record": "span",
            "query_id": self.query_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "thread": self.thread,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.kind} {self.name!r} id={self.span_id}"
            f" parent={self.parent_id} status={self.status})"
        )


class _NoopSpan(Span):
    """The shared do-nothing span handed out under an unsampled root.

    Mutators are no-ops, so emission sites never need to distinguish a
    real span from a dropped one; ``sampled`` is False, so children of
    a no-op span are no-op spans too.
    """

    def __init__(self) -> None:
        super().__init__("query", "<unsampled>", -1, None, "", 0.0, False)

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def set_status(self, status: str) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _SpanScope:
    """``with tracer.span(...)`` — install, yield, auto-close.

    A plain class (not a generator context manager): span scopes open
    on every traced plan node, and the generator protocol costs ~3x a
    slotted class on entry/exit.
    """

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._token = _CURRENT.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        _CURRENT.reset(self._token)
        span = self._span
        if exc is not None:
            self._tracer.finish_span(
                span, status=status_of_exception(exc)
            )
        elif span.end is None:
            self._tracer.finish_span(span)
        return False


class _UseScope:
    """``with tracer.use(span)`` — install as current, never close."""

    __slots__ = ("_span", "_token")

    def __init__(self, span: Span) -> None:
        self._span = span

    def __enter__(self) -> Span:
        self._token = _CURRENT.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        _CURRENT.reset(self._token)
        return False


class _NoopScope:
    """The shared scope for unsampled/disabled spans: pure no-op."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return _NOOP_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SCOPE = _NoopScope()


class Tracer:
    """Thread-safe producer and store of finished spans.

    * ``sample_rate`` — fraction of queries whose full span tree is
      kept (head-based, decided at the root; seeded, so runs are
      reproducible);
    * ``slow_query_ms`` — root spans at least this slow are always
      retained and listed in :attr:`slow_queries`, sampled or not;
    * ``max_spans`` — retention cap; once full, new spans are counted
      in :attr:`dropped` instead of stored (the trace stays a forest:
      only whole finished spans are dropped, never rewritten).
    """

    enabled = True

    def __init__(
        self,
        sample_rate: float = 1.0,
        slow_query_ms: float | None = None,
        max_spans: int = 100_000,
        seed: int = 0,
        clock: Clock | None = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate!r}"
            )
        if slow_query_ms is not None and slow_query_ms < 0:
            raise ValueError(
                f"slow_query_ms must be non-negative, got {slow_query_ms!r}"
            )
        if max_spans < 1:
            raise ValueError(f"max_spans must be positive, got {max_spans!r}")
        self.sample_rate = sample_rate
        self.slow_query_ms = slow_query_ms
        self.max_spans = max_spans
        self.clock = clock or MonotonicClock()
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        # span ids come from an itertools counter: next() on one is
        # atomic under the GIL, so the per-span hot path takes no lock
        self._span_ids = itertools.count(1)
        self._next_query = 1
        self.queries_started = 0
        self.queries_sampled = 0
        self.dropped = 0
        self.slow_queries: list[Span] = []

    # -- span production ---------------------------------------------------

    def start_query(self, name: str) -> Span:
        """Open the root span of a new query trace.

        The sampling decision is made here and inherited by every
        child.  The returned span is real even when unsampled — it must
        be timed for the slow-query log — but ``sampled`` is False, so
        all its descendants are no-ops.
        """
        with self._lock:
            query_id = f"q{self._next_query:06d}"
            self._next_query += 1
            self.queries_started += 1
            if self.sample_rate >= 1.0:
                sampled = True
            elif self.sample_rate <= 0.0:
                sampled = False
            else:
                sampled = self._rng.random() < self.sample_rate
            if sampled:
                self.queries_sampled += 1
        span = Span(
            "query", name, next(self._span_ids), None, query_id,
            self.clock.now(), sampled=sampled,
        )
        span.set_attribute("sampled", sampled)
        return span

    def start_span(
        self,
        kind: str,
        name: str,
        parent: Span | None = None,
    ) -> Span:
        """Open a child span under ``parent`` (default: the current span).

        Outside any query trace — or under an unsampled root — this
        returns the shared no-op span; emission sites treat it exactly
        like a real one.
        """
        if parent is None:
            parent = _CURRENT.get()
        if parent is None or not parent.sampled:
            return _NOOP_SPAN
        return Span(
            kind,
            name,
            next(self._span_ids),
            parent.span_id,
            parent.query_id,
            self.clock.now(),
        )

    def finish_span(self, span: Span, status: str | None = None) -> None:
        """Close ``span`` and retain it (subject to the retention cap)."""
        if span is _NOOP_SPAN:
            return
        span.end = self.clock.now()
        if status is not None:
            span.set_status(status)
        slow = (
            span.parent_id is None
            and self.slow_query_ms is not None
            and span.duration * 1000.0 >= self.slow_query_ms
        )
        if slow:
            span.set_attribute("slow", True)
        if not span.sampled and not slow:
            return
        with self._lock:
            if slow:
                self.slow_queries.append(span)
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(span)

    def span(
        self, kind: str, name: str, parent: Span | None = None
    ) -> "_SpanScope | _NoopScope":
        """``with tracer.span(...) as s:`` — open, install, auto-close.

        The span becomes the current span for the block, so nested
        emissions parent to it; an exception closes it with status
        ``error`` (``cancelled`` for a cooperative cancellation) and
        propagates.
        """
        opened = self.start_span(kind, name, parent=parent)
        if opened is _NOOP_SPAN:
            return _NOOP_SCOPE
        return _SpanScope(self, opened)

    def use(self, span: Span) -> _UseScope:
        """Install an already-open span as current for a ``with`` block."""
        return _UseScope(span)

    # -- introspection -----------------------------------------------------

    def spans(self) -> list[Span]:
        """A snapshot of every retained finished span, in finish order."""
        with self._lock:
            return list(self._spans)

    def forest(self) -> dict[str, list[Span]]:
        """Retained spans grouped by ``query_id`` (insertion-ordered)."""
        grouped: dict[str, list[Span]] = {}
        for span in self.spans():
            grouped.setdefault(span.query_id, []).append(span)
        return grouped

    def clear(self) -> None:
        """Drop retained spans and the slow-query log (counters kept)."""
        with self._lock:
            self._spans.clear()
            self.slow_queries.clear()

    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "enabled": True,
                "sample_rate": self.sample_rate,
                "slow_query_ms": self.slow_query_ms,
                "queries_started": self.queries_started,
                "queries_sampled": self.queries_sampled,
                "spans_retained": len(self._spans),
                "spans_dropped": self.dropped,
                "slow_queries": len(self.slow_queries),
            }

    def __repr__(self) -> str:
        return (
            f"Tracer(sample_rate={self.sample_rate},"
            f" {len(self.spans())} span(s))"
        )


class NoopTracer:
    """The disabled tracer: every operation is a cheap no-op.

    Call sites guard on :attr:`enabled` (or hold ``None`` instead), so
    a disabled mediator pays one attribute check per potential emission
    point — asserted "within noise" by ``benchmarks/bench_obs.py``.
    """

    enabled = False
    sample_rate = 0.0
    slow_query_ms = None

    def start_query(self, name: str) -> Span:
        return _NOOP_SPAN

    def start_span(
        self, kind: str, name: str, parent: Span | None = None
    ) -> Span:
        return _NOOP_SPAN

    def finish_span(self, span: Span, status: str | None = None) -> None:
        pass

    def span(
        self, kind: str, name: str, parent: Span | None = None
    ) -> _NoopScope:
        return _NOOP_SCOPE

    def use(self, span: Span) -> _NoopScope:
        return _NOOP_SCOPE

    def spans(self) -> list[Span]:
        return []

    def forest(self) -> dict[str, list[Span]]:
        return {}

    def clear(self) -> None:
        pass

    @property
    def slow_queries(self) -> list[Span]:
        return []

    def stats(self) -> dict[str, object]:
        return {"enabled": False}

    def __repr__(self) -> str:
        return "NoopTracer()"


#: The shared disabled tracer (stateless, safe to share everywhere).
NOOP_TRACER = NoopTracer()


def status_of_exception(exc: BaseException) -> str:
    """The span status an exception maps to.

    Cooperative cancellation is ``cancelled``; everything else is
    ``error``.  Matching is by class name, keeping this module free of
    upward dependencies on the governor.
    """
    for klass in type(exc).__mro__:
        if klass.__name__ == "QueryCancelled":
            return "cancelled"
    return "error"

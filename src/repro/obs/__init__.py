"""Unified telemetry: hierarchical query spans, metrics, exporters.

PRs 1–4 each grew their own introspection surface — ``TraceEntry``
tables, ``explain()`` text sections, ``health_snapshot()``, the
``Profiler``, cache and dispatcher stats.  This package is the one
subsystem they all emit into:

* :mod:`repro.obs.span` — a thread-safe :class:`Tracer` producing
  hierarchical spans (query → view-expansion → plan-stage →
  plan-node → source-call / pattern-match / external-predicate) with
  head-based sampling and a slow-query log; span context propagates
  across :class:`~repro.exec.dispatcher.SourceDispatcher` worker
  threads via :mod:`contextvars`;
* :mod:`repro.obs.metrics` — a central :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket histograms, with pull-time
  collectors that absorb counters living in other layers at zero
  query-path cost;
* :mod:`repro.obs.exporters` — :class:`JsonLinesExporter` (jq-able
  span/metric rows), :class:`PrometheusTextExporter` (text exposition
  via ``Mediator.metrics_text()``), :class:`ConsoleTreeExporter`
  (indented span trees);
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade a
  :class:`~repro.mediator.mediator.Mediator` owns; disabled (the
  default) it costs one attribute check per potential emission point.

See ``docs/observability.md`` for the span model, the metric catalog
and the exporter formats.
"""

from repro.obs.exporters import (
    ConsoleTreeExporter,
    JsonLinesExporter,
    PrometheusTextExporter,
)
from repro.obs.insight import AnalyzeReport, NodeObservation, QueryInsight
from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_QERROR_BUCKETS,
    DEFAULT_ROWS_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
)
from repro.obs.span import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    SPAN_KINDS,
    Tracer,
    current_span,
)
from repro.obs.telemetry import Telemetry

__all__ = [
    "AnalyzeReport",
    "ConsoleTreeExporter",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_QERROR_BUCKETS",
    "DEFAULT_ROWS_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonLinesExporter",
    "MetricsRegistry",
    "NOOP_TRACER",
    "NodeObservation",
    "NoopTracer",
    "PrometheusTextExporter",
    "QueryInsight",
    "Sample",
    "Span",
    "SPAN_KINDS",
    "Telemetry",
    "Tracer",
    "current_span",
]

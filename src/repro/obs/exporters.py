"""Pluggable exporters: JSON lines, Prometheus text, console span tree.

Exporters are pure views over a :class:`~repro.obs.span.Tracer` and a
:class:`~repro.obs.metrics.MetricsRegistry` — they never mutate either,
so exporting is safe mid-workload and can run on any thread.

* :class:`JsonLinesExporter` — one JSON object per line: every span as
  a ``{"record": "span", ...}`` row, every metric series as a
  ``{"record": "metric", ...}`` row.  The shape is jq-friendly::

      jq -r 'select(.record=="span" and .kind=="source-call")
             | [.name, .duration] | @tsv' trace.jsonl

* :class:`PrometheusTextExporter` — the text exposition format
  (``# TYPE`` headers, ``name{label="v"} value`` samples, classic
  histogram ``_bucket``/``_sum``/``_count`` series); served by
  ``Mediator.metrics_text()`` and linted by
  ``tools/lint_prometheus.py``.

* :class:`ConsoleTreeExporter` — renders each query's span tree as an
  indented outline (the real-span counterpart of ``explain()``'s
  trace section), with durations, statuses and selected attributes.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Span, Tracer

__all__ = [
    "JsonLinesExporter",
    "PrometheusTextExporter",
    "ConsoleTreeExporter",
]


class JsonLinesExporter:
    """Serialize spans and metric series as JSON, one object per line."""

    def span_lines(self, spans: Iterable[Span]) -> list[str]:
        return [
            json.dumps(span.to_dict(), sort_keys=True, default=str)
            for span in spans
        ]

    def metric_lines(self, registry: MetricsRegistry) -> list[str]:
        lines: list[str] = []
        for name, entry in sorted(registry.snapshot().items()):
            for labels, value in sorted(entry["series"].items()):
                lines.append(
                    json.dumps(
                        {
                            "record": "metric",
                            "name": name,
                            "type": entry["type"],
                            "labels": labels,
                            "value": value,
                        },
                        sort_keys=True,
                        default=str,
                    )
                )
        return lines

    def export(
        self,
        handle: IO[str],
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
    ) -> int:
        """Write spans then metrics to ``handle``; returns lines written."""
        lines: list[str] = []
        if tracer is not None:
            lines.extend(self.span_lines(tracer.spans()))
        if registry is not None:
            lines.extend(self.metric_lines(registry))
        for line in lines:
            handle.write(line + "\n")
        return len(lines)

    def export_path(
        self,
        path: str,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
    ) -> int:
        with open(path, "w") as handle:
            return self.export(handle, tracer=tracer, registry=registry)


class PrometheusTextExporter:
    """The Prometheus text exposition format, as one string."""

    def render(self, registry: MetricsRegistry) -> str:
        return registry.render_prometheus()

    def export_path(self, path: str, registry: MetricsRegistry) -> None:
        with open(path, "w") as handle:
            handle.write(self.render(registry))


#: Attributes surfaced inline by the console tree (when present).
_TREE_ATTRIBUTES = (
    "rows_in",
    "rows_out",
    "rows",
    "objects",
    "matches",
    "estimated_rows",
    "actual_rows",
    "correction",
    "attempts",
    "cache_hit",
    "degraded",
    "breaker",
    "result_objects",
    "warnings",
)


class ConsoleTreeExporter:
    """Render each query's span tree as an indented text outline."""

    def __init__(self, show_attributes: bool = True) -> None:
        self.show_attributes = show_attributes

    def render(self, tracer: Tracer) -> str:
        blocks = [
            self.render_query(query_id, spans)
            for query_id, spans in tracer.forest().items()
        ]
        return "\n\n".join(blocks) if blocks else "no spans recorded"

    def render_query(self, query_id: str, spans: list[Span]) -> str:
        children: dict[int | None, list[Span]] = {}
        for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
            children.setdefault(span.parent_id, []).append(span)
        roots = children.get(None, [])
        lines: list[str] = []

        def emit(span: Span, depth: int) -> None:
            lines.append("  " * depth + self._line(span))
            for child in children.get(span.span_id, []):
                emit(child, depth + 1)

        for root in roots:
            emit(root, 0)
        # orphans (parent dropped by the retention cap) still render,
        # flagged, so a clipped trace is visibly clipped
        known = {span.span_id for span in spans}
        for span in sorted(spans, key=lambda s: s.span_id):
            if span.parent_id is not None and span.parent_id not in known:
                lines.append(f"(orphan) {self._line(span)}")
        return f"[{query_id}]\n" + "\n".join(lines)

    def _line(self, span: Span) -> str:
        status = "" if span.status == "ok" else f" [{span.status}]"
        attrs = ""
        if self.show_attributes:
            shown = [
                f"{key}={span.attributes[key]}"
                for key in _TREE_ATTRIBUTES
                if key in span.attributes
            ]
            if shown:
                attrs = " (" + ", ".join(shown) + ")"
        return (
            f"{span.kind}: {span.name}"
            f" — {span.duration * 1000:.3f}ms{status}{attrs}"
        )

"""The central metrics registry: counters, gauges, histograms, collectors.

Before this subsystem the mediator's operational counters were
scattered: :class:`~repro.exec.cache.AnswerCache` kept hit/miss dicts,
the dispatcher counted single-flight dedups, the health registry held
bespoke latency percentile code, the compile cache its own hit/miss
pair.  The :class:`MetricsRegistry` is the one place they all surface:

* **instruments** — :class:`Counter`, :class:`Gauge` and fixed-bucket
  :class:`Histogram` objects created through the registry; hot paths
  hold the instrument and record into it directly (one small lock per
  instrument);
* **collectors** — zero-cost absorption of counters that already live
  elsewhere: a collector is a callable returning :class:`Sample`
  records, invoked only at snapshot/render time, so attaching one to a
  cache or dispatcher adds nothing to the query path.

Histograms use fixed upper-bound buckets (Prometheus classic style)
and derive p50/p95/p99 by linear interpolation inside the winning
bucket — replacing the per-source sliding-window percentile code as the
*reported* figure while the window stays for API compatibility.

Metric names follow Prometheus conventions (``repro_*``, base units,
``_total`` suffix on counters); the catalog lives in
``docs/observability.md``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_QERROR_BUCKETS",
    "DEFAULT_ROWS_BUCKETS",
]

#: Upper bounds (seconds) for latency-shaped histograms.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Upper bounds for row/object-count histograms.
DEFAULT_ROWS_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 10000,
)

#: Upper bounds for estimate q-error (max(est/act, act/est) >= 1)
#: histograms — 1.0 is a perfect estimate, each bucket one step of
#: "how wrong", the tail catching pathological misestimates.
DEFAULT_QERROR_BUCKETS: tuple[float, ...] = (
    1.0, 1.5, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0, 1024.0,
)

LabelValues = tuple[str, ...]


@dataclass(frozen=True)
class Sample:
    """One exported time-series point (collector output / snapshot row)."""

    name: str
    kind: str  # "counter" | "gauge"
    value: float
    labels: tuple[tuple[str, str], ...] = ()
    help: str = ""


def _label_values(
    labelnames: Sequence[str], labels: Mapping[str, object]
) -> LabelValues:
    if not labelnames and not labels:  # the common unlabeled fast path
        return ()
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {list(labelnames)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Metric:
    """Shared shape: name, help text, declared label names, one lock."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _labels_pairs(
        self, values: LabelValues
    ) -> tuple[tuple[str, str], ...]:
        return tuple(zip(self.labelnames, values))

    def labels(self, **labels: object):
        """A child bound to one label-value combination.

        The child records without per-call label resolution (no kwargs,
        no validation, no tuple building), so hot paths that emit for
        the same series every time — per-plan-node rows, per-source
        calls — cache the child once and pay only the lock + add.
        """
        key = _label_values(self.labelnames, labels)
        return self._child(key)

    def _child(self, key: LabelValues):
        raise NotImplementedError


class _BoundCounter:
    """A Counter/Gauge child with its label values pre-resolved."""

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: "_Metric", key: LabelValues) -> None:
        self._metric = metric
        self._key = key

    def inc(self, amount: float = 1) -> None:
        metric = self._metric
        with metric._lock:
            metric._values[self._key] = (
                metric._values.get(self._key, 0) + amount
            )

    def set(self, value: float) -> None:
        metric = self._metric
        with metric._lock:
            metric._values[self._key] = value


class _BoundHistogram:
    """A Histogram child with its label values pre-resolved."""

    __slots__ = ("_metric", "_series")

    def __init__(self, metric: "Histogram", key: LabelValues) -> None:
        self._metric = metric
        with metric._lock:
            self._series = metric._series_for(key)

    def observe(self, value: float) -> None:
        metric = self._metric
        lo = bisect_left(metric.bounds, value)
        series = self._series
        with metric._lock:
            series.counts[lo] += 1
            series.total += value
            series.count += 1
            if value < series.minimum:
                series.minimum = value
            if value > series.maximum:
                series.maximum = value


class Counter(_Metric):
    """A monotonically increasing count (per label-value combination)."""

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[LabelValues, float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_values(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        key = _label_values(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0)

    def _child(self, key: LabelValues) -> _BoundCounter:
        return _BoundCounter(self, key)

    def samples(self) -> list[Sample]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            Sample(self.name, self.kind, value, self._labels_pairs(key),
                   self.help)
            for key, value in items
        ] or [Sample(self.name, self.kind, 0, (), self.help)]


class Gauge(_Metric):
    """A value that goes up and down (per label-value combination)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[LabelValues, float] = {}

    def set(self, value: float, **labels: object) -> None:
        key = _label_values(self.labelnames, labels)
        with self._lock:
            self._values[key] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = _label_values(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        key = _label_values(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0)

    def _child(self, key: LabelValues) -> _BoundCounter:
        return _BoundCounter(self, key)

    def samples(self) -> list[Sample]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            Sample(self.name, self.kind, value, self._labels_pairs(key),
                   self.help)
            for key, value in items
        ] or [Sample(self.name, self.kind, 0, (), self.help)]


@dataclass
class _HistogramSeries:
    """Bucket counts + sum + count for one label-value combination."""

    counts: list[int]
    total: float = 0.0
    count: int = 0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))


class Histogram(_Metric):
    """A fixed-bucket distribution (Prometheus classic histogram).

    ``observe`` is a binary search plus three adds under the metric's
    lock — cheap enough for per-source-call and per-plan-node emission.
    Quantiles are derived from the buckets: nearest bucket by
    cumulative count, linearly interpolated between its bounds (the
    final +Inf bucket reports the maximum observed value instead of
    infinity, so p99 of a well-bucketed series is always finite).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be distinct")
        self.bounds = bounds
        self._series: dict[LabelValues, _HistogramSeries] = {}

    def _series_for(self, key: LabelValues) -> _HistogramSeries:
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(
                [0] * (len(self.bounds) + 1)
            )
        return series

    def observe(self, value: float, **labels: object) -> None:
        key = _label_values(self.labelnames, labels)
        # binary search (C-level) for the first bound >= value
        lo = bisect_left(self.bounds, value)
        with self._lock:
            series = self._series_for(key)
            series.counts[lo] += 1
            series.total += value
            series.count += 1
            if value < series.minimum:
                series.minimum = value
            if value > series.maximum:
                series.maximum = value

    def _child(self, key: LabelValues) -> _BoundHistogram:
        return _BoundHistogram(self, key)

    def quantile(self, q: float, **labels: object) -> float:
        """The estimated ``q`` (0..1) quantile for one series.

        0.0 before any observation.  Exact at bucket boundaries,
        linearly interpolated inside a bucket.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        key = _label_values(self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None or series.count == 0:
                return 0.0
            counts = list(series.counts)
            count = series.count
            maximum = series.maximum
            minimum = series.minimum
        rank = q * count
        cumulative = 0.0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                upper = (
                    maximum if index == len(self.bounds) else self.bounds[index]
                )
                lower = minimum if index == 0 else self.bounds[index - 1]
                lower = min(lower, upper)
                if bucket_count == 0:  # pragma: no cover - guarded above
                    return upper
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * max(0.0, min(1.0, fraction))
        return maximum  # pragma: no cover - rank <= count always lands

    def series_stats(self, **labels: object) -> dict[str, float]:
        """count/sum/min/max plus p50/p95/p99 for one series."""
        key = _label_values(self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None or series.count == 0:
                return {"count": 0, "sum": 0.0}
            count, total = series.count, series.total
        return {
            "count": count,
            "sum": total,
            "p50": self.quantile(0.50, **labels),
            "p95": self.quantile(0.95, **labels),
            "p99": self.quantile(0.99, **labels),
        }

    def label_values_seen(self) -> list[LabelValues]:
        with self._lock:
            return sorted(self._series)

    def expose(self) -> list[str]:
        """Text-exposition lines for every series (buckets, sum, count)."""
        lines: list[str] = []
        with self._lock:
            items = sorted(self._series.items())
        for key, series in items:
            base = self._labels_pairs(key)
            cumulative = 0
            for bound, bucket_count in zip(self.bounds, series.counts):
                cumulative += bucket_count
                lines.append(
                    _sample_line(
                        f"{self.name}_bucket",
                        base + (("le", _format_float(bound)),),
                        cumulative,
                    )
                )
            lines.append(
                _sample_line(
                    f"{self.name}_bucket", base + (("le", "+Inf"),),
                    series.count,
                )
            )
            lines.append(_sample_line(f"{self.name}_sum", base, series.total))
            lines.append(_sample_line(f"{self.name}_count", base, series.count))
        return lines


def _format_float(value: float) -> str:
    formatted = f"{value:.12g}"
    return formatted


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _sample_line(
    name: str, labels: tuple[tuple[str, str], ...], value: float
) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(str(val))}"' for key, val in labels
        )
        return f"{name}{{{rendered}}} {_format_float(value)}"
    return f"{name} {_format_float(value)}"


class MetricsRegistry:
    """Name-keyed instruments plus pull-time collectors.

    ``counter`` / ``gauge`` / ``histogram`` are idempotent: asking for
    an existing name returns the registered instrument (with a type
    check), so independent layers can share a metric.  Collectors are
    invoked only by :meth:`snapshot` and the exporters; a collector
    that raises is skipped (an observability bug must never fail a
    query or a scrape).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list[Callable[[], Iterable[Sample]]] = []

    def _instrument(self, factory, name: str, kind: str, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as"
                        f" {existing.kind}, not {kind}"
                    )
                return existing
            metric = self._metrics[name] = factory(name, **kwargs)
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._instrument(
            Counter, name, "counter", help=help, labelnames=labelnames
        )

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._instrument(
            Gauge, name, "gauge", help=help, labelnames=labelnames
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._instrument(
            Histogram, name, "histogram",
            help=help, labelnames=labelnames, buckets=buckets,
        )

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def register_collector(
        self, collector: Callable[[], Iterable[Sample]]
    ) -> None:
        """Attach a pull-time producer of :class:`Sample` records."""
        with self._lock:
            self._collectors.append(collector)

    # -- scraping ----------------------------------------------------------

    def _collected(self) -> list[Sample]:
        with self._lock:
            collectors = list(self._collectors)
        samples: list[Sample] = []
        for collector in collectors:
            try:
                samples.extend(collector())
            except Exception:  # noqa: BLE001 - a scrape never fails a query
                continue
        return samples

    def snapshot(self) -> dict[str, object]:
        """Every current value as plain data (instruments + collectors)."""
        with self._lock:
            metrics = list(self._metrics.values())
        result: dict[str, object] = {}
        for metric in metrics:
            if isinstance(metric, Histogram):
                result[metric.name] = {
                    "type": "histogram",
                    "series": {
                        ",".join(values) or "": metric.series_stats(
                            **dict(zip(metric.labelnames, values))
                        )
                        for values in metric.label_values_seen()
                    },
                }
            else:
                result[metric.name] = {
                    "type": metric.kind,
                    "series": {
                        ",".join(v for _, v in sample.labels): sample.value
                        for sample in metric.samples()
                    },
                }
        for sample in self._collected():
            entry = result.setdefault(
                sample.name, {"type": sample.kind, "series": {}}
            )
            entry["series"][
                ",".join(v for _, v in sample.labels)
            ] = sample.value
        return result

    def render_prometheus(self) -> str:
        """The text exposition format (see ``PrometheusTextExporter``)."""
        lines: list[str] = []
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        collected = self._collected()
        by_name: dict[str, list[Sample]] = {}
        for sample in collected:
            by_name.setdefault(sample.name, []).append(sample)
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                lines.extend(metric.expose())
            else:
                for sample in metric.samples():
                    lines.append(
                        _sample_line(sample.name, sample.labels, sample.value)
                    )
            # a collector may extend an instrument's series (rare); keep
            # them adjacent to the TYPE header
            for sample in by_name.pop(metric.name, []):
                lines.append(
                    _sample_line(sample.name, sample.labels, sample.value)
                )
        for name in sorted(by_name):
            samples = by_name[name]
            help_text = next((s.help for s in samples if s.help), "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {samples[0].kind}")
            for sample in sorted(samples, key=lambda s: s.labels):
                lines.append(
                    _sample_line(sample.name, sample.labels, sample.value)
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry({len(self._metrics)} metric(s),"
                f" {len(self._collectors)} collector(s))"
            )

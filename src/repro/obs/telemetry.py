"""The :class:`Telemetry` facade: one tracer + one metrics registry.

A mediator owns exactly one ``Telemetry``.  Disabled (the default) it
costs nothing on the query path: the tracer is the shared
:class:`~repro.obs.span.NoopTracer`, no event-driven instruments are
bound, and the only live wiring is pull-time collectors — callables the
registry invokes at scrape time, never during a query.

Enabled, it is the single sink for everything PRs 1–4 measured in
separate places:

* the tracer receives the span hierarchy (query → view-expansion →
  plan-stage → plan-node → source-call / pattern-match /
  external-predicate);
* the registry absorbs the scattered counters — answer-cache hits,
  single-flight dedups, compile-cache hits, breaker states and
  transitions, retry attempts, governor truncations and quarantines —
  and grows per-source latency and per-node row histograms whose
  p50/p95/p99 replace the health layer's bespoke percentile window as
  the reported figures.

The metric catalog (names, types, labels) is documented in
``docs/observability.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.metrics import (
    DEFAULT_QERROR_BUCKETS,
    DEFAULT_ROWS_BUCKETS,
    MetricsRegistry,
    Sample,
)
from repro.obs.span import NOOP_TRACER, NoopTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.dispatcher import SourceDispatcher
    from repro.governor.budget import QueryGovernor
    from repro.msl.compile import CompileCache
    from repro.reliability.clock import Clock
    from repro.reliability.resilient import ResilienceManager

__all__ = ["Telemetry"]

#: Numeric encoding of breaker states for the state gauge.
_BREAKER_STATES = {"closed": 0, "half_open": 1, "open": 2}


class Telemetry:
    """A tracer and a metrics registry, wired to mediator components."""

    def __init__(
        self,
        trace_sample_rate: float = 1.0,
        slow_query_ms: float | None = None,
        max_spans: int = 100_000,
        seed: int = 0,
        clock: "Clock | None" = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.tracer: Tracer | NoopTracer
        if enabled:
            self.tracer = Tracer(
                sample_rate=trace_sample_rate,
                slow_query_ms=slow_query_ms,
                max_spans=max_spans,
                seed=seed,
                clock=clock,
            )
            metrics = self.metrics
            self.queries_total = metrics.counter(
                "repro_queries_total",
                "Completed mediator operations by terminal status.",
                labelnames=("status",),
            )
            self.query_seconds = metrics.histogram(
                "repro_query_seconds",
                "Wall-clock seconds per mediator operation.",
            )
            self.warnings_total = metrics.counter(
                "repro_warnings_total",
                "Structured warnings attached to answers, by class.",
                labelnames=("type",),
            )
            self.source_calls_total = metrics.counter(
                "repro_source_calls_total",
                "Queries actually shipped to a source (cache misses).",
                labelnames=("source",),
            )
            self.source_objects_total = metrics.counter(
                "repro_source_objects_total",
                "Top-level objects received from a source.",
                labelnames=("source",),
            )
            self.semijoin_batches_total = metrics.counter(
                "repro_semijoin_batches_total",
                "Batched semi-join filters shipped to sources.",
            )
            self.semijoin_probes_saved_total = metrics.counter(
                "repro_semijoin_probes_saved_total",
                "Per-tuple probe queries avoided by semi-join shipping.",
            )
            self.shards_pruned_total = metrics.counter(
                "repro_shards_pruned_total",
                "Shards skipped by partition pruning.",
            )
            self.governor_rows_clipped_total = metrics.counter(
                "repro_governor_rows_clipped_total",
                "Rows refused by truncate-mode budgets.",
            )
            self.governor_truncations_total = metrics.counter(
                "repro_governor_truncations_total",
                "Budget violations recorded in truncate mode.",
            )
            self.quarantined_objects_total = metrics.counter(
                "repro_quarantined_objects_total",
                "Malformed sub-objects quarantined from source answers.",
            )
            self.estimate_qerror = metrics.histogram(
                "repro_estimate_qerror",
                "Optimizer estimate q-error max(est/act, act/est) per"
                " (source, label) and decision kind (scan or join).",
                labelnames=("source", "label", "kind"),
                buckets=DEFAULT_QERROR_BUCKETS,
            )
            self.misestimate_events_total = metrics.counter(
                "repro_misestimate_events_total",
                "Mid-query misestimate events (actual exceeded estimate"
                " by the configured factor).",
                labelnames=("source",),
            )
            # label-bound children caches: source-call and operation
            # emission are the hottest metric paths, so skip per-call
            # label resolution there
            self._source_children: dict[str, tuple] = {}
            self._status_children: dict[str, object] = {}
            self._qerror_children: dict[tuple, object] = {}
            self._misestimate_children: dict[str, object] = {}
        else:
            self.tracer = NOOP_TRACER

    @classmethod
    def disabled(cls) -> "Telemetry":
        """A per-mediator telemetry with tracing off and no instruments.

        Collectors may still be bound — they only run at scrape time,
        so ``metrics_text()`` keeps working on a disabled mediator.
        """
        return cls(enabled=False)

    # -- component wiring (pull-time collectors) ---------------------------

    def bind_dispatcher(self, dispatcher: "SourceDispatcher") -> None:
        """Absorb dispatcher fan-out counters and answer-cache stats."""

        def collect():
            samples = [
                Sample(
                    "repro_dispatcher_parallelism", "gauge",
                    dispatcher.parallelism,
                    help="Configured worker threads.",
                ),
                Sample(
                    "repro_dispatcher_dispatched_total", "counter",
                    dispatcher.dispatched,
                    help="Requests that led a single-flight group.",
                ),
                Sample(
                    "repro_dispatcher_shared_total", "counter",
                    dispatcher.shared,
                    help="Requests answered by another request's flight.",
                ),
            ]
            hedging = getattr(dispatcher, "hedging", None)
            if hedging is not None:
                hstats = hedging.stats()
                samples.extend(
                    [
                        Sample(
                            "repro_hedge_attempts_total", "counter",
                            hstats["hedges_issued"],
                            help="Speculative duplicate calls issued.",
                        ),
                        Sample(
                            "repro_hedge_wins_total", "counter",
                            hstats["hedge_wins"],
                            help="Hedged calls where the duplicate won.",
                        ),
                        Sample(
                            "repro_hedge_cancelled_total", "counter",
                            hstats["cancelled"],
                            help="Losing attempts signalled to abandon.",
                        ),
                        Sample(
                            "repro_hedge_outstanding", "gauge",
                            hstats["outstanding"],
                            help="Hedged attempts not yet settled.",
                        ),
                    ]
                )
            cache = dispatcher.cache
            if cache is not None:
                stats = cache.stats()
                for key, name in (
                    ("hits", "repro_answer_cache_hits_total"),
                    ("misses", "repro_answer_cache_misses_total"),
                    ("evictions", "repro_answer_cache_evictions_total"),
                    ("expirations", "repro_answer_cache_expirations_total"),
                    ("invalidations",
                     "repro_answer_cache_invalidations_total"),
                ):
                    samples.append(Sample(name, "counter", stats[key]))
                samples.append(
                    Sample(
                        "repro_answer_cache_entries", "gauge",
                        stats["entries"],
                        help="Answers currently cached.",
                    )
                )
            return samples

        self.metrics.register_collector(collect)

    def bind_compile_cache(self, cache: "CompileCache") -> None:
        """Absorb the compiled-backend memo counters."""

        def collect():
            stats = cache.stats()
            return [
                Sample(
                    "repro_compile_cache_hits_total", "counter",
                    stats["hits"],
                    help="Compiled rule/pattern cache hits.",
                ),
                Sample(
                    "repro_compile_cache_misses_total", "counter",
                    stats["misses"],
                ),
                Sample(
                    "repro_compile_cache_rules", "gauge", stats["rules"],
                    help="Compiled rules held.",
                ),
                Sample(
                    "repro_compile_cache_patterns", "gauge",
                    stats["patterns"],
                ),
            ]

        self.metrics.register_collector(collect)

    def bind_resilience(self, manager: "ResilienceManager") -> None:
        """Absorb breaker states as a gauge and, when telemetry is
        enabled, bind the health registry's event stream (attempt and
        retry counters, the per-source latency histogram, breaker
        transition counts)."""

        def collect():
            samples = []
            for name, record in manager.health.snapshot().items():
                samples.append(
                    Sample(
                        "repro_breaker_state", "gauge",
                        _BREAKER_STATES.get(record.breaker_state, -1),
                        labels=(("source", name),),
                        help="Circuit state: 0 closed, 1 half-open, 2 open.",
                    )
                )
            return samples

        self.metrics.register_collector(collect)
        if self.enabled:
            manager.health.bind_metrics(self.metrics)

    def bind_admission(self, controller) -> None:
        """Absorb admission-gate counters and the brownout level.

        ``controller`` is a
        :class:`~repro.serving.admission.AdmissionController`; the type
        stays untyped here to keep :mod:`repro.obs` import-light.
        """

        def collect():
            snapshot = controller.snapshot()
            samples = [
                Sample(
                    "repro_admission_submitted_total", "counter",
                    snapshot["submitted"],
                    help="Queries that reached the admission gate.",
                ),
                Sample(
                    "repro_admission_admitted_total", "counter",
                    snapshot["admitted"],
                    help="Queries granted an execution slot.",
                ),
                Sample(
                    "repro_admission_completed_total", "counter",
                    snapshot["completed"],
                    help="Admitted queries that finished (ok or not).",
                ),
                Sample(
                    "repro_admission_queue_depth", "gauge",
                    snapshot["queue_depth"],
                    help="Queries currently waiting for a slot.",
                ),
                Sample(
                    "repro_admission_inflight", "gauge",
                    snapshot["inflight"],
                    help="Queries currently executing.",
                ),
                Sample(
                    "repro_admission_concurrency_limit", "gauge",
                    snapshot["limit"],
                    help="Current adaptive in-flight ceiling.",
                ),
            ]
            for reason, count in sorted(snapshot["rejected"].items()):
                samples.append(
                    Sample(
                        "repro_admission_rejected_total", "counter",
                        count,
                        labels=(("reason", reason),),
                        help="Queries shed at the gate, by reason.",
                    )
                )
            brownout = snapshot.get("brownout")
            if brownout is not None:
                samples.append(
                    Sample(
                        "repro_brownout_level", "gauge",
                        brownout["level"],
                        help="Brownout rung: 0 full service,"
                        " N first N ladder features shed.",
                    )
                )
            return samples

        self.metrics.register_collector(collect)

    # -- per-operation recording ------------------------------------------

    def record_operation(
        self,
        status: str,
        seconds: float,
        warnings: list,
        governor: "QueryGovernor | None",
    ) -> None:
        """Roll one finished mediator operation into the registry."""
        if not self.enabled:
            return
        child = self._status_children.get(status)
        if child is None:
            child = self._status_children[status] = (
                self.queries_total.labels(status=status)
            )
        child.inc()
        self.query_seconds.observe(seconds)
        quarantined = 0
        for warning in warnings:
            kind = type(warning).__name__
            self.warnings_total.inc(count_of(warning), type=kind)
            if getattr(warning, "error", None) == "MalformedAnswer":
                quarantined += count_of(warning)
        if quarantined:
            self.quarantined_objects_total.inc(quarantined)
        if governor is not None:
            if governor.rows_clipped:
                self.governor_rows_clipped_total.inc(governor.rows_clipped)
            truncations = sum(
                count_of(w)
                for w in warnings
                if type(w).__name__ == "BudgetWarning"
            )
            if truncations:
                self.governor_truncations_total.inc(truncations)

    def record_source_call(
        self, source: str, objects: int
    ) -> None:
        """One shipped source call (cache hits never reach here)."""
        if not self.enabled:
            return
        children = self._source_children.get(source)
        if children is None:
            children = self._source_children[source] = (
                self.source_calls_total.labels(source=source),
                self.source_objects_total.labels(source=source),
            )
        calls, received = children
        calls.inc()
        if objects:
            received.inc(objects)

    def record_sharding(
        self, batches: int, probes_saved: int, shards_pruned: int
    ) -> None:
        """A whole run's semi-join / shard-pruning totals at once."""
        if not self.enabled:
            return
        if batches:
            self.semijoin_batches_total.inc(batches)
        if probes_saved:
            self.semijoin_probes_saved_total.inc(probes_saved)
        if shards_pruned:
            self.shards_pruned_total.inc(shards_pruned)

    def record_qerror(
        self, source: str, label: str, kind: str, value: float
    ) -> None:
        """One estimate-vs-actual q-error observation for a plan node."""
        if not self.enabled:
            return
        key = (source, label, kind)
        child = self._qerror_children.get(key)
        if child is None:
            child = self._qerror_children[key] = (
                self.estimate_qerror.labels(
                    source=source, label=label, kind=kind
                )
            )
        child.observe(value)

    def record_misestimate(self, source: str) -> None:
        """One mid-query misestimate event against ``source``."""
        if not self.enabled:
            return
        child = self._misestimate_children.get(source)
        if child is None:
            child = self._misestimate_children[source] = (
                self.misestimate_events_total.labels(source=source)
            )
        child.inc()

    def record_source_calls(
        self,
        calls: "dict[str, int]",
        objects: "dict[str, int]",
    ) -> None:
        """A whole run's buffered per-source call totals at once.

        The engine buffers counts in its execution context and flushes
        here once per operation — two increments per source instead of
        two per shipped call.
        """
        if not self.enabled:
            return
        for source, count in calls.items():
            children = self._source_children.get(source)
            if children is None:
                children = self._source_children[source] = (
                    self.source_calls_total.labels(source=source),
                    self.source_objects_total.labels(source=source),
                )
            children[0].inc(count)
            received = objects.get(source, 0)
            if received:
                children[1].inc(received)

    # -- views -------------------------------------------------------------

    def metrics_text(self) -> str:
        """The Prometheus text exposition of the whole registry."""
        return self.metrics.render_prometheus()

    def describe(self) -> str:
        """One-paragraph summary for ``Mediator.explain``."""
        if not self.enabled:
            return "telemetry: disabled"
        stats = self.tracer.stats()
        slow = (
            f"{stats['slow_query_ms']:g}ms"
            if stats["slow_query_ms"] is not None
            else "off"
        )
        return (
            f"telemetry: on; sample_rate={stats['sample_rate']:g},"
            f" slow-query log {slow};"
            f" {stats['queries_sampled']}/{stats['queries_started']}"
            f" queries sampled, {stats['spans_retained']} span(s) retained"
            f" ({stats['spans_dropped']} dropped,"
            f" {stats['slow_queries']} slow)"
        )

    def __repr__(self) -> str:
        return f"Telemetry(enabled={self.enabled})"


#: Plan-node row histograms share the row-count bucket layout.
ROWS_BUCKETS = DEFAULT_ROWS_BUCKETS


def count_of(warning: object) -> int:
    """A warning's fold count (aggregated warnings carry ``count``)."""
    return int(getattr(warning, "count", 1) or 1)

"""Plan observability: the EXPLAIN ANALYZE recorder and report.

MedMaker §3.5 wants the optimizer to "build its own statistics
database that is based on results of previous queries"; this module is
the *observation* half of that loop.  A :class:`QueryInsight` rides on
the :class:`~repro.mediator.engine.ExecutionContext` of one operation
and records, per plan node — including the constituents inside fused
pipeline chains — the optimizer's estimated cardinality next to the
actual rows in/out, wall time, and source-call latency, plus any
mid-query misestimate events and the stage re-rank decisions they
triggered.  :class:`AnalyzeReport` wraps a finished insight together
with the operation's answer: ``render()`` is the annotated plan tree
(with a misestimate-factor column) that ``--explain-analyze`` prints,
``to_dict()``/``to_json()`` the structured export CI validates.

The module is deliberately import-light (plan nodes are duck-typed via
``estimated_rows`` / ``estimate_key`` / ``fusion_width``), so
:mod:`repro.obs` never imports the mediator layer.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Iterator, Sequence

__all__ = ["AnalyzeReport", "NodeObservation", "QueryInsight"]

#: Actual-vs-estimate floor: zero-row stages still produce a finite
#: q-error (mirrors ``repro.mediator.statistics.qerror``).
_FLOOR = 0.5


def _qerror(estimated: float, actual: float) -> float:
    est = max(float(estimated), _FLOOR)
    act = max(float(actual), _FLOOR)
    return est / act if est >= act else act / est


class NodeObservation:
    """One plan node's (or fused constituent's) analyze record."""

    __slots__ = (
        "key",
        "kind",
        "description",
        "stage",
        "inputs",
        "parent",
        "constituents",
        "estimated_rows",
        "estimate_key",
        "calls",
        "rows_in",
        "rows_out",
        "seconds",
        "latency",
        "misestimates",
    )

    def __init__(
        self,
        key: str,
        kind: str,
        description: str,
        stage: int,
        inputs: Sequence[str] = (),
        parent: "str | None" = None,
        estimated_rows: "float | None" = None,
        estimate_key: "tuple[str, str, str] | None" = None,
    ) -> None:
        self.key = key
        self.kind = kind
        self.description = description
        self.stage = stage
        self.inputs = tuple(inputs)
        self.parent = parent
        self.constituents: list[str] = []
        self.estimated_rows = estimated_rows
        self.estimate_key = estimate_key
        self.calls = 0
        self.rows_in = 0
        self.rows_out = 0
        self.seconds = 0.0
        self.latency = 0.0
        self.misestimates = 0

    @property
    def qerror(self) -> "float | None":
        """max(est/act, act/est), or ``None`` without an estimate."""
        if self.estimated_rows is None or not self.calls:
            return None
        return _qerror(self.estimated_rows, self.rows_out)

    def misestimate_factor(self) -> str:
        """The rendered misestimate column: ``2.4x under`` style.

        ``under`` means the optimizer *under*-estimated (actual
        exceeded the estimate), the direction that triggers mid-query
        re-ranking; ``over`` the reverse; ``-`` when the node carries
        no estimate or never ran.
        """
        error = self.qerror
        if error is None:
            return "-"
        if error < 1.05:
            return "1.0x"
        direction = (
            "under"
            if self.rows_out > (self.estimated_rows or 0.0)
            else "over"
        )
        return f"{error:.1f}x {direction}"

    def to_dict(self) -> dict[str, Any]:
        estimate = None
        if self.estimate_key is not None:
            source, label, kind = self.estimate_key
            estimate = {"source": source, "label": label, "kind": kind}
        return {
            "key": self.key,
            "kind": self.kind,
            "description": self.description,
            "stage": self.stage,
            "inputs": list(self.inputs),
            "parent": self.parent,
            "constituents": list(self.constituents),
            "estimated_rows": self.estimated_rows,
            "estimate": estimate,
            "calls": self.calls,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "seconds": self.seconds,
            "source_seconds": self.latency,
            "qerror": self.qerror,
            "misestimates": self.misestimates,
        }


class QueryInsight:
    """Per-operation plan observation sink (thread-safe).

    The mediator attaches one insight to an operation's execution
    context; the engine (and the fused pipeline node) call
    :meth:`observe_node` once per executed operator, and the staged
    executor reports misestimate events and re-rank decisions.  All
    call sites run on the coordinating thread today, but the lock keeps
    the recorder safe if that ever changes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.nodes: list[NodeObservation] = []
        self._by_id: dict[int, NodeObservation] = {}
        self.misestimates: list[dict[str, Any]] = []
        self.reranks: list[dict[str, Any]] = []
        self.plans = 0

    # -- plan registration -------------------------------------------------

    def attach_plan(self, plan: Any) -> None:
        """Register every node of ``plan`` (fused constituents too).

        Nodes are keyed ``"3"`` in :meth:`PhysicalPlan.describe`'s
        numbering; the constituents of a fused pipeline get dotted keys
        (``"3.1"``, ``"3.2"`` ...) and consecutive stage numbers
        starting at the container's — the same numbering deadline
        slicing sees, so fused and unfused analyze output line up.
        ``export()``-style operations may attach several plans; keys
        then continue ``p2:3`` to stay unique.
        """
        nodes = plan.nodes()
        numbers = {id(node): i for i, node in enumerate(nodes, 1)}
        starts: dict[int, int] = {}
        for start, group in plan.stage_starts():
            for node in group:
                starts[id(node)] = start
        with self._lock:
            self.plans += 1
            prefix = f"p{self.plans}:" if self.plans > 1 else ""
            for node in nodes:
                key = f"{prefix}{numbers[id(node)]}"
                record = self._register(
                    node,
                    key=key,
                    stage=starts[id(node)],
                    inputs=tuple(
                        f"{prefix}{numbers[id(child)]}"
                        for child in node.inputs
                    ),
                )
                constituents = getattr(node, "nodes", None)
                if constituents and getattr(node, "fusion_width", 1) > 1:
                    for offset, member in enumerate(constituents, 1):
                        child = self._register(
                            member,
                            key=f"{key}.{offset}",
                            stage=starts[id(node)] + offset - 1,
                            parent=key,
                        )
                        record.constituents.append(child.key)

    def _register(
        self,
        node: Any,
        key: str,
        stage: int,
        inputs: Sequence[str] = (),
        parent: "str | None" = None,
    ) -> NodeObservation:
        record = NodeObservation(
            key=key,
            kind=type(node).__name__,
            description=node.describe(),
            stage=stage,
            inputs=inputs,
            parent=parent,
            estimated_rows=getattr(node, "estimated_rows", None),
            estimate_key=getattr(node, "estimate_key", None),
        )
        self.nodes.append(record)
        self._by_id[id(node)] = record
        return record

    # -- observation -------------------------------------------------------

    def observe_node(
        self,
        node: Any,
        rows_in: int,
        rows_out: int,
        seconds: float,
        latency: float = 0.0,
    ) -> None:
        """Fold one execution of ``node`` into its record."""
        record = self._by_id.get(id(node))
        if record is None:
            return
        with self._lock:
            record.calls += 1
            record.rows_in += rows_in
            record.rows_out += rows_out
            record.seconds += seconds
            record.latency += latency

    def record_misestimate(
        self,
        node: Any,
        estimated: float,
        actual: int,
        action: str,
    ) -> None:
        """One mid-query misestimate event and what was done about it."""
        record = self._by_id.get(id(node))
        with self._lock:
            if record is not None:
                record.misestimates += 1
            self.misestimates.append(
                {
                    "node": record.key if record is not None else None,
                    "description": (
                        record.description
                        if record is not None
                        else type(node).__name__
                    ),
                    "estimated_rows": float(estimated),
                    "actual_rows": int(actual),
                    "qerror": _qerror(estimated, actual),
                    "action": action,
                }
            )

    def record_rerank(
        self, stage: int, before: Sequence[str], after: Sequence[str]
    ) -> None:
        """A future stage's node order corrected by observed rows."""
        with self._lock:
            self.reranks.append(
                {
                    "stage": stage,
                    "before": list(before),
                    "after": list(after),
                }
            )

    def key_of(self, node: Any) -> "str | None":
        record = self._by_id.get(id(node))
        return record.key if record is not None else None

    # -- views -------------------------------------------------------------

    def tree(self) -> Iterator[tuple[int, NodeObservation]]:
        """``(indent, record)`` pairs: plan order, constituents nested."""
        for record in self.nodes:
            yield (1, record) if record.parent is not None else (0, record)


class AnalyzeReport:
    """One EXPLAIN ANALYZE result: the answer plus its insight."""

    def __init__(
        self,
        query: str,
        insight: QueryInsight,
        objects: Sequence[Any],
        warnings: Sequence[Any] = (),
        seconds: float = 0.0,
    ) -> None:
        self.query = query
        self.insight = insight
        self.objects = list(objects)
        self.warnings = list(warnings)
        self.seconds = seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": 1,
            "query": self.query,
            "seconds": self.seconds,
            "result_objects": len(self.objects),
            "warnings": len(self.warnings),
            "nodes": [record.to_dict() for record in self.insight.nodes],
            "misestimates": list(self.insight.misestimates),
            "reranks": list(self.insight.reranks),
        }

    def to_json(self, indent: "int | None" = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render(self, width: int = 52) -> str:
        """The annotated plan tree ``--explain-analyze`` prints."""
        lines = [
            f"-- explain analyze: {self.query} --",
            f"{len(self.objects)} object(s) in {self.seconds * 1e3:.1f}ms;"
            f" {len(self.warnings)} warning(s)",
            "",
        ]
        header = (
            f"{'node':<{width}} {'est':>8} {'actual':>8} {'miss':>12}"
            f" {'rows_in':>8} {'time':>9} {'source':>9}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        if not self.insight.nodes:
            lines.append("(no physical plan: answered by materialization)")
        for indent, record in self.insight.tree():
            label = f"{'  ' * indent}[{record.key}] {record.description}"
            if len(label) > width:
                label = label[: width - 1] + "…"
            est = (
                f"{record.estimated_rows:.0f}"
                if record.estimated_rows is not None
                else "-"
            )
            actual = str(record.rows_out) if record.calls else "-"
            lines.append(
                f"{label:<{width}} {est:>8} {actual:>8}"
                f" {record.misestimate_factor():>12}"
                f" {record.rows_in:>8}"
                f" {record.seconds * 1e3:>7.1f}ms"
                f" {record.latency * 1e3:>7.1f}ms"
            )
        if self.insight.misestimates:
            lines.append("")
            lines.append("misestimate events:")
            for event in self.insight.misestimates:
                lines.append(
                    f"  [{event['node']}] estimated"
                    f" {event['estimated_rows']:.0f}, actual"
                    f" {event['actual_rows']}"
                    f" ({event['qerror']:.1f}x) -> {event['action']}"
                )
        if self.insight.reranks:
            lines.append("")
            lines.append("re-rank decisions:")
            for decision in self.insight.reranks:
                before = ", ".join(decision["before"])
                after = ", ".join(decision["after"])
                lines.append(
                    f"  stage {decision['stage']}:"
                    f" [{before}] -> [{after}]"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"AnalyzeReport({len(self.objects)} object(s),"
            f" {len(self.insight.nodes)} node(s))"
        )

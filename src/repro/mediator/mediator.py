"""The Mediator facade: MedMaker's user-visible object.

A :class:`Mediator` is constructed from an MSL specification (text or
parsed), a :class:`~repro.wrappers.registry.SourceRegistry`, and an
external-function registry.  It is itself a
:class:`~repro.wrappers.base.Source`, so mediators stack (Figure 1.1).

``answer(query)`` runs the full MSI pipeline of Figure 2.5:

1. the View Expander & Algebraic Optimizer rewrites the query into a
   logical datamerge program (:mod:`repro.mediator.view_expander`);
2. the cost-based optimizer builds a physical datamerge graph
   (:mod:`repro.mediator.optimizer`);
3. the datamerge engine executes it (:mod:`repro.mediator.engine`).

Two query classes bypass the pipeline, both by *materializing* the view
and matching locally:

* queries using descendant (``..``) wildcard items against the mediator —
  static pushdown of "match at any depth" has no sound rewriting into
  the rule tails, so the mediator does the honest expensive thing (the
  paper: "without appropriate index structures, wildcard searches may be
  expensive");
* queries against a *recursive* specification (a rule tail that
  references the mediator itself).  MSL "allows the specification of
  recursive views"; these are evaluated by naive fixpoint iteration.
"""

from __future__ import annotations

from typing import Sequence

from repro.external.registry import ExternalRegistry, default_registry
from repro.mediator.engine import DatamergeEngine, ExecutionContext
from repro.mediator.fusion import fuse_objects, has_semantic_oids
from repro.mediator.logical import LogicalDatamergeProgram, LogicalRule
from repro.mediator.optimizer import CostBasedOptimizer
from repro.mediator.statistics import SourceStatistics
from repro.mediator.view_expander import ViewExpander
from repro.msl.analysis import check_rule, check_specification_rule
from repro.msl.ast import (
    Pattern,
    PatternCondition,
    PatternItem,
    Rule,
    SetPattern,
    Specification,
)
from repro.msl.errors import MSLSemanticError
from repro.msl.evaluate import evaluate_rule
from repro.msl.parser import parse_specification
from repro.oem.compare import eliminate_duplicates, structural_key
from repro.oem.model import OEMObject
from repro.oem.oid import OidGenerator
from repro.wrappers.base import Source, SourceError
from repro.wrappers.registry import SourceRegistry

__all__ = ["Mediator", "MediatorError"]


class MediatorError(SourceError):
    """The mediator could not be built or could not serve a query."""


class Mediator(Source):
    """A declaratively specified integration view over registered sources."""

    def __init__(
        self,
        name: str,
        specification: str | Specification,
        sources: SourceRegistry,
        externals: ExternalRegistry | None = None,
        push_mode: str = "complete",
        strategy: str = "heuristic",
        deduplicate: bool = True,
        trace: bool = False,
        register: bool = True,
        max_fixpoint_iterations: int = 50,
    ) -> None:
        if not name or not name.isidentifier():
            raise MediatorError(f"invalid mediator name {name!r}")
        self.name = name
        if isinstance(specification, str):
            specification = parse_specification(specification)
        if not specification.rules:
            raise MediatorError("a mediator specification needs rules")
        for rule in specification.rules:
            check_specification_rule(rule)
        self.specification = specification
        self.sources = sources

        registry = (externals or default_registry()).copy()
        for decl in specification.externals:
            registry.declare(decl.predicate, decl.adornment, decl.function)
        self.externals = registry

        self.statistics = SourceStatistics()
        self.expander = ViewExpander(name, specification, push_mode)
        self.optimizer = CostBasedOptimizer(
            sources, self.statistics, strategy, deduplicate
        )
        self.optimizer.bind_external_registry(registry)
        self.engine = DatamergeEngine(trace)
        self.max_fixpoint_iterations = max_fixpoint_iterations
        self._oidgen = OidGenerator(f"&{name}_")

        self.is_recursive = any(
            condition.source == name
            for rule in specification.rules
            for condition in rule.tail
            if isinstance(condition, PatternCondition)
        )

        self.last_program: LogicalDatamergeProgram | None = None
        self.last_context: ExecutionContext | None = None

        if register:
            sources.register(self)

    # -- the Source interface --------------------------------------------

    def answer(self, query: str | Rule) -> list[OEMObject]:
        """Answer an MSL query against this mediator's view."""
        if isinstance(query, str):
            from repro.msl.parser import parse_query

            query = parse_query(query)
        check_rule(query, is_query=True)

        if (
            self.is_recursive
            or _query_uses_wildcards(query, self.name)
            or _query_constrains_types(query, self.name)
        ):
            return self._answer_by_materialization(query)

        program = self.expander.expand(query)
        self.last_program = program
        plan = self.optimizer.plan_program(program)
        context = self._context()
        objects = self.engine.execute_to_objects(plan, context)
        self.last_context = context
        if has_semantic_oids(objects):
            objects = fuse_objects(objects)
        return objects

    def export(self) -> Sequence[OEMObject]:
        """Materialize the whole view (all rules, no conditions)."""
        if self.is_recursive:
            return self._fixpoint_materialize()
        results: list[OEMObject] = []
        context = self._context()
        for rule in self.specification.rules:
            plan = self.optimizer.plan_rule(LogicalRule(rule))
            results.extend(self.engine.execute_to_objects(plan, context))
        self.last_context = context
        results = eliminate_duplicates(results)
        if has_semantic_oids(results):
            results = fuse_objects(results)
        return results

    # -- introspection -----------------------------------------------------

    def explain(self, query: str | Rule) -> str:
        """The logical program and physical plan for ``query`` as text."""
        if isinstance(query, str):
            from repro.msl.parser import parse_query

            query = parse_query(query)
        program = self.expander.expand(query)
        plan = self.optimizer.plan_program(program)
        return (
            f"-- logical datamerge program ({len(program)} rule(s)) --\n"
            f"{program}\n\n"
            f"-- physical datamerge graph --\n"
            f"{plan.describe()}"
        )

    def _context(self) -> ExecutionContext:
        return ExecutionContext(
            sources=self.sources,
            externals=self.externals,
            oidgen=self._oidgen,
            statistics=self.statistics,
            trace=[] if self.engine.trace_enabled else None,
        )

    # -- materialization paths ---------------------------------------------

    def _answer_by_materialization(self, query: Rule) -> list[OEMObject]:
        view = list(self.export())
        forests: dict[str | None, Sequence[OEMObject]] = {
            None: view,
            self.name: view,
        }
        for condition in query.tail:
            if isinstance(condition, PatternCondition) and condition.source:
                if condition.source == self.name:
                    continue
                forests[condition.source] = self.sources.resolve(
                    condition.source
                ).export()
        return evaluate_rule(
            query, forests, self.externals, self._oidgen, check=False
        )

    def _fixpoint_materialize(self) -> list[OEMObject]:
        """Naive fixpoint for recursive specifications.

        Evaluates all rules against (source exports + current view)
        until the view stops changing; raises after
        ``max_fixpoint_iterations`` rounds (a recursive OEM view can be
        genuinely infinite — e.g. ever-deeper nesting).
        """
        base_forests: dict[str | None, Sequence[OEMObject]] = {}
        for rule in self.specification.rules:
            for condition in rule.tail:
                if (
                    isinstance(condition, PatternCondition)
                    and condition.source
                    and condition.source != self.name
                    and condition.source not in base_forests
                ):
                    base_forests[condition.source] = self.sources.resolve(
                        condition.source
                    ).export()

        view: list[OEMObject] = []
        seen_keys: set = set()
        for _ in range(self.max_fixpoint_iterations):
            forests = dict(base_forests)
            forests[self.name] = view
            forests[None] = view
            new_objects: list[OEMObject] = []
            for rule in self.specification.rules:
                new_objects.extend(
                    evaluate_rule(
                        rule,
                        forests,
                        self.externals,
                        self._oidgen,
                        check=False,
                    )
                )
            if has_semantic_oids(new_objects):
                new_objects = fuse_objects(new_objects)
            keys = {structural_key(obj) for obj in new_objects}
            if keys <= seen_keys:
                return view
            merged = eliminate_duplicates(list(view) + new_objects)
            if has_semantic_oids(merged):
                merged = fuse_objects(merged)
                merged = eliminate_duplicates(merged)
            view = merged
            seen_keys |= keys
        raise MediatorError(
            f"recursive view {self.name!r} did not reach a fixpoint in"
            f" {self.max_fixpoint_iterations} iterations"
        )


def _query_constrains_types(query: Rule, mediator_name: str) -> bool:
    """Does any mediator-addressed condition constrain a *type* slot?

    Specification heads carry no type slot (view-object types follow
    from the bound values), so type constraints cannot be verified by
    static expansion; such queries are answered over the materialized
    view, where the matcher checks types directly.
    """

    def pattern_has_type(pattern: Pattern) -> bool:
        if pattern.type is not None:
            return True
        value = pattern.value
        if isinstance(value, SetPattern):
            for item in value.items:
                if isinstance(item, PatternItem) and pattern_has_type(
                    item.pattern
                ):
                    return True
            if value.rest is not None:
                return any(
                    pattern_has_type(c) for c in value.rest.conditions
                )
        return False

    for condition in query.tail:
        if isinstance(condition, PatternCondition) and condition.source in (
            None,
            mediator_name,
        ):
            if pattern_has_type(condition.pattern):
                return True
    return False


def _query_uses_wildcards(query: Rule, mediator_name: str) -> bool:
    """Does any condition addressed to the mediator use ``..`` items?"""

    def pattern_has_wildcard(pattern: Pattern) -> bool:
        value = pattern.value
        if not isinstance(value, SetPattern):
            return False
        for item in value.items:
            if isinstance(item, PatternItem):
                if item.descendant or pattern_has_wildcard(item.pattern):
                    return True
        if value.rest is not None:
            return any(
                pattern_has_wildcard(c) for c in value.rest.conditions
            )
        return False

    for condition in query.tail:
        if isinstance(condition, PatternCondition) and condition.source in (
            None,
            mediator_name,
        ):
            if pattern_has_wildcard(condition.pattern):
                return True
    return False

"""The Mediator facade: MedMaker's user-visible object.

A :class:`Mediator` is constructed from an MSL specification (text or
parsed), a :class:`~repro.wrappers.registry.SourceRegistry`, and an
external-function registry.  It is itself a
:class:`~repro.wrappers.base.Source`, so mediators stack (Figure 1.1).

``answer(query)`` runs the full MSI pipeline of Figure 2.5:

1. the View Expander & Algebraic Optimizer rewrites the query into a
   logical datamerge program (:mod:`repro.mediator.view_expander`);
2. the cost-based optimizer builds a physical datamerge graph
   (:mod:`repro.mediator.optimizer`);
3. the datamerge engine executes it (:mod:`repro.mediator.engine`).

Two query classes bypass the pipeline, both by *materializing* the view
and matching locally:

* queries using descendant (``..``) wildcard items against the mediator —
  static pushdown of "match at any depth" has no sound rewriting into
  the rule tails, so the mediator does the honest expensive thing (the
  paper: "without appropriate index structures, wildcard searches may be
  expensive");
* queries against a *recursive* specification (a rule tail that
  references the mediator itself).  MSL "allows the specification of
  recursive views"; these are evaluated by naive fixpoint iteration.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
from time import perf_counter
from typing import Iterator, Sequence

from repro.client.result import ResultSet
from repro.exec.cache import AnswerCache
from repro.exec.dispatcher import SourceDispatcher
from repro.exec.profile import Profiler
from repro.external.registry import ExternalRegistry, default_registry
from repro.governor.budget import (
    CancellationToken,
    QueryBudget,
    QueryGovernor,
)
from repro.governor.sanitizer import AnswerSanitizer, DEFAULT_MAX_DEPTH
from repro.mediator.engine import DatamergeEngine, ExecutionContext
from repro.mediator.fusion import fuse_objects, has_semantic_oids
from repro.mediator.logical import LogicalDatamergeProgram, LogicalRule
from repro.mediator.optimizer import CostBasedOptimizer
from repro.mediator.pipeline import FusionDecision, fuse_plan
from repro.mediator.statistics import SourceStatistics
from repro.mediator.view_expander import ViewExpander
from repro.msl.analysis import check_rule, check_specification_rule
from repro.msl.ast import (
    Pattern,
    PatternCondition,
    PatternItem,
    Rule,
    SetPattern,
    Specification,
)
from repro.msl.compile import CompileCache
from repro.msl.errors import MSLError, MSLSemanticError, MSLSyntaxError
from repro.msl.evaluate import evaluate_rule
from repro.msl.parser import parse_specification
from repro.obs.insight import AnalyzeReport, QueryInsight
from repro.obs.span import current_span, status_of_exception
from repro.obs.telemetry import Telemetry
from repro.oem.compare import eliminate_duplicates, structural_key
from repro.oem.model import OEMObject
from repro.oem.oid import OidGenerator
from repro.reliability.clock import Clock, MonotonicClock
from repro.reliability.deadline import AdaptiveTimeoutConfig, DeadlineSlicer
from repro.reliability.health import SourceWarning
from repro.reliability.hedging import HedgeCoordinator, HedgePolicy
from repro.reliability.resilient import ResilienceConfig, ResilienceManager
from repro.serving.admission import AdmissionConfig, AdmissionController
from repro.serving.bulkhead import BulkheadRegistry
from repro.wrappers.base import Source, SourceError
from repro.wrappers.registry import SourceRegistry
from repro.wrappers.sharding import ShardedSource

__all__ = ["Mediator", "MediatorError"]

#: Floor for a deadline after queue wait is charged — the governor
#: still runs (and truncates/aborts deterministically) rather than
#: receiving a zero or negative budget.
_MIN_DEADLINE = 0.001


class MediatorError(SourceError):
    """The mediator could not be built or could not serve a query."""


class _Operation:
    """Per-thread state of one top-level mediator operation.

    Concurrent ``query()`` calls on a shared mediator each get their
    own operation (held in a ``threading.local``), so warnings,
    governors, and execution contexts never mix between callers.  The
    mediator's ``last_warnings`` / ``last_governor`` / ``last_program``
    / ``last_context`` attributes are published from the operation when
    it finishes (last-writer-wins), purely for introspection compat.
    """

    __slots__ = (
        "warnings",
        "governor",
        "contexts",
        "depth",
        "program",
        "context",
        "admission_wait",
        "insight",
    )

    def __init__(self, admission_wait: float = 0.0) -> None:
        self.warnings: list[SourceWarning] = []
        self.governor: QueryGovernor | None = None
        self.contexts: list[ExecutionContext] = []
        self.depth = 0
        self.program: LogicalDatamergeProgram | None = None
        self.context: ExecutionContext | None = None
        self.admission_wait = admission_wait
        self.insight: QueryInsight | None = None


class Mediator(Source):
    """A declaratively specified integration view over registered sources."""

    def __init__(
        self,
        name: str,
        specification: str | Specification,
        sources: SourceRegistry,
        externals: ExternalRegistry | None = None,
        push_mode: str = "complete",
        strategy: str = "heuristic",
        deduplicate: bool = True,
        trace: bool = False,
        register: bool = True,
        max_fixpoint_iterations: int = 50,
        on_source_failure: str = "fail",
        resilience: ResilienceConfig | ResilienceManager | None = None,
        clock: Clock | None = None,
        budget: QueryBudget | None = None,
        budget_mode: str = "strict",
        on_malformed_answer: str = "error",
        cancellation: CancellationToken | None = None,
        parallelism: int = 1,
        cache: AnswerCache | None = None,
        compile: bool = True,
        fuse: bool = True,
        telemetry: "Telemetry | bool | None" = None,
        trace_sample_rate: float = 1.0,
        slow_query_ms: float | None = None,
        hedge: "HedgePolicy | bool | None" = None,
        adaptive_timeouts: "AdaptiveTimeoutConfig | bool" = False,
        deadline_slicing: bool | None = None,
        admission: "AdmissionConfig | AdmissionController | bool | None" = None,
        bulkheads: "BulkheadRegistry | int | None" = None,
        semijoin: bool = True,
        bloom_threshold: int = 64,
        misestimate_factor: float = 4.0,
    ) -> None:
        if not name or not name.isidentifier():
            raise MediatorError(f"invalid mediator name {name!r}")
        if on_source_failure not in ("fail", "degrade"):
            raise MediatorError(
                "on_source_failure must be 'fail' or 'degrade',"
                f" got {on_source_failure!r}"
            )
        if budget_mode not in ("strict", "truncate"):
            raise MediatorError(
                "budget_mode must be 'strict' or 'truncate',"
                f" got {budget_mode!r}"
            )
        if on_malformed_answer not in ("error", "quarantine"):
            raise MediatorError(
                "on_malformed_answer must be 'error' or 'quarantine',"
                f" got {on_malformed_answer!r}"
            )
        if not isinstance(bloom_threshold, int) or bloom_threshold < 0:
            raise MediatorError(
                "bloom_threshold must be a non-negative integer,"
                f" got {bloom_threshold!r}"
            )
        try:
            misestimate_factor = float(misestimate_factor)
        except (TypeError, ValueError):
            raise MediatorError(
                "misestimate_factor must be a number,"
                f" got {misestimate_factor!r}"
            ) from None
        if misestimate_factor < 0:
            raise MediatorError(
                "misestimate_factor must be >= 0 (0 disables mid-query"
                f" adaptivity), got {misestimate_factor!r}"
            )
        self.name = name
        if isinstance(specification, str):
            specification = parse_specification(specification)
        if not specification.rules:
            raise MediatorError("a mediator specification needs rules")
        for rule in specification.rules:
            check_specification_rule(rule)
        self.specification = specification
        self.sources = sources

        registry = (externals or default_registry()).copy()
        for decl in specification.externals:
            registry.declare(decl.predicate, decl.adornment, decl.function)
        self.externals = registry

        self.statistics = SourceStatistics()
        self.expander = ViewExpander(name, specification, push_mode)
        self.optimizer = CostBasedOptimizer(
            sources, self.statistics, strategy, deduplicate
        )
        self.optimizer.bind_external_registry(registry)
        self.engine = DatamergeEngine(trace)
        self.max_fixpoint_iterations = max_fixpoint_iterations
        self._oidgen = OidGenerator(f"&{name}_")

        # the compiled pattern-matching backend: rules and patterns are
        # lowered to closures once and memoized; compile=False keeps the
        # interpretive reference path bit-for-bit
        self.compile = compile
        self._compile_cache = (
            CompileCache(registry) if compile else None
        )
        # whole-plan operator fusion (repro.mediator.pipeline): merge
        # straight-line plan segments into single pipeline nodes;
        # fuse=False keeps the node-per-operator reference path.
        # Trace mode implies the reference path — the Figure 3.6
        # walkthrough needs every intermediate table.
        self.fuse = fuse
        self.last_fusion: list[FusionDecision] = []
        self.profiler = Profiler()

        # semi-join shipping: batch-capable sources receive one value
        # filter per target per parameterized stage instead of one
        # probe per distinct input tuple; above bloom_threshold values
        # the filter ships as a Bloom digest (superset, re-checked)
        self.semijoin = bool(semijoin)
        self.bloom_threshold = bloom_threshold
        # mid-query adaptivity: how far actual rows must exceed the
        # estimate before a misestimate event fires (0 disables)
        self.misestimate_factor = misestimate_factor

        self.on_source_failure = on_source_failure
        if isinstance(resilience, ResilienceConfig):
            resilience = ResilienceManager(resilience, clock=clock)
        self.resilience: ResilienceManager | None = resilience

        # tail-latency controls: adaptive per-source timeouts live on
        # the resilience manager (they need its latency windows and its
        # wrappers to enforce), deadline slicing defaults to following
        # them, and hedging gets its own coordinator on the dispatcher
        if adaptive_timeouts:
            if self.resilience is None:
                raise MediatorError(
                    "adaptive_timeouts needs a resilience configuration"
                    " (the policy rides on the resilient source wrappers)"
                )
            self.resilience.enable_adaptive(
                adaptive_timeouts
                if isinstance(adaptive_timeouts, AdaptiveTimeoutConfig)
                else None
            )
        self.adaptive_timeouts = bool(adaptive_timeouts)
        self.deadline_slicing = (
            self.adaptive_timeouts
            if deadline_slicing is None
            else bool(deadline_slicing)
        )
        self.last_warnings: list[SourceWarning] = []
        # one _Operation per thread: concurrent queries on a shared
        # mediator never see each other's warnings or governor
        self._ops = threading.local()

        self.budget = budget
        self.budget_mode = budget_mode
        self.on_malformed_answer = on_malformed_answer
        self.cancellation = cancellation
        self._clock = clock or MonotonicClock()
        self.last_governor: QueryGovernor | None = None

        self.hedging: HedgeCoordinator | None = None
        if hedge:
            try:
                policy = (
                    hedge if isinstance(hedge, HedgePolicy) else HedgePolicy()
                )
            except ValueError as exc:
                raise MediatorError(str(exc)) from exc
            self.hedging = HedgeCoordinator(
                policy,
                clock=self._governor_clock(),
                health=(
                    self.resilience.health
                    if self.resilience is not None
                    else None
                ),
            )
        # overload resilience: admission control in front of query(),
        # per-source bulkheads under the dispatcher, brownout between
        self.admission: AdmissionController | None = None
        if admission:
            if isinstance(admission, AdmissionController):
                self.admission = admission
            else:
                try:
                    config = (
                        admission
                        if isinstance(admission, AdmissionConfig)
                        else AdmissionConfig()
                    )
                    self.admission = AdmissionController(
                        config, clock=self._governor_clock()
                    )
                except ValueError as exc:
                    raise MediatorError(str(exc)) from exc
        if bulkheads is not None and not isinstance(
            bulkheads, BulkheadRegistry
        ):
            try:
                bulkheads = BulkheadRegistry(max_per_source=bulkheads)
            except (TypeError, ValueError) as exc:
                raise MediatorError(str(exc)) from exc
        try:
            self.dispatcher = SourceDispatcher(
                parallelism=parallelism,
                cache=cache,
                hedging=self.hedging,
                bulkheads=bulkheads,
            )
        except ValueError as exc:
            raise MediatorError(str(exc)) from exc
        self.parallelism = parallelism
        self.cache = cache
        brownout = (
            self.admission.brownout if self.admission is not None else None
        )
        if brownout is not None and self.hedging is not None:
            # brownout rung 1: hedging off under pressure, back when calm
            self.dispatcher.hedge_gate = lambda: brownout.allows("hedging")
        self._closed = False

        # telemetry: pass a configured Telemetry, or True for an
        # enabled default; anything else leaves a disabled facade whose
        # pull-time collectors still serve metrics_text()
        if isinstance(telemetry, Telemetry):
            self.telemetry = telemetry
        elif telemetry:
            try:
                self.telemetry = Telemetry(
                    trace_sample_rate=trace_sample_rate,
                    slow_query_ms=slow_query_ms,
                    clock=self._clock,
                )
            except ValueError as exc:
                raise MediatorError(str(exc)) from exc
        else:
            self.telemetry = Telemetry.disabled()
        self.telemetry.bind_dispatcher(self.dispatcher)
        if self._compile_cache is not None:
            self.telemetry.bind_compile_cache(self._compile_cache)
        if self.resilience is not None:
            self.telemetry.bind_resilience(self.resilience)
        if self.admission is not None:
            self.telemetry.bind_admission(self.admission)
        if self.telemetry.enabled:
            self.profiler.bind_metrics(self.telemetry.metrics)

        self.is_recursive = any(
            condition.source == name
            for rule in specification.rules
            for condition in rule.tail
            if isinstance(condition, PatternCondition)
        )

        self.last_program: LogicalDatamergeProgram | None = None
        self.last_context: ExecutionContext | None = None

        if register:
            sources.register(self)

    # -- the Source interface --------------------------------------------

    def answer(
        self,
        query: str | Rule,
        *,
        tenant: str | None = None,
        priority: int = 0,
    ) -> list[OEMObject]:
        """Answer an MSL query against this mediator's view.

        With an admission controller configured the call first clears
        the gate: it may queue (the wait is charged against the query's
        deadline budget) or be shed with a structured
        :class:`~repro.serving.QueryRejected`.  ``tenant`` attributes
        the query to a quota; higher ``priority`` admits first.
        """
        objects, _ = self._run_query(query, tenant, priority)
        return objects

    def query(
        self,
        query: str | Rule,
        *,
        tenant: str | None = None,
        priority: int = 0,
    ) -> ResultSet:
        """Like :meth:`answer`, materialized as a :class:`ResultSet`.

        The result set carries any :class:`SourceWarning`\\ s produced
        in ``degrade`` mode, so callers can tell a complete answer from
        a partial one.
        """
        objects, op_warnings = self._run_query(query, tenant, priority)
        return ResultSet(objects, warnings=op_warnings)

    def _run_query(
        self, query: str | Rule, tenant: str | None, priority: int
    ) -> tuple[list[OEMObject], list[SourceWarning]]:
        query = self._parse_query(query)
        with self._admitted(tenant, priority), self._warning_scope(
            str(query)
        ) as op:
            if (
                self.is_recursive
                or _query_uses_wildcards(query, self.name)
                or _query_constrains_types(query, self.name)
            ):
                objects = self._answer_by_materialization(query)
            else:
                with self.telemetry.tracer.span(
                    "view-expansion", self.name
                ) as span:
                    program = self.expander.expand(query)
                    op.program = program
                    plan = self._fuse_plan(
                        self.optimizer.plan_program(program)
                    )
                    span.set_attribute("rules", len(program))
                if op.insight is not None:
                    op.insight.attach_plan(plan)
                context = self._context()
                objects = self.engine.execute_to_objects(plan, context)
                op.context = context
                if has_semantic_oids(objects):
                    objects = fuse_objects(objects)
            if op.governor is not None:
                # final guard: covers the materialization paths, which
                # never run a constructor node
                objects = op.governor.enforce_result_limit(objects)
            root = current_span()
            if root is not None:
                root.set_attribute("result_objects", len(objects))
            return objects, list(op.warnings)

    def _fusion_active(self) -> bool:
        return self.fuse and not self.engine.trace_enabled

    def _fuse_plan(self, plan):
        """Apply operator fusion to a freshly planned physical graph.

        A no-op with ``fuse=False`` or in trace mode (the trace replay
        needs one table per operator).  The per-chain decisions are
        kept for ``explain``/introspection, and fused-chain counts are
        folded into the profiler so the profile section reports how
        much of the plan ran fused.
        """
        if not self._fusion_active():
            return plan
        plan, decisions = fuse_plan(plan)
        self.last_fusion = decisions
        fused_chains = [d for d in decisions if d.fused]
        if fused_chains:
            self.profiler.record_fusion(
                len(fused_chains),
                sum(len(d.nodes) for d in fused_chains),
            )
        return plan

    def export(self) -> Sequence[OEMObject]:
        """Materialize the whole view (all rules, no conditions)."""
        with self._admitted(None, 0), self._warning_scope(
            f"export {self.name}"
        ) as op:
            if self.is_recursive:
                results = self._fixpoint_materialize()
            else:
                results = []
                context = self._context()
                for rule in self.specification.rules:
                    plan = self._fuse_plan(
                        self.optimizer.plan_rule(LogicalRule(rule))
                    )
                    if op.insight is not None:
                        op.insight.attach_plan(plan)
                    results.extend(
                        self.engine.execute_to_objects(plan, context)
                    )
                op.context = context
                results = eliminate_duplicates(results)
                if has_semantic_oids(results):
                    results = fuse_objects(results)
            if op.governor is not None:
                results = op.governor.enforce_result_limit(list(results))
            return results

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the mediator down deterministically (idempotent).

        New operations are rejected (``MediatorError``, or a
        ``QueryRejected`` with reason ``closed`` when admission is on),
        queued waiters are shed, and the dispatcher's worker pool and
        hedge pools are stopped — no thread outlives the mediator.
        """
        if self._closed:
            return
        self._closed = True
        if self.admission is not None:
            self.admission.close()
        self.dispatcher.shutdown()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Mediator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- per-operation state -----------------------------------------------

    def _op(self) -> _Operation | None:
        """This thread's active operation (None between operations)."""
        return getattr(self._ops, "current", None)

    @property
    def _active_warnings(self) -> list[SourceWarning]:
        op = self._op()
        return op.warnings if op is not None else self.last_warnings

    @property
    def _active_governor(self) -> QueryGovernor | None:
        op = self._op()
        return op.governor if op is not None else self.last_governor

    @contextlib.contextmanager
    def _admitted(
        self, tenant: str | None, priority: int
    ) -> Iterator[None]:
        """Clear the admission gate for one *top-level* operation.

        Nested entries (materialization re-entering :meth:`export`, a
        parent mediator's worker querying this stacked one inside an
        operation it already holds a slot for) pass straight through —
        re-admitting them could deadlock against their own slot.
        """
        admission = self.admission
        if self._closed and admission is None:
            raise MediatorError(f"mediator {self.name!r} is closed")
        if admission is None or self._op() is not None:
            # a closed admission controller sheds with a structured
            # QueryRejected(reason="closed") below instead
            yield
            return
        deadline = self.budget.deadline if self.budget is not None else None
        ticket = admission.admit(
            tenant=tenant, priority=priority, deadline=deadline
        )
        self._ops.pending_wait = ticket.waited
        ok = True
        try:
            yield
        except BaseException:
            ok = False
            raise
        finally:
            self._ops.pending_wait = 0.0
            ticket.complete(ok)

    # -- query admission ---------------------------------------------------

    def _parse_query(self, query: str | Rule) -> Rule:
        """Parse and statically check ``query``, raising MediatorError.

        Raw lexer/parser/semantic exceptions never leak: syntax errors
        surface as :class:`MediatorError` with the source position the
        MSL layer reported, semantic problems with their explanation.
        """
        if isinstance(query, str):
            from repro.msl.parser import parse_query

            try:
                query = parse_query(query)
            except MSLSyntaxError as exc:
                error = MediatorError(f"invalid MSL query: {exc}")
                error.position = exc.position
                error.line = exc.line
                error.column = exc.column
                raise error from exc
            except MSLError as exc:
                raise MediatorError(f"invalid MSL query: {exc}") from exc
        try:
            check_rule(query, is_query=True)
        except MSLSemanticError as exc:
            raise MediatorError(f"invalid MSL query: {exc}") from exc
        return query

    # -- introspection -----------------------------------------------------

    def explain_analyze(
        self,
        query: str | Rule,
        *,
        tenant: str | None = None,
        priority: int = 0,
    ) -> AnalyzeReport:
        """Execute ``query`` while recording per-node actuals.

        The returned :class:`~repro.obs.insight.AnalyzeReport` carries
        the answer plus, for every plan node (fused-chain constituents
        included), the optimizer's estimated cardinality next to the
        observed rows in/out, wall time, and source-call latency, and
        any mid-query misestimate events with the re-rank decisions
        they triggered.  ``report.render()`` is the annotated plan
        tree; ``report.to_json()`` the structured export.  Recording is
        observation-only: the answer is bit-for-bit the one
        :meth:`answer` returns.
        """
        parsed = self._parse_query(query)
        insight = QueryInsight()
        self._ops.pending_insight = insight
        started = perf_counter()
        try:
            objects, op_warnings = self._run_query(
                parsed, tenant, priority
            )
        finally:
            self._ops.pending_insight = None
        return AnalyzeReport(
            str(parsed),
            insight,
            objects,
            warnings=op_warnings,
            seconds=perf_counter() - started,
        )

    def statistics_snapshot(self) -> dict:
        """The statistics database as a JSON-serialisable dict.

        Persist it (``--stats-out``) and feed it to a fresh mediator
        (``--stats-in`` / :meth:`restore_statistics`) so warm estimates
        — observed cardinalities, sampled selectivities, per-source
        cost observations — survive restarts.
        """
        return self.statistics.snapshot_dict()

    def restore_statistics(self, snapshot: dict) -> None:
        """Merge a :meth:`statistics_snapshot` payload back in."""
        try:
            self.statistics.restore_dict(snapshot)
        except (AttributeError, KeyError, TypeError, ValueError) as exc:
            raise MediatorError(
                f"invalid statistics snapshot: {exc}"
            ) from exc

    def _feed_statistics(self) -> None:
        """Close the telemetry→optimizer loop after one operation.

        Observed cardinalities already stream in per source call (the
        engine's ``record``); this adds the *cost* half: per-source
        latency medians from the resilience health window and current
        breaker states, which :meth:`SourceStatistics.cost_weight`
        turns into the join-order multiplier.
        """
        if self.resilience is None:
            return
        health = self.resilience.health
        for name, record in health.snapshot().items():
            latency = health.latency_quantile(name, 0.5, min_samples=3)
            self.statistics.observe_source(
                name,
                latency=latency,
                breaker_state=record.breaker_state,
            )

    def explain(self, query: str | Rule) -> str:
        """The logical program and physical plan for ``query`` as text.

        When a resilience policy is configured (or degrade mode is on)
        a ``-- resilience --`` section reports the policy and the
        current per-source health, including breaker states.
        """
        query = self._parse_query(query)
        program = self.expander.expand(query)
        plan = self.optimizer.plan_program(program)
        text = (
            f"-- logical datamerge program ({len(program)} rule(s)) --\n"
            f"{program}\n\n"
            f"-- physical datamerge graph --\n"
            f"{plan.describe()}"
        )
        if self._fusion_active():
            # fuse a fresh copy of the plan: fuse_plan rewires node
            # inputs in place, and the unfused graph above should show
            # the optimizer's output
            fused, decisions = fuse_plan(
                self.optimizer.plan_program(program)
            )
            lines = [fused.describe(), "", "decisions:"]
            lines.extend(f"  {decision.render()}" for decision in decisions)
            text += "\n\n-- operator fusion --\n" + "\n".join(lines)
        if self.resilience is not None or self.on_source_failure != "fail":
            lines = [f"mode: on_source_failure={self.on_source_failure}"]
            if self.resilience is not None:
                lines.append(self.resilience.describe())
                health = self.resilience.health.render()
                if health:
                    lines.append(health)
            text += "\n\n-- resilience --\n" + "\n".join(lines)
        sharded = [
            source for source in self.sources
            if isinstance(source, ShardedSource)
        ]
        if sharded or not self.semijoin:
            lines = [
                f"semijoin: {'on' if self.semijoin else 'off'}"
                f" (bloom threshold: {self.bloom_threshold} values)"
            ]
            for source in sharded:
                lines.append(source.describe())
            text += "\n\n-- sharding --\n" + "\n".join(lines)
        governor = self._make_governor([])
        if governor is not None:
            text += "\n\n-- governor --\n" + governor.describe()
        if self.dispatcher.active:
            text += "\n\n-- execution --\n" + self.dispatcher.describe()
        if self.admission is not None:
            text += "\n\n-- serving --\n" + self.admission.describe()
        lines = [
            f"compile: {'on' if self._compile_cache is not None else 'off'}"
        ]
        if self._compile_cache is not None:
            stats = self._compile_cache.stats()
            lines.append(
                f"cache: {stats['rules']} rule(s),"
                f" {stats['patterns']} pattern(s),"
                f" {stats['hits']} hit(s), {stats['misses']} miss(es)"
            )
        lines.append(self.profiler.render())
        text += "\n\n-- profile --\n" + "\n".join(lines)
        snapshot = self.statistics.snapshot_dict()
        if snapshot["labels"] or snapshot["source_costs"]:
            lines = []
            if snapshot["labels"]:
                lines.append(
                    "observed cardinalities (source/label:"
                    " average over observations):"
                )
                for row in snapshot["labels"]:
                    lines.append(
                        f"  {row['source']}/{row['label']}:"
                        f" {row['average']:.1f} over"
                        f" {row['observations']} observation(s)"
                    )
            if snapshot["source_costs"]:
                lines.append(
                    "source cost weights (latency EMA, breaker):"
                )
                for row in snapshot["source_costs"]:
                    weight = self.statistics.cost_weight(row["source"])
                    lines.append(
                        f"  {row['source']}: weight {weight:.2f}"
                        f" (latency {row['latency'] * 1e3:.1f}ms,"
                        f" breaker {row['breaker_state']})"
                    )
            qerrors = self.statistics.qerror_summary()
            if qerrors:
                lines.append(
                    "estimate q-error (median / max over window):"
                )
                for key, summary in qerrors.items():
                    lines.append(
                        f"  {key}: {summary['median']:.2f}"
                        f" / {summary['max']:.2f}"
                        f" ({summary['observations']} obs)"
                    )
            text += "\n\n-- statistics --\n" + "\n".join(lines)
        text += "\n\n-- telemetry --\n" + self.telemetry.describe()
        return text

    def health_snapshot(self):
        """One namespaced view of per-source health and execution state.

        Three top-level keys, always present:

        * ``"sources"`` — per-source health records (empty without a
          resilience layer);
        * ``"execution"`` — dispatch and cache statistics (empty unless
          the dispatcher is active: ``parallelism > 1`` or an answer
          cache);
        * ``"profile"`` — the profiler's per-node and per-pattern
          counters, plus compile cache statistics when the compiled
          backend is on (empty before any query executed).

        Admission-gated mediators carry a fourth key, ``"serving"`` —
        the admission controller's counters (submitted / admitted /
        completed / shed by reason), queue depth, concurrency limit,
        and brownout state.

        The pre-namespacing shape (source names at top level, reserved
        ``"_execution"`` / ``"_profile"`` keys) was deprecated in the
        observability PR and has been removed: old keys now raise
        ``KeyError`` like any other missing key.
        """
        snapshot = dict(
            sources=(
                {} if self.resilience is None
                else self.resilience.health.snapshot()
            ),
            execution=(
                self.dispatcher.stats() if self.dispatcher.active else {}
            ),
            profile={},
        )
        profile = self.profiler.snapshot()
        if profile["nodes"] or profile["patterns"]:
            if self._compile_cache is not None:
                profile["compile"] = self._compile_cache.stats()
            snapshot["profile"] = profile
        if self.admission is not None:
            # the key appears only on admission-gated mediators, so the
            # historical three-key shape is otherwise unchanged
            snapshot["serving"] = self.admission.snapshot()
        return snapshot

    def metrics_text(self) -> str:
        """The telemetry registry in Prometheus text exposition format.

        Works on a telemetry-disabled mediator too: pull-time
        collectors (dispatcher, caches, breaker states) are bound
        regardless, so the scrape reflects live component state.
        """
        return self.telemetry.metrics_text()

    @contextlib.contextmanager
    def _warning_scope(
        self, operation: str = "operation"
    ) -> Iterator[_Operation]:
        """Run one top-level operation in its own :class:`_Operation`.

        Nested entries (materialization calling :meth:`export`) share
        the outermost operation's warning list and governor, so the
        published ``last_warnings`` reflects the whole user-visible
        call.  The operation owns the run's :class:`QueryGovernor`: one
        governor (budget counters, deadline clock, cancellation token)
        spans the whole user-visible call, nested materialization
        included — and, when telemetry is on, the run's root ``query``
        span: opened here at depth 0, current for the whole call (so
        every span underneath parents into one tree), closed with the
        operation's terminal status (``ok``, ``degraded`` when warnings
        were collected, ``cancelled``, ``error``) and rolled into the
        metrics registry.

        Operations live in a ``threading.local``, so concurrent calls
        on a shared mediator are fully independent; the ``last_*``
        introspection attributes are published when each operation
        finishes, last writer wins.
        """
        outer = self._op()
        if outer is not None:
            outer.depth += 1
            try:
                yield outer
            finally:
                outer.depth -= 1
            return
        waited = getattr(self._ops, "pending_wait", 0.0)
        op = _Operation(admission_wait=waited)
        op.insight = getattr(self._ops, "pending_insight", None)
        op.governor = self._make_governor(op.warnings, waited)
        if op.governor is not None:
            op.governor.start()
        self._ops.current = op
        tracer = self.telemetry.tracer
        root = tracer.start_query(operation)
        if waited:
            root.set_attribute("admission_wait_ms", round(waited * 1e3, 3))
        brownout = (
            self.admission.brownout if self.admission is not None else None
        )
        if brownout is not None and brownout.active:
            root.set_attribute("brownout_level", brownout.level)
        status = "ok"
        try:
            with tracer.use(root):
                yield op
        except BaseException as exc:
            status = status_of_exception(exc)
            raise
        finally:
            self._ops.current = None
            if status == "ok" and op.warnings:
                status = "degraded"
            root.set_attribute("warnings", len(op.warnings))
            tracer.finish_span(root, status=status)
            for context in op.contexts:
                context.flush_telemetry()
            # telemetry -> optimizer feedback (§3.5): fold the health
            # window's observed latencies and breaker states into the
            # statistics database after every top-level operation
            self._feed_statistics()
            self.telemetry.record_operation(
                status,
                root.duration,
                op.warnings,
                op.governor,
            )
            # publish for introspection (compat): last writer wins
            self.last_warnings = op.warnings
            self.last_governor = op.governor
            if op.program is not None:
                self.last_program = op.program
            if op.context is not None:
                self.last_context = op.context

    def _governor_clock(self) -> Clock:
        """The governor reads time where the reliability layer does."""
        if self.resilience is not None:
            return self.resilience.clock
        return self._clock

    def _make_governor(
        self, warnings: list, waited: float = 0.0
    ) -> QueryGovernor | None:
        """A fresh per-run governor, or ``None`` when ungoverned.

        Re-evaluated at every run so budgets (and the resilience
        manager's clock) can be swapped on a live mediator.  Time spent
        queued at the admission gate (``waited``) is charged against
        the deadline: the user's budget bounds end-to-end latency, not
        just execution.  Under deep brownout (``strict-budgets`` shed)
        strict budgets run in truncate mode, clipping answers instead
        of aborting queries that already consumed resources.
        """
        budget = self.budget
        if (
            budget is None
            and self.cancellation is None
            and self.on_malformed_answer != "quarantine"
        ):
            return None
        if budget is not None and budget.deadline is not None and waited > 0:
            budget = dataclasses.replace(
                budget,
                deadline=max(budget.deadline - waited, _MIN_DEADLINE),
            )
        mode = self.budget_mode
        brownout = (
            self.admission.brownout if self.admission is not None else None
        )
        if brownout is not None and not brownout.allows("strict-budgets"):
            mode = "truncate"
        sanitizer = None
        shaped = budget is not None and (
            budget.max_depth is not None
            or budget.max_answer_objects is not None
        )
        if shaped or self.on_malformed_answer == "quarantine":
            sanitizer = AnswerSanitizer(
                max_depth=(
                    budget.max_depth
                    if budget is not None and budget.max_depth is not None
                    else DEFAULT_MAX_DEPTH
                ),
                max_objects=(
                    budget.max_answer_objects if budget is not None else None
                ),
                mode=(
                    "lenient"
                    if self.on_malformed_answer == "quarantine"
                    else "strict"
                ),
            )
        return QueryGovernor(
            budget=budget,
            mode=mode,
            clock=self._governor_clock(),
            token=self.cancellation,
            warnings=warnings,
            sanitizer=sanitizer,
        )

    def _context(self) -> ExecutionContext:
        op = self._op()
        governor = self._active_governor
        brownout = (
            self.admission.brownout if self.admission is not None else None
        )
        # head-based sampling: under an unsampled root the engine gets
        # no tracer at all (the whole span path vanishes); metrics stay
        # on — sampling governs traces, never counters
        tracer = self.telemetry.tracer if self.telemetry.enabled else None
        if tracer is not None:
            root = current_span()
            if root is not None and not root.sampled:
                tracer = None
        if tracer is not None and brownout is not None:
            # brownout rung 2: spans are pure observability
            if not brownout.allows("tracing"):
                tracer = None
        slicer = None
        if (
            self.deadline_slicing
            and governor is not None
            and governor.budget.deadline is not None
        ):
            slicer = DeadlineSlicer(
                governor,
                adaptive=(
                    self.resilience.adaptive
                    if self.resilience is not None
                    else None
                ),
            )
        context = ExecutionContext(
            sources=self.sources,
            externals=self.externals,
            oidgen=self._oidgen,
            statistics=self.statistics,
            trace=[] if self.engine.trace_enabled else None,
            resilience=self.resilience,
            on_source_failure=self.on_source_failure,
            warnings=self._active_warnings,
            governor=governor,
            dispatcher=(
                self.dispatcher if self.dispatcher.active else None
            ),
            compiler=self._compile_cache,
            profiler=self.profiler,
            tracer=tracer,
            telemetry=(
                self.telemetry if self.telemetry.enabled else None
            ),
            slicer=slicer,
            force_sequential=(
                brownout is not None
                and not brownout.allows("parallelism")
            ),
            semijoin=self.semijoin,
            bloom_threshold=self.bloom_threshold,
            insight=op.insight if op is not None else None,
            misestimate_factor=self.misestimate_factor,
        )
        if context.telemetry is not None and op is not None:
            # flushed (once per run) at the end of the warning scope
            op.contexts.append(context)
        return context

    def _export_source(self, name: str) -> Sequence[OEMObject]:
        """Export a foreign source through the reliability layer.

        The materialization paths pull whole source views; in degrade
        mode an unavailable source contributes an empty forest plus a
        warning, mirroring :meth:`ExecutionContext.send_query`.
        """
        governor = self._active_governor
        if governor is not None and not governor.allow_source_call(name):
            return []
        source = self.sources.resolve(name)
        if self.resilience is not None:
            attempts_before = self.resilience.health.attempts_of(name)
            source = self.resilience.wrap(source)
        else:
            attempts_before = 0
        try:
            with self.telemetry.tracer.span("source-call", name) as span:
                span.set_attribute("export", True)
                result = list(source.export())
                if governor is not None:
                    result = governor.sanitize_answer(
                        name, result, sink=self._active_warnings
                    )
                span.set_attribute("objects", len(result))
            self.telemetry.record_source_call(name, len(result))
            return result
        except SourceError as exc:
            if self.on_source_failure != "degrade":
                raise
            attempts = (
                self.resilience.health.attempts_of(name) - attempts_before
                if self.resilience is not None
                else 1
            )
            self._active_warnings.append(
                SourceWarning(
                    source=name,
                    message=str(exc),
                    attempts=attempts,
                    error=type(exc).__name__,
                )
            )
            return []

    # -- materialization paths ---------------------------------------------

    def _evaluate_rule(
        self,
        rule: Rule,
        forests: dict[str | None, Sequence[OEMObject]],
    ) -> list[OEMObject]:
        """One rule over materialized forests, via the active backend."""
        if self._compile_cache is not None:
            return self._compile_cache.rule(rule).evaluate(
                forests, self.externals, self._oidgen, check=False
            )
        return evaluate_rule(
            rule, forests, self.externals, self._oidgen, check=False
        )

    def _answer_by_materialization(self, query: Rule) -> list[OEMObject]:
        view = list(self.export())
        forests: dict[str | None, Sequence[OEMObject]] = {
            None: view,
            self.name: view,
        }
        for condition in query.tail:
            if isinstance(condition, PatternCondition) and condition.source:
                if condition.source == self.name:
                    continue
                forests[condition.source] = self._export_source(
                    condition.source
                )
        return self._evaluate_rule(query, forests)

    def _fixpoint_materialize(self) -> list[OEMObject]:
        """Naive fixpoint for recursive specifications.

        Evaluates all rules against (source exports + current view)
        until the view stops changing; raises after
        ``max_fixpoint_iterations`` rounds (a recursive OEM view can be
        genuinely infinite — e.g. ever-deeper nesting).
        """
        base_forests: dict[str | None, Sequence[OEMObject]] = {}
        for rule in self.specification.rules:
            for condition in rule.tail:
                if (
                    isinstance(condition, PatternCondition)
                    and condition.source
                    and condition.source != self.name
                    and condition.source not in base_forests
                ):
                    base_forests[condition.source] = self._export_source(
                        condition.source
                    )

        view: list[OEMObject] = []
        seen_keys: set = set()
        governor = self._active_governor
        for _ in range(self.max_fixpoint_iterations):
            if governor is not None:
                # each fixpoint round is a cooperative checkpoint: an
                # expired deadline or cancelled token stops a recursive
                # view from iterating forever within its budget
                governor.checkpoint()
                if governor.expired:
                    return view
            forests = dict(base_forests)
            forests[self.name] = view
            forests[None] = view
            new_objects: list[OEMObject] = []
            for rule in self.specification.rules:
                new_objects.extend(self._evaluate_rule(rule, forests))
            if has_semantic_oids(new_objects):
                new_objects = fuse_objects(new_objects)
            keys = {structural_key(obj) for obj in new_objects}
            if keys <= seen_keys:
                return view
            merged = eliminate_duplicates(list(view) + new_objects)
            if has_semantic_oids(merged):
                merged = fuse_objects(merged)
                merged = eliminate_duplicates(merged)
            view = merged
            seen_keys |= keys
        raise MediatorError(
            f"recursive view {self.name!r} did not reach a fixpoint in"
            f" {self.max_fixpoint_iterations} iterations"
        )


def _query_constrains_types(query: Rule, mediator_name: str) -> bool:
    """Does any mediator-addressed condition constrain a *type* slot?

    Specification heads carry no type slot (view-object types follow
    from the bound values), so type constraints cannot be verified by
    static expansion; such queries are answered over the materialized
    view, where the matcher checks types directly.
    """

    def pattern_has_type(pattern: Pattern) -> bool:
        if pattern.type is not None:
            return True
        value = pattern.value
        if isinstance(value, SetPattern):
            for item in value.items:
                if isinstance(item, PatternItem) and pattern_has_type(
                    item.pattern
                ):
                    return True
            if value.rest is not None:
                return any(
                    pattern_has_type(c) for c in value.rest.conditions
                )
        return False

    for condition in query.tail:
        if isinstance(condition, PatternCondition) and condition.source in (
            None,
            mediator_name,
        ):
            if pattern_has_type(condition.pattern):
                return True
    return False


def _query_uses_wildcards(query: Rule, mediator_name: str) -> bool:
    """Does any condition addressed to the mediator use ``..`` items?"""

    def pattern_has_wildcard(pattern: Pattern) -> bool:
        value = pattern.value
        if not isinstance(value, SetPattern):
            return False
        for item in value.items:
            if isinstance(item, PatternItem):
                if item.descendant or pattern_has_wildcard(item.pattern):
                    return True
        if value.rest is not None:
            return any(
                pattern_has_wildcard(c) for c in value.rest.conditions
            )
        return False

    for condition in query.tail:
        if isinstance(condition, PatternCondition) and condition.source in (
            None,
            mediator_name,
        ):
            if pattern_has_wildcard(condition.pattern):
                return True
    return False

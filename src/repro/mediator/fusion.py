"""Object fusion via semantic object-ids.

Section 2, "Other Features": "MSL allows the specification of *semantic
object-id's* that semantically identify an exported object ... Semantic
object-id's provide a powerful mechanism for object fusion."  (The full
treatment is the companion paper [PGM], "Object Fusion in Mediator
Systems".)

The mechanism: a rule head gives its object the oid term
``&person(N)``.  Every binding — possibly produced by *different rules*
— that evaluates the term to the same :class:`~repro.oem.oid.SemanticOid`
describes the *same* view object, so their sub-objects are merged into
one fused object.  This is how a mediator can combine information about
a person appearing in only one source with information from both,
without the join-only behaviour of the running example's ``med``.

Naming note: this is **object** fusion, a semantic feature of the
result set.  It is unrelated to :mod:`repro.mediator.pipeline`, which
implements **operator** fusion — a physical-plan optimization that
merges straight-line datamerge operators into single pipeline nodes.
(``bench_pipeline_fusion.py`` measures both, in separately marked
sections: operator fusion throughout, object fusion under "S4".)
"""

from __future__ import annotations

from typing import Iterable

from repro.oem.compare import eliminate_duplicates
from repro.oem.model import OEMObject
from repro.oem.oid import SemanticOid

__all__ = ["fuse_objects", "has_semantic_oids"]


def has_semantic_oids(objects: Iterable[OEMObject]) -> bool:
    """True when any top-level object carries a semantic oid."""
    return any(isinstance(obj.oid, SemanticOid) for obj in objects)


def fuse_objects(objects: Iterable[OEMObject]) -> list[OEMObject]:
    """Merge objects whose semantic object-ids coincide.

    Objects with plain oids pass through untouched (their identity is
    arbitrary, so there is nothing to fuse on).  For objects sharing a
    :class:`SemanticOid`:

    * their labels must agree (a semantic oid names one object; rules
      disagreeing on its label is a specification error);
    * atomic objects must carry equal values;
    * set objects are merged by unioning their sub-objects (recursively
      fusing sub-objects that themselves carry semantic oids), with
      structural duplicate elimination.

    Order is preserved: a fused object appears at the position of its
    first contributor.
    """
    order: list[object] = []
    groups: dict[object, list[OEMObject]] = {}
    passthrough: dict[int, OEMObject] = {}

    for position, obj in enumerate(objects):
        if isinstance(obj.oid, SemanticOid):
            key = obj.oid
            if key not in groups:
                groups[key] = []
                order.append(("fuse", key))
            groups[key].append(obj)
        else:
            order.append(("plain", position))
            passthrough[position] = obj

    result: list[OEMObject] = []
    for kind, key in order:
        if kind == "plain":
            result.append(passthrough[key])  # type: ignore[index]
            continue
        result.append(_fuse_group(groups[key]))  # type: ignore[index]
    return result


def _fuse_group(group: list[OEMObject]) -> OEMObject:
    first = group[0]
    if len(group) == 1:
        if first.is_set:
            return first.with_children(fuse_objects(first.children))
        return first
    labels = {obj.label for obj in group}
    if len(labels) != 1:
        raise ValueError(
            f"objects with semantic oid {first.oid} disagree on label:"
            f" {sorted(labels)}"
        )
    if all(obj.is_atomic for obj in group):
        values = {obj.value for obj in group}
        if len(values) != 1:
            raise ValueError(
                f"atomic objects with semantic oid {first.oid} disagree"
                f" on value: {sorted(map(repr, values))}"
            )
        return first
    if any(obj.is_atomic for obj in group):
        raise ValueError(
            f"objects with semantic oid {first.oid} mix atomic and set"
            f" values"
        )
    merged_children: list[OEMObject] = []
    for obj in group:
        merged_children.extend(obj.children)
    fused_children = fuse_objects(merged_children)
    return OEMObject(
        first.label,
        eliminate_duplicates(fused_children),
        "set",
        first.oid,
    )

"""Source statistics for cost-based optimization.

Section 3.5: when "the wrappers do not provide cost and statistics
information ... the optimizer has to rely on ad-hoc heuristics ... or
tries to build its own statistics database that is based on results of
previous queries and on sampling".  This module is that statistics
database: the engine feeds back (source, top-level label, result count)
observations after every shipped query, and the optimizer asks for
cardinality estimates when ordering joins.

Estimates are deliberately simple — per (source, label) exponential
moving averages with a selectivity discount per constant condition —
because the point the paper makes (and our benchmarks reproduce) is the
*difference* between knowing nothing and knowing roughly which pattern
is small.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Sequence

from repro.msl.ast import Const, Pattern, PatternItem, SetPattern, VarItem

__all__ = ["SourceStatistics", "DEFAULT_CARDINALITY", "DEFAULT_SELECTIVITY"]

#: Assumed result size for a never-seen (source, label) pair.
DEFAULT_CARDINALITY = 100.0

#: Assumed fraction of objects surviving one constant condition.
DEFAULT_SELECTIVITY = 0.1

#: Weight of the newest observation in the moving average.
_ALPHA = 0.5


@dataclass
class _LabelStats:
    average: float = DEFAULT_CARDINALITY
    observations: int = 0

    def observe(self, count: int) -> None:
        if self.observations == 0:
            self.average = float(count)
        else:
            self.average = _ALPHA * count + (1.0 - _ALPHA) * self.average
        self.observations += 1


@dataclass
class SourceStatistics:
    """Cardinality observations per (source, top-level label), plus
    value-level selectivities per (source, label, child label, value)
    gathered by sampling."""

    default_cardinality: float = DEFAULT_CARDINALITY
    selectivity: float = DEFAULT_SELECTIVITY
    _stats: dict[tuple[str, str], _LabelStats] = field(default_factory=dict)
    _value_stats: dict[tuple[str, str, str, object], _LabelStats] = field(
        default_factory=dict
    )
    # concurrent queries feed observations from engine threads; EMA
    # updates are read-modify-write, so guard every mutation
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    # -- feedback -----------------------------------------------------------

    def record(self, source: str, pattern: Pattern, count: int) -> None:
        """Feed back that ``pattern`` at ``source`` returned ``count`` rows.

        The observation is normalised by the pattern's selectivity so
        that what is stored approximates the label's *base* cardinality.
        """
        label = _label_of(pattern)
        if label is None:
            return
        conditions = count_constant_conditions(pattern)
        discount = self.selectivity**conditions
        base_estimate = count / discount if discount > 0 else count
        with self._lock:
            entry = self._stats.setdefault((source, label), _LabelStats())
            entry.observe(int(base_estimate))

    def record_label(self, source: str, label: str, count: int) -> None:
        """Direct observation of a label's cardinality (sampling)."""
        with self._lock:
            entry = self._stats.setdefault((source, label), _LabelStats())
            entry.observe(count)

    def sample_source(self, source: "object", limit: int | None = None) -> int:
        """Probe a source's export and record per-label cardinalities
        *and* per-(child label, value) selectivities.

        This is the "sampling" half of Section 3.5's statistics
        database.  ``source`` is anything with ``name`` and ``export()``
        (a :class:`~repro.wrappers.base.Source`); at most ``limit``
        top-level objects are examined (None = all).  Counts observed
        from a truncated sample are scaled up proportionally.  Returns
        the number of objects examined.
        """
        from collections import Counter

        name = source.name  # type: ignore[attr-defined]
        export = source.export()  # type: ignore[attr-defined]
        total = len(export)
        if limit is not None and total > limit:
            examined = export[:limit]
            scale = total / limit
        else:
            examined = export
            scale = 1.0
        counts = Counter(obj.label for obj in examined)
        value_counts: Counter = Counter()
        for obj in examined:
            for child in obj.children:
                if child.is_atomic:
                    try:
                        hash(child.value)
                    except TypeError:
                        continue
                    value_counts[
                        (obj.label, child.label, child.value)
                    ] += 1
        for label, count in counts.items():
            self.record_label(name, label, int(count * scale))
        with self._lock:
            for (label, child, value), count in value_counts.items():
                entry = self._value_stats.setdefault(
                    (name, label, child, value), _LabelStats()
                )
                entry.observe(int(count * scale))
        return len(examined)

    def value_selectivity(
        self, source: str, label: str | None, child: str, value: object
    ) -> float:
        """Fraction of ``label`` objects whose ``child`` equals ``value``.

        Falls back to the default selectivity when nothing was sampled.
        """
        if label is None:
            return self.selectivity
        try:
            hash(value)
        except TypeError:
            return self.selectivity
        entry = self._value_stats.get((source, label, child, value))
        if entry is None or entry.observations == 0:
            return self.selectivity
        base = self.base_cardinality(source, label)
        if base <= 0:
            return self.selectivity
        return min(1.0, entry.average / base)

    # -- estimation -----------------------------------------------------------

    def base_cardinality(self, source: str, label: str | None) -> float:
        if label is None:
            return self.default_cardinality
        entry = self._stats.get((source, label))
        if entry is None or entry.observations == 0:
            return self.default_cardinality
        return entry.average

    def estimate(self, source: str, pattern: Pattern) -> float:
        """Estimated result size of shipping ``pattern`` to ``source``.

        Value-level selectivities from sampling are used per constant
        child condition when available; other constant conditions fall
        back to the default selectivity.
        """
        label = _label_of(pattern)
        base = self.base_cardinality(source, label)
        estimate = base
        accounted = 0
        for child, value in constant_child_conditions(pattern):
            estimate *= self.value_selectivity(source, label, child, value)
            accounted += 1
        # remaining conditions (oid constants, top-level value constants)
        remaining = count_constant_conditions(pattern) - accounted
        if label is not None:
            remaining -= 1  # the top label itself is not a filter here
        if remaining > 0:
            estimate *= self.selectivity**remaining
        return estimate

    def sharded_estimate(
        self, source: str, shard_names: "Sequence[str]", pattern: Pattern
    ) -> float:
        """Estimated result size across the surviving shards.

        Shard-qualified source names (``big#3``) accrue their own
        per-label cardinalities through the engine's normal feedback,
        so each observed shard contributes its own estimate; a shard
        never observed contributes an even split of the *logical*
        source's estimate instead of a full default each (eight unseen
        shards are one source, not eight).
        """
        if not shard_names:
            return 0.0
        label = _label_of(pattern)
        whole = self.estimate(source, pattern)
        total = 0.0
        for name in shard_names:
            if label is not None and self.has_observations(name, label):
                total += self.estimate(name, pattern)
            else:
                total += whole / len(shard_names)
        return total

    def has_observations(self, source: str, label: str) -> bool:
        entry = self._stats.get((source, label))
        return entry is not None and entry.observations > 0

    def clear(self) -> None:
        with self._lock:
            self._stats.clear()
            self._value_stats.clear()


def constant_child_conditions(
    pattern: Pattern,
) -> list[tuple[str, object]]:
    """(child label, constant value) filters of a pattern's direct items
    (including rest conditions)."""
    found: list[tuple[str, object]] = []
    value = pattern.value
    if isinstance(value, SetPattern):
        items = list(value.items)
        conditions = (
            list(value.rest.conditions) if value.rest is not None else []
        )
        for item in items:
            if isinstance(item, PatternItem) and not item.descendant:
                p = item.pattern
                if isinstance(p.label, Const) and isinstance(p.value, Const):
                    found.append((str(p.label.value), p.value.value))
        for condition in conditions:
            if isinstance(condition.label, Const) and isinstance(
                condition.value, Const
            ):
                found.append(
                    (str(condition.label.value), condition.value.value)
                )
    return found


def _label_of(pattern: Pattern) -> str | None:
    if isinstance(pattern.label, Const):
        return str(pattern.label.value)
    return None


def count_constant_conditions(pattern: Pattern) -> int:
    """Number of constant filters a pattern carries (its "boundness").

    This is the quantity behind the paper's join-order heuristic: "the
    outer patterns of the join order are the ones that have the greatest
    number of conditions".  A *condition* is a constant that narrows the
    result: the top-level label (it selects the collection/relation), a
    constant oid, and every constant **value** at any depth.  Constant
    sub-object labels with variable values (``<name N>``) are structural
    requirements, not filters, and do not count.
    """

    def value_constants(p: Pattern) -> int:
        count = 1 if isinstance(p.oid, Const) else 0
        value = p.value
        if isinstance(value, Const):
            return count + 1
        if isinstance(value, SetPattern):
            for item in value.items:
                if isinstance(item, PatternItem):
                    count += value_constants(item.pattern)
                elif isinstance(item, VarItem):
                    continue
            if value.rest is not None:
                for condition in value.rest.conditions:
                    count += value_constants(condition)
        return count

    count = value_constants(pattern)
    if isinstance(pattern.label, Const):
        count += 1
    return count

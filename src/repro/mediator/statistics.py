"""Source statistics for cost-based optimization.

Section 3.5: when "the wrappers do not provide cost and statistics
information ... the optimizer has to rely on ad-hoc heuristics ... or
tries to build its own statistics database that is based on results of
previous queries and on sampling".  This module is that statistics
database: the engine feeds back (source, top-level label, result count)
observations after every shipped query, and the optimizer asks for
cardinality estimates when ordering joins.

Estimates are deliberately simple — per (source, label) exponential
moving averages with a selectivity discount per constant condition —
because the point the paper makes (and our benchmarks reproduce) is the
*difference* between knowing nothing and knowing roughly which pattern
is small.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.msl.ast import Const, Pattern, PatternItem, SetPattern, VarItem

__all__ = [
    "SourceStatistics",
    "DEFAULT_CARDINALITY",
    "DEFAULT_SELECTIVITY",
    "REFERENCE_LATENCY",
    "qerror",
]

#: Assumed result size for a never-seen (source, label) pair.
DEFAULT_CARDINALITY = 100.0

#: Assumed fraction of objects surviving one constant condition.
DEFAULT_SELECTIVITY = 0.1

#: Weight of the newest observation in the moving average.
_ALPHA = 0.5

#: Latency (seconds) at which a source's cost weight doubles.  A source
#: answering in ~10ms keeps weight ~1; one answering in 100ms costs ~11x.
REFERENCE_LATENCY = 0.010

#: Cost-weight penalty per breaker state: probing sources are risky,
#: open ones should only be visited when nothing else binds the query.
_BREAKER_PENALTY = {"closed": 1.0, "half_open": 10.0, "open": 100.0}

#: Q-error observations kept per (source, label) window.
_QERROR_WINDOW = 64


def qerror(estimated: float, actual: float) -> float:
    """The symmetric estimate-error factor ``max(est/act, act/est)``.

    Both sides are floored at 0.5 so empty results (actual 0) against a
    small estimate read as a bounded factor instead of infinity.
    """
    est = max(float(estimated), 0.5)
    act = max(float(actual), 0.5)
    return est / act if est >= act else act / est


@dataclass
class _LabelStats:
    average: float = DEFAULT_CARDINALITY
    observations: int = 0

    def observe(self, count: int) -> None:
        if self.observations == 0:
            self.average = float(count)
        else:
            self.average = _ALPHA * count + (1.0 - _ALPHA) * self.average
        self.observations += 1


@dataclass
class _SourceCost:
    """Observed per-source access cost: latency EMA + breaker state."""

    latency: float = 0.0
    breaker_state: str = "closed"
    observations: int = 0

    def observe(self, latency: float | None, breaker_state: str | None) -> None:
        if latency is not None:
            if self.observations == 0:
                self.latency = float(latency)
            else:
                self.latency = (
                    _ALPHA * latency + (1.0 - _ALPHA) * self.latency
                )
            self.observations += 1
        if breaker_state is not None:
            self.breaker_state = breaker_state

    def weight(self) -> float:
        penalty = _BREAKER_PENALTY.get(self.breaker_state, 1.0)
        if self.observations == 0:
            return penalty
        return (1.0 + self.latency / REFERENCE_LATENCY) * penalty


class _QErrorWindow:
    """Bounded ring of recent q-error observations for one key."""

    __slots__ = ("values", "total", "_next")

    def __init__(self) -> None:
        self.values: list[float] = []
        self.total = 0
        self._next = 0

    def observe(self, value: float) -> None:
        if len(self.values) < _QERROR_WINDOW:
            self.values.append(value)
        else:
            self.values[self._next] = value
            self._next = (self._next + 1) % _QERROR_WINDOW
        self.total += 1

    def summary(self) -> dict[str, float | int]:
        ordered = sorted(self.values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            median = ordered[mid]
        else:
            median = (ordered[mid - 1] + ordered[mid]) / 2.0
        return {
            "observations": self.total,
            "median": median,
            "max": ordered[-1],
        }


@dataclass
class SourceStatistics:
    """Cardinality observations per (source, top-level label), plus
    value-level selectivities per (source, label, child label, value)
    gathered by sampling."""

    default_cardinality: float = DEFAULT_CARDINALITY
    selectivity: float = DEFAULT_SELECTIVITY
    _stats: dict[tuple[str, str], _LabelStats] = field(default_factory=dict)
    _value_stats: dict[tuple[str, str, str, object], _LabelStats] = field(
        default_factory=dict
    )
    _source_costs: dict[str, _SourceCost] = field(default_factory=dict)
    _qerrors: dict[tuple[str, str, str], _QErrorWindow] = field(
        default_factory=dict
    )
    # concurrent queries feed observations from engine threads; EMA
    # updates are read-modify-write, so guard every mutation
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    # -- feedback -----------------------------------------------------------

    def record(self, source: str, pattern: Pattern, count: int) -> None:
        """Feed back that ``pattern`` at ``source`` returned ``count`` rows.

        The observation is normalised by the pattern's selectivity so
        that what is stored approximates the label's *base* cardinality.
        """
        label = _label_of(pattern)
        if label is None:
            return
        # mirror estimate(): the top label names the bucket, it is not a
        # filter — normalising by it too made fed-back estimates a
        # systematic 1/selectivity too high (q-error stuck at 10x
        # instead of converging)
        conditions = count_constant_conditions(pattern) - 1
        discount = self.selectivity**conditions
        base_estimate = count / discount if discount > 0 else count
        with self._lock:
            entry = self._stats.setdefault((source, label), _LabelStats())
            entry.observe(int(base_estimate))

    def record_label(self, source: str, label: str, count: int) -> None:
        """Direct observation of a label's cardinality (sampling)."""
        with self._lock:
            entry = self._stats.setdefault((source, label), _LabelStats())
            entry.observe(count)

    def observe_source(
        self,
        source: str,
        latency: float | None = None,
        breaker_state: str | None = None,
    ) -> None:
        """Feed back a source's observed access cost.

        ``latency`` is a per-call latency sample (typically the health
        window's p50); ``breaker_state`` is the circuit breaker's
        current state.  Both feed :meth:`cost_weight`.
        """
        if latency is None and breaker_state is None:
            return
        with self._lock:
            entry = self._source_costs.setdefault(source, _SourceCost())
            entry.observe(latency, breaker_state)

    def cost_weight(self, source: str) -> float:
        """Observed access-cost multiplier for one source.

        1.0 for a never-observed source (so cold planning is unchanged);
        grows with the latency EMA relative to :data:`REFERENCE_LATENCY`
        and is multiplied by a breaker-state penalty (half-open 10x,
        open 100x) so the optimizer deprioritizes struggling sources.
        """
        entry = self._source_costs.get(source)
        if entry is None:
            return 1.0
        return entry.weight()

    def record_qerror(
        self, source: str, label: str, kind: str, value: float
    ) -> None:
        """Feed one q-error observation for a (source, label, kind) key.

        ``kind`` distinguishes ``scan`` estimates (leaf cardinality)
        from ``join`` decisions (bind-join output).
        """
        with self._lock:
            window = self._qerrors.setdefault(
                (source, label, kind), _QErrorWindow()
            )
            window.observe(value)

    def qerror_summary(self) -> dict[str, dict[str, float | int]]:
        """Recent q-error windows as ``source/label/kind`` -> summary."""
        with self._lock:
            return {
                f"{source}/{label}/{kind}": window.summary()
                for (source, label, kind), window in sorted(
                    self._qerrors.items()
                )
                if window.values
            }

    def sample_source(self, source: "object", limit: int | None = None) -> int:
        """Probe a source's export and record per-label cardinalities
        *and* per-(child label, value) selectivities.

        This is the "sampling" half of Section 3.5's statistics
        database.  ``source`` is anything with ``name`` and ``export()``
        (a :class:`~repro.wrappers.base.Source`); at most ``limit``
        top-level objects are examined (None = all).  Counts observed
        from a truncated sample are scaled up proportionally.  Returns
        the number of objects examined.
        """
        from collections import Counter

        name = source.name  # type: ignore[attr-defined]
        export = source.export()  # type: ignore[attr-defined]
        total = len(export)
        if limit is not None and total > limit:
            examined = export[:limit]
            scale = total / limit
        else:
            examined = export
            scale = 1.0
        counts = Counter(obj.label for obj in examined)
        value_counts: Counter = Counter()
        for obj in examined:
            for child in obj.children:
                if child.is_atomic:
                    try:
                        hash(child.value)
                    except TypeError:
                        continue
                    value_counts[
                        (obj.label, child.label, child.value)
                    ] += 1
        for label, count in counts.items():
            self.record_label(name, label, int(count * scale))
        with self._lock:
            for (label, child, value), count in value_counts.items():
                entry = self._value_stats.setdefault(
                    (name, label, child, value), _LabelStats()
                )
                entry.observe(int(count * scale))
        return len(examined)

    def value_selectivity(
        self, source: str, label: str | None, child: str, value: object
    ) -> float:
        """Fraction of ``label`` objects whose ``child`` equals ``value``.

        Falls back to the default selectivity when nothing was sampled.
        """
        if label is None:
            return self.selectivity
        try:
            hash(value)
        except TypeError:
            return self.selectivity
        entry = self._value_stats.get((source, label, child, value))
        if entry is None or entry.observations == 0:
            return self.selectivity
        base = self.base_cardinality(source, label)
        if base <= 0:
            return self.selectivity
        return min(1.0, entry.average / base)

    # -- estimation -----------------------------------------------------------

    def base_cardinality(self, source: str, label: str | None) -> float:
        if label is None:
            return self.default_cardinality
        entry = self._stats.get((source, label))
        if entry is None or entry.observations == 0:
            return self.default_cardinality
        return entry.average

    def estimate(self, source: str, pattern: Pattern) -> float:
        """Estimated result size of shipping ``pattern`` to ``source``.

        Value-level selectivities from sampling are used per constant
        child condition when available; other constant conditions fall
        back to the default selectivity.
        """
        label = _label_of(pattern)
        base = self.base_cardinality(source, label)
        estimate = base
        accounted = 0
        for child, value in constant_child_conditions(pattern):
            estimate *= self.value_selectivity(source, label, child, value)
            accounted += 1
        # remaining conditions (oid constants, top-level value constants)
        remaining = count_constant_conditions(pattern) - accounted
        if label is not None:
            remaining -= 1  # the top label itself is not a filter here
        if remaining > 0:
            estimate *= self.selectivity**remaining
        return estimate

    def sharded_estimate(
        self, source: str, shard_names: "Sequence[str]", pattern: Pattern
    ) -> float:
        """Estimated result size across the surviving shards.

        Shard-qualified source names (``big#3``) accrue their own
        per-label cardinalities through the engine's normal feedback,
        so each observed shard contributes its own estimate; a shard
        never observed contributes an even split of the *logical*
        source's estimate instead of a full default each (eight unseen
        shards are one source, not eight).
        """
        if not shard_names:
            return 0.0
        label = _label_of(pattern)
        whole = self.estimate(source, pattern)
        total = 0.0
        for name in shard_names:
            if label is not None and self.has_observations(name, label):
                total += self.estimate(name, pattern)
            else:
                total += whole / len(shard_names)
        return total

    def has_observations(self, source: str, label: str) -> bool:
        entry = self._stats.get((source, label))
        return entry is not None and entry.observations > 0

    def clear(self) -> None:
        with self._lock:
            self._stats.clear()
            self._value_stats.clear()
            self._source_costs.clear()
            self._qerrors.clear()

    # -- persistence ----------------------------------------------------------

    def snapshot_dict(self) -> dict:
        """JSON-serialisable snapshot of the statistics database.

        Captures label cardinalities, sampled value selectivities (for
        JSON-representable values only), and per-source cost
        observations; q-error windows are diagnostics, not estimates,
        and are not persisted.
        """
        with self._lock:
            labels = [
                {
                    "source": source,
                    "label": label,
                    "average": entry.average,
                    "observations": entry.observations,
                }
                for (source, label), entry in sorted(self._stats.items())
            ]
            values = [
                {
                    "source": source,
                    "label": label,
                    "child": child,
                    "value": value,
                    "average": entry.average,
                    "observations": entry.observations,
                }
                for (source, label, child, value), entry in sorted(
                    self._value_stats.items(), key=lambda kv: repr(kv[0])
                )
                if isinstance(value, (str, int, float, bool)) or value is None
            ]
            costs = [
                {
                    "source": source,
                    "latency": entry.latency,
                    "breaker_state": entry.breaker_state,
                    "observations": entry.observations,
                }
                for source, entry in sorted(self._source_costs.items())
            ]
        return {
            "version": 1,
            "default_cardinality": self.default_cardinality,
            "selectivity": self.selectivity,
            "labels": labels,
            "values": values,
            "source_costs": costs,
        }

    def restore_dict(self, snapshot: Mapping) -> None:
        """Merge a :meth:`snapshot_dict` payload back in (warm start).

        Restored entries *replace* same-key entries; keys absent from
        the snapshot are left untouched, so a restore can layer warm
        estimates over live ones.
        """
        version = snapshot.get("version")
        if version != 1:
            raise ValueError(f"unsupported statistics snapshot v{version!r}")
        with self._lock:
            for row in snapshot.get("labels", ()):
                self._stats[(str(row["source"]), str(row["label"]))] = (
                    _LabelStats(
                        average=float(row["average"]),
                        observations=int(row["observations"]),
                    )
                )
            for row in snapshot.get("values", ()):
                key = (
                    str(row["source"]),
                    str(row["label"]),
                    str(row["child"]),
                    row["value"],
                )
                self._value_stats[key] = _LabelStats(
                    average=float(row["average"]),
                    observations=int(row["observations"]),
                )
            for row in snapshot.get("source_costs", ()):
                self._source_costs[str(row["source"])] = _SourceCost(
                    latency=float(row["latency"]),
                    breaker_state=str(row["breaker_state"]),
                    observations=int(row["observations"]),
                )


def constant_child_conditions(
    pattern: Pattern,
) -> list[tuple[str, object]]:
    """(child label, constant value) filters of a pattern's direct items
    (including rest conditions)."""
    found: list[tuple[str, object]] = []
    value = pattern.value
    if isinstance(value, SetPattern):
        items = list(value.items)
        conditions = (
            list(value.rest.conditions) if value.rest is not None else []
        )
        for item in items:
            if isinstance(item, PatternItem) and not item.descendant:
                p = item.pattern
                if isinstance(p.label, Const) and isinstance(p.value, Const):
                    found.append((str(p.label.value), p.value.value))
        for condition in conditions:
            if isinstance(condition.label, Const) and isinstance(
                condition.value, Const
            ):
                found.append(
                    (str(condition.label.value), condition.value.value)
                )
    return found


def _label_of(pattern: Pattern) -> str | None:
    if isinstance(pattern.label, Const):
        return str(pattern.label.value)
    return None


def count_constant_conditions(pattern: Pattern) -> int:
    """Number of constant filters a pattern carries (its "boundness").

    This is the quantity behind the paper's join-order heuristic: "the
    outer patterns of the join order are the ones that have the greatest
    number of conditions".  A *condition* is a constant that narrows the
    result: the top-level label (it selects the collection/relation), a
    constant oid, and every constant **value** at any depth.  Constant
    sub-object labels with variable values (``<name N>``) are structural
    requirements, not filters, and do not count.
    """

    def value_constants(p: Pattern) -> int:
        count = 1 if isinstance(p.oid, Const) else 0
        value = p.value
        if isinstance(value, Const):
            return count + 1
        if isinstance(value, SetPattern):
            for item in value.items:
                if isinstance(item, PatternItem):
                    count += value_constants(item.pattern)
                elif isinstance(item, VarItem):
                    continue
            if value.rest is not None:
                for condition in value.rest.conditions:
                    count += value_constants(condition)
        return count

    count = value_constants(pattern)
    if isinstance(pattern.label, Const):
        count += 1
    return count

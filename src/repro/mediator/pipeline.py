"""Whole-plan *operator* fusion: straight-line datamerge segments
collapsed into single pipeline nodes.

BENCH_compile showed that compiling individual patterns leaves
end-to-end mediation at ~parity: every arc of the datamerge graph
still materializes a full governed :class:`BindingTable`, and the
engine pays per-node dispatch, span, and admission overhead between
every pair of operators.  This module attacks that by fusing maximal
straight-line chains of row-at-a-time operators —

    extractor -> filter -> external-predicate -> parameterized-query
    probe -> constructor

— into one :class:`FusedPipelineNode` whose ``execute`` drives raw row
tuples from the source answer to the chain's output without building
the intermediate tables.  The fusibility policy is explicit, in the
style of ngraph's greedy dataflow fusion (SNIPPETS.md Snippet 1):

* only the five operator types above are fusible;
* **fan-out is a barrier** — a producer with more than one consumer
  ends its chain (each consumer sees the one materialized output);
* **joins, dedup, and union are barriers** — they need whole
  materialized inputs (and, for joins, the columnar key arrays of
  :mod:`repro.mediator.tables`);
* **dispatcher stage boundaries are barriers** — leaf ``QueryNode``\\ s
  are fanned out across worker threads by the staged executor, so a
  chain never swallows one.

Equivalence contract (the PR-4 standard): a fused plan's output is
bit-for-bit equal to the unfused plan's — same rows in the same order,
same oid-generator call sequence, same warnings, and the same budget
truncation points.  The fused node achieves this by executing its
constituents stage-at-a-time (not row-at-a-time across stages): each
constituent stage admits its intermediate rows through
``governor.row_admitter`` against a lightweight row sink, in exactly
the order the unfused node would have admitted them into its table,
and calls ``governor.enter_node``/``slicer.enter_stage`` per
constituent so budget violations name the same node and deadline
slicing sees the same stage count.  The hot loops themselves are
shared with the unfused nodes (``run_row_extractor``,
``build_comparison_keep``, ``ExternalPredNode.plan_call``,
``ParameterizedQueryNode.run_batch``, ``key_array``), so there is one
implementation of each operator's semantics, not two.

Naming note: this is **operator** fusion, a physical-plan
optimization.  It is unrelated to :mod:`repro.mediator.fusion`, which
implements the paper's semantic-oid **object** fusion (merging result
objects that share a semantic oid).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Sequence

from repro.mediator.plan import (
    ConstructorNode,
    ExternalPredNode,
    ExtractorNode,
    FilterNode,
    OBJECT_COLUMN,
    ParameterizedQueryNode,
    PhysicalPlan,
    PlanNode,
    RESULT_COLUMN,
    build_comparison_keep,
)
from repro.mediator.tables import BindingTable, TableError, key_array
from repro.msl.bindings import Bindings, values_equal
from repro.msl.compile import compile_head_item, run_row_extractor
from repro.msl.matcher import match_pattern
from repro.msl.substitute import instantiate_head_item
from repro.obs.span import status_of_exception
from repro.oem.compare import eliminate_duplicates
from repro.oem.model import OEMObject

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mediator.engine import ExecutionContext

__all__ = [
    "FUSIBLE_TYPES",
    "FusedPipelineNode",
    "FusionDecision",
    "fuse_plan",
]

#: The straight-line operator types a chain may contain.  Everything
#: else — joins, dedup, union, and source query leaves — is a barrier.
FUSIBLE_TYPES = (
    ExtractorNode,
    FilterNode,
    ExternalPredNode,
    ParameterizedQueryNode,
    ConstructorNode,
)


@dataclass(frozen=True)
class FusionDecision:
    """One per-chain decision of the fusion pass, for ``explain()``."""

    fused: bool
    nodes: tuple[str, ...]
    reason: str

    def render(self) -> str:
        mark = "+" if self.fused else "-"
        return f"{mark} {self.reason}: {' => '.join(self.nodes)}"


class _RowSink:
    """A bare governed-admission target: just the ``rows`` the
    governor's ``row_admitter`` closes over, no table around them."""

    __slots__ = ("rows",)

    def __init__(self) -> None:
        self.rows: list[tuple[object, ...]] = []


def _sink(governor):
    """``(rows, add)`` for one intermediate stage's output.

    With a governor the rows are admitted through ``row_admitter`` —
    charged against the per-table and run-total row budgets exactly
    like the unfused node's output table would have been.
    """
    if governor is None:
        rows: list[tuple[object, ...]] = []
        return rows, rows.append
    shim = _RowSink()
    return shim.rows, governor.row_admitter(shim)


class FusedPipelineNode(PlanNode):
    """A maximal fusible chain executed as one plan node.

    ``fusion_width`` exposes the constituent count so
    :meth:`PhysicalPlan.stage_starts` numbers the fused plan's stages
    identically to the unfused plan's — deadline slicing and stage
    spans cannot tell the difference.
    """

    def __init__(self, nodes: Sequence[PlanNode]) -> None:
        super().__init__(nodes[0].inputs)
        self.nodes: tuple[PlanNode, ...] = tuple(nodes)
        # compiled head builders for the chain's constructor stage,
        # keyed by (constituent id, projected column layout)
        self._head_cache: dict[tuple, tuple | None] = {}

    @property
    def fusion_width(self) -> int:  # type: ignore[override]
        return len(self.nodes)

    def describe(self) -> str:
        inner = " => ".join(node.describe() for node in self.nodes)
        return f"pipeline [{inner}]"

    # -- execution ---------------------------------------------------------

    def execute(
        self, inputs: list[BindingTable], context: "ExecutionContext"
    ) -> BindingTable:
        (table,) = inputs
        governor = context.governor
        profiler = context.profiler
        tracer = context.tracer
        slicer = context.slicer
        base = context.stage_base
        columns: list[str] = list(table.columns)
        rows: Sequence[tuple[object, ...]] = table.rows
        last = len(self.nodes) - 1
        result: BindingTable | None = None
        for offset, node in enumerate(self.nodes):
            # same per-operator bookkeeping as the engine's node loop:
            # budget violations name the constituent, the deadline
            # slicer advances one stage per constituent
            if governor is not None:
                governor.enter_node(node)
            if slicer is not None and offset:
                slicer.enter_stage(base + offset)

            def make_out(out_columns, _last=offset == last):
                if _last:
                    out = BindingTable(out_columns, governor=governor)
                    return out.rows, out._appender(), out
                out_rows, add = _sink(governor)
                return out_rows, add, None

            span = (
                tracer.start_span("pipeline-stage", type(node).__name__)
                if tracer is not None
                else None
            )
            rows_in = len(rows)
            latency_before = context.source_latency
            started = perf_counter()
            try:
                if span is not None:
                    with tracer.use(span):
                        columns, rows, out_table = self._run_constituent(
                            node, columns, rows, context, make_out
                        )
                else:
                    columns, rows, out_table = self._run_constituent(
                        node, columns, rows, context, make_out
                    )
            except BaseException as exc:
                if span is not None:
                    tracer.finish_span(span, status=status_of_exception(exc))
                raise
            elapsed = perf_counter() - started
            if profiler is not None:
                profiler.record_node(
                    type(node).__name__,
                    len(rows),
                    elapsed,
                    context.source_latency - latency_before,
                )
            # per-constituent attribution: fused chains report the same
            # rows in/out and q-errors a node-at-a-time run would
            context.observe_node(
                node,
                rows_in,
                len(rows),
                elapsed,
                context.source_latency - latency_before,
            )
            if span is not None:
                span.set_attribute("rows_out", len(rows))
                tracer.finish_span(span)
            if out_table is not None:
                result = out_table
        assert result is not None  # the last stage always built it
        return result

    def _run_constituent(self, node, columns, rows, context, make_out):
        if isinstance(node, ExtractorNode):
            return self._stage_extractor(node, columns, rows, context, make_out)
        if isinstance(node, FilterNode):
            return self._stage_filter(node, columns, rows, context, make_out)
        if isinstance(node, ExternalPredNode):
            return self._stage_external(node, columns, rows, context, make_out)
        if isinstance(node, ParameterizedQueryNode):
            return self._stage_param_query(
                node, columns, rows, context, make_out
            )
        if isinstance(node, ConstructorNode):
            return self._stage_constructor(
                node, columns, rows, context, make_out
            )
        raise TableError(
            f"node {node.describe()!r} is not fusible"
        )  # pragma: no cover - fuse_plan never builds such a chain

    # -- constituent stages ------------------------------------------------
    #
    # Each mirrors its unfused node's ``execute`` over (columns, rows)
    # instead of a BindingTable: same loops, same admission order, same
    # spans and profiler records, no intermediate table.

    def _stage_extractor(self, node, columns, rows, context, make_out):
        positions = {name: i for i, name in enumerate(columns)}
        position = positions[node.column]
        carried = [c for c in columns if c != node.column]
        carried_positions = [positions[c] for c in carried]
        new_columns = [v for v in node.variables if v not in carried]
        out_columns = carried + new_columns
        out_rows, add, out_table = make_out(out_columns)
        profiler = context.profiler
        tracer = context.tracer
        span = (
            tracer.start_span("pattern-match", node.pattern_text)
            if tracer is not None
            else None
        )
        started = perf_counter() if profiler is not None else 0.0
        matches = 0
        compiler = context.compiler
        if compiler is not None:
            compiled = compiler.pattern(node.pattern)
            index = compiled.layout.index
            carried_checks = tuple(
                (positions[c], index[c]) for c in carried if c in index
            )
            new_registers = tuple(index.get(v) for v in new_columns)
            matches = run_row_extractor(
                compiled,
                rows,
                position,
                carried_positions,
                carried_checks,
                new_registers,
                add,
                node.column,
                TableError,
            )
        else:
            for row in rows:
                obj = row[position]
                if not isinstance(obj, OEMObject):
                    raise TableError(
                        f"extractor column {node.column!r} holds non-object"
                        f" {obj!r}"
                    )
                for env in match_pattern(node.pattern, obj):
                    if not all(
                        values_equal(env.get(c), row[positions[c]])
                        for c in carried
                        if c in env
                    ):
                        continue
                    matches += 1
                    add(
                        tuple(row[p] for p in carried_positions)
                        + tuple(env.get(v) for v in new_columns)
                    )
        if profiler is not None:
            profiler.record_pattern(
                node.pattern_text,
                len(rows),
                matches,
                perf_counter() - started,
            )
        if span is not None:
            span.set_attribute("objects", len(rows))
            span.set_attribute("matches", matches)
            span.set_attribute("compiled", compiler is not None)
            tracer.finish_span(span)
        return out_columns, out_rows, out_table

    def _stage_filter(self, node, columns, rows, context, make_out):
        positions = {name: i for i, name in enumerate(columns)}
        keep = build_comparison_keep(
            node.comparison, positions.__contains__, positions.__getitem__
        )
        out_rows, add, out_table = make_out(columns)
        for row in rows:
            if keep(row):
                add(row)
        return columns, out_rows, out_table

    def _stage_external(self, node, columns, rows, context, make_out):
        positions = {name: i for i, name in enumerate(columns)}
        out_vars, specs = node.plan_call(
            positions.__contains__, positions.__getitem__
        )
        expand = node.expander(specs, out_vars, context)
        out_columns = columns + out_vars
        out_rows, add, out_table = make_out(out_columns)
        tracer = context.tracer
        if tracer is not None:
            with tracer.span("external-predicate", node.call.name) as span:
                for row in rows:
                    for extension in expand(row):
                        add(row + tuple(extension))
                span.set_attribute("rows_in", len(rows))
                span.set_attribute("rows_out", len(out_rows))
        else:
            for row in rows:
                for extension in expand(row):
                    add(row + tuple(extension))
        return out_columns, out_rows, out_table

    def _stage_param_query(self, node, columns, rows, context, make_out):
        positions = {name: i for i, name in enumerate(columns)}
        param_positions = [
            (name, positions[column])
            for name, column in node.param_columns.items()
        ]
        out_columns = columns + [OBJECT_COLUMN]
        out_rows, add, out_table = make_out(out_columns)
        # run_batch handles every execution mode itself (semi-join
        # shipping, parallel fan-out, sequential sends), so the fused
        # stage and the unfused node stay behaviourally identical
        node.run_batch(rows, param_positions, context, context.dispatcher, add)
        return out_columns, out_rows, out_table

    def _stage_constructor(self, node, columns, rows, context, make_out):
        positions = {name: i for i, name in enumerate(columns)}
        available = [v for v in node._needed if v in positions]
        avail_positions = [positions[v] for v in available]
        governor = context.governor
        # projection: admitted row by row like ``table.project``'s
        # output table, so per-table budgets see the same table sizes
        proj_rows, proj_add = _sink(governor)
        for row in rows:
            proj_add(tuple(row[p] for p in avail_positions))
        if node.deduplicate:
            kept_rows, kept_add = _sink(governor)
            width = len(available)
            if width == 1:
                keys = key_array([row[0] for row in proj_rows])[0]
                seen: set[object] = set()
                for i, row in enumerate(proj_rows):
                    key = keys[i]
                    if key not in seen:
                        seen.add(key)
                        kept_add(row)
            elif width == 0:
                # distinct over zero columns keeps the first row only
                for row in proj_rows:
                    kept_add(row)
                    break
            else:
                key_cols = [
                    key_array([row[p] for row in proj_rows])[0]
                    for p in range(width)
                ]
                seen = set()
                for i, row in enumerate(proj_rows):
                    key = tuple(col[i] for col in key_cols)
                    if key not in seen:
                        seen.add(key)
                        kept_add(row)
            final_rows = kept_rows
        else:
            final_rows = proj_rows
        objects: list[OEMObject] = []
        oidgen = context.oidgen
        builders = (
            self._head_builders(node, tuple(available))
            if context.compiler is not None
            else None
        )
        if builders is not None:
            # compiled head instantiation: slot-layout closures read
            # the projected rows positionally (see compile_head_item)
            for row in final_rows:
                if (
                    governor is not None
                    and not governor.charge_result_object()
                ):
                    break  # truncate mode: stop constructing
                for build in builders:
                    objects.extend(build(row, oidgen))
        else:
            for row in final_rows:
                if (
                    governor is not None
                    and not governor.charge_result_object()
                ):
                    break  # truncate mode: stop constructing
                env = Bindings(dict(zip(available, row)))
                for item in node.head:
                    objects.extend(
                        instantiate_head_item(item, env, oidgen)
                    )
        if node.deduplicate:
            objects = eliminate_duplicates(objects)
        out_columns = [RESULT_COLUMN]
        out_rows, add, out_table = make_out(out_columns)
        for obj in objects:
            add((obj,))
        return out_columns, out_rows, out_table

    def _head_builders(self, node, available):
        """Compiled per-item head builders for a constructor stage.

        ``None`` when any head item falls outside the compiled subset —
        the stage then runs the interpretive reference builder.
        """
        key = (id(node), available)
        cached = self._head_cache.get(key, False)
        if cached is not False:
            return cached
        builders: list | None = []
        for item in node.head:
            build = compile_head_item(item, available)
            if build is None:
                builders = None
                break
            builders.append(build)
        result = tuple(builders) if builders is not None else None
        self._head_cache[key] = result
        return result


# -- the fusion pass -------------------------------------------------------


def _keep_reason(node: PlanNode, consumers: dict[int, int]) -> str:
    child = node.inputs[0]
    if not isinstance(child, FUSIBLE_TYPES):
        return (
            f"kept single operator: upstream {type(child).__name__}"
            " is a fusion barrier"
        )
    fan_out = consumers.get(id(child), 0)
    if fan_out > 1:
        return (
            "kept single operator: upstream operator fans out to"
            f" {fan_out} consumers"
        )
    return "kept single operator"  # pragma: no cover - defensive


def fuse_plan(
    plan: PhysicalPlan,
) -> tuple[PhysicalPlan, list[FusionDecision]]:
    """Greedily fuse maximal straight-line chains of ``plan``.

    Walks the plan bottom-up; a fusible node extends the chain ending
    at its single input when that input is the chain's tail and has no
    other consumers, otherwise it starts a new chain.  Chains of two
    or more operators become :class:`FusedPipelineNode`\\ s; the graph
    is rewired around them and a new :class:`PhysicalPlan` is
    returned together with the per-chain :class:`FusionDecision` list
    (surfaced by ``Mediator.explain``).  Plans with nothing to fuse
    are returned unchanged.
    """
    nodes = plan.nodes()
    consumers: dict[int, int] = {}
    for node in nodes:
        for child in node.inputs:
            consumers[id(child)] = consumers.get(id(child), 0) + 1
    chains: list[list[PlanNode]] = []
    chain_of: dict[int, list[PlanNode]] = {}
    for node in nodes:
        if not isinstance(node, FUSIBLE_TYPES):
            continue
        child = node.inputs[0]
        chain = chain_of.get(id(child))
        if (
            chain is not None
            and chain[-1] is child
            and consumers.get(id(child), 0) == 1
        ):
            chain.append(node)
        else:
            chain = [node]
            chains.append(chain)
        chain_of[id(node)] = chain
    replacement: dict[int, PlanNode] = {}
    decisions: list[FusionDecision] = []
    fused_nodes: list[FusedPipelineNode] = []
    for chain in chains:
        if len(chain) >= 2:
            fused = FusedPipelineNode(chain)
            fused_nodes.append(fused)
            for member in chain:
                replacement[id(member)] = fused
            decisions.append(
                FusionDecision(
                    fused=True,
                    nodes=tuple(member.describe() for member in chain),
                    reason=f"fused {len(chain)}-operator chain",
                )
            )
        else:
            decisions.append(
                FusionDecision(
                    fused=False,
                    nodes=(chain[0].describe(),),
                    reason=_keep_reason(chain[0], consumers),
                )
            )
    if not fused_nodes:
        return plan, decisions
    interior = {
        id(member)
        for chain in chains
        if len(chain) >= 2
        for member in chain
    }
    survivors = [node for node in nodes if id(node) not in interior]
    for node in survivors + list(fused_nodes):
        node.inputs = tuple(
            replacement.get(id(child), child) for child in node.inputs
        )
    root = replacement.get(id(plan.root), plan.root)
    return PhysicalPlan(root), decisions

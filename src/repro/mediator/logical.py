"""Logical datamerge programs.

The output of the View Expander & Algebraic Optimizer: "a set of MSL
rules specifying the result" (Section 3.2), where every pattern condition
refers to an actual *source* rather than to the mediator's virtual
objects.  Each rule also remembers its provenance — which specification
rules and which unifier produced it — so plans can be explained, which
is how the benchmarks print the paper's R2/Q2 and Q3/Q4 artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mediator.unify import Unifier
from repro.msl.ast import Rule
from repro.msl.unparse import format_rule

__all__ = ["LogicalRule", "LogicalDatamergeProgram"]


@dataclass(frozen=True)
class LogicalRule:
    """One rule of a logical datamerge program, with provenance."""

    rule: Rule
    unifier: Unifier | None = None
    spec_rule_indexes: tuple[int, ...] = ()

    def __str__(self) -> str:
        return str(self.rule)


@dataclass(frozen=True)
class LogicalDatamergeProgram:
    """The full logical program for one query: a union of rules.

    "If more than one head matches, then more than one rule will be
    considered; resulting objects will be added to the result."
    """

    rules: tuple[LogicalRule, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def is_empty(self) -> bool:
        """An empty program means the query matches no rule head: the
        answer is trivially empty (no source contact needed)."""
        return not self.rules

    def __str__(self) -> str:
        return "\n\n".join(format_rule(lr.rule) for lr in self.rules)

"""The cost-based optimizer: logical datamerge rules -> physical graphs.

Second stage of the MSI pipeline (Figure 2.5): "develops a plan for
obtaining and combining the objects ... The plan specifies what queries
will be sent to the sources, in what order they will be sent, and how
the results of the queries will be combined."

Three planning strategies are implemented, matching the knobs the paper
discusses in Section 3.5:

* ``"heuristic"`` (default) — the paper's ad-hoc heuristic: "the outer
  patterns of the join order are the ones that have the greatest number
  of conditions".  Subsequent patterns are fetched with *bind joins*
  (parameterized queries), exactly the plan of Section 3.1.
* ``"statistics"`` — join order by estimated cardinality from the
  optimizer's own statistics database (built "on results of previous
  queries and on sampling").
* ``"exhaustive"`` — enumerate all pattern orders (practical up to ~7
  patterns) and pick the minimum under a simple cost model: per step,
  one query per outstanding binding plus the estimated objects shipped,
  with a selectivity discount per bind-join variable.
* ``"fetch_all"`` — the ablation baseline: every pattern is fetched
  independently with only its own constants pushed down, and results
  are combined with mediator-side hash joins.

Source capabilities are honoured throughout: each pattern destined for a
source is first :meth:`split <repro.wrappers.capability.Capability.split>`
against that source's capability, and the residual conditions become
mediator-side :class:`FilterNode`s (the compensation of [PGH]).

The wire protocol is the paper's: a shipped query projects the needed
bindings into a synthetic ``<bind_for_... {...}>`` object (Qw/Qcs of
Section 3.1) and an extractor node recovers the bindings at the
mediator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mediator.logical import LogicalDatamergeProgram, LogicalRule
from repro.mediator.plan import (
    ConstructorNode,
    ExternalPredNode,
    ExtractorNode,
    FilterNode,
    JoinNode,
    ParameterizedQueryNode,
    PhysicalPlan,
    PlanNode,
    QueryNode,
    ShardedQueryNode,
    UnionNode,
)
from repro.mediator.statistics import (
    SourceStatistics,
    _label_of,
    count_constant_conditions,
)
from repro.msl.ast import (
    Comparison,
    Const,
    ExternalCall,
    Param,
    Pattern,
    PatternCondition,
    PatternItem,
    RestSpec,
    Rule,
    SetPattern,
    Term,
    Var,
    VarItem,
)
from repro.msl.errors import MSLSemanticError
from repro.msl.substitute import pattern_variables, term_variables
from repro.wrappers.registry import SourceRegistry
from repro.wrappers.sharding import ShardedSource

__all__ = ["CostBasedOptimizer", "PlanningError", "STRATEGIES"]

STRATEGIES = ("heuristic", "statistics", "exhaustive", "fetch_all")


class PlanningError(MSLSemanticError):
    """No executable plan exists for a logical rule."""


@dataclass
class _PendingPattern:
    condition: PatternCondition
    score: float


class CostBasedOptimizer:
    """Builds physical datamerge graphs for logical programs."""

    def __init__(
        self,
        sources: SourceRegistry,
        statistics: SourceStatistics | None = None,
        strategy: str = "heuristic",
        deduplicate: bool = True,
        prune_with_facts: bool = True,
    ) -> None:
        if strategy not in STRATEGIES:
            raise PlanningError(
                f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
            )
        self.sources = sources
        self.statistics = statistics or SourceStatistics()
        self.strategy = strategy
        self.deduplicate = deduplicate
        self.prune_with_facts = prune_with_facts
        self.rules_pruned = 0

    # -- public API ------------------------------------------------------

    def plan_program(
        self, program: LogicalDatamergeProgram
    ) -> PhysicalPlan:
        """One plan for a whole logical program (union of rule plans).

        Rules whose source patterns are *unsatisfiable* given the
        sources' exported schema facts (footnote 1) are pruned before
        planning — no query is ever shipped for them.
        """
        rules = [
            rule for rule in program if self._rule_satisfiable(rule)
        ]
        self.rules_pruned = len(program) - len(rules)
        if not rules:
            return PhysicalPlan(UnionNode((), self.deduplicate))
        roots = [self.plan_rule(rule).root for rule in rules]
        if len(roots) == 1:
            return PhysicalPlan(roots[0])
        return PhysicalPlan(UnionNode(roots, self.deduplicate))

    def _rule_satisfiable(self, logical: LogicalRule) -> bool:
        """Could every source pattern of the rule possibly match?"""
        if not self.prune_with_facts:
            return True
        from repro.wrappers.facts import pattern_satisfiable

        for condition in logical.rule.tail:
            if not isinstance(condition, PatternCondition):
                continue
            if condition.source is None or condition.source not in self.sources:
                continue
            facts = self.sources.resolve(condition.source).schema_facts
            if not pattern_satisfiable(condition.pattern, facts):
                return False
        return True

    def plan_rule(self, logical: LogicalRule | Rule) -> PhysicalPlan:
        """A physical graph for one logical datamerge rule."""
        rule = logical.rule if isinstance(logical, LogicalRule) else logical
        patterns: list[PatternCondition] = []
        externals: list[ExternalCall] = []
        comparisons: list[Comparison] = []
        for condition in rule.tail:
            if isinstance(condition, PatternCondition):
                if condition.source is None:
                    raise PlanningError(
                        f"logical rule pattern lacks a source: {condition}"
                    )
                patterns.append(condition)
            elif isinstance(condition, ExternalCall):
                externals.append(condition)
            else:
                comparisons.append(condition)
        if not patterns:
            raise PlanningError(f"logical rule has no source patterns: {rule}")

        ordered = self._order_patterns(patterns)
        if self.strategy == "fetch_all":
            node = self._build_fetch_all(ordered, externals, comparisons)
        else:
            node = self._build_bind_join(ordered, externals, comparisons)
        constructor = ConstructorNode(node, rule.head, self.deduplicate)
        return PhysicalPlan(constructor)

    # -- join ordering -----------------------------------------------------

    def _order_patterns(
        self,
        patterns: list[PatternCondition],
        strategy: str | None = None,
    ) -> list[PatternCondition]:
        # strategy is threaded as a parameter (instead of temporarily
        # mutating self.strategy) so concurrent queries sharing this
        # optimizer never observe each other's fallback
        strategy = self.strategy if strategy is None else strategy
        if strategy == "exhaustive":
            return self._best_order_by_cost(patterns)
        if strategy == "statistics":
            # observed latency x estimated cardinality: the feedback
            # loop of §3.5 — sources measured slow (or with an open
            # breaker) are deprioritized even at equal cardinality
            scored = [
                _PendingPattern(
                    p,
                    self._estimate(p)
                    * self.statistics.cost_weight(p.source or ""),
                )
                for p in patterns
            ]
            scored.sort(key=lambda pp: pp.score)  # smallest first
            return [pp.condition for pp in scored]
        # the paper's heuristic: most constant conditions first
        scored = [
            _PendingPattern(
                p, -float(count_constant_conditions(p.pattern))
            )
            for p in patterns
        ]
        scored.sort(key=lambda pp: pp.score)
        return [pp.condition for pp in scored]

    def _best_order_by_cost(
        self, patterns: list[PatternCondition]
    ) -> list[PatternCondition]:
        """Minimum-cost order over all permutations (§3.5's "select the
        optimal graph", for the plan space this optimizer emits).

        The cost model per step: one source query is sent for every
        binding produced so far (bind joins are per-tuple), and the
        objects shipped are the pattern's estimated result discounted by
        ``selectivity`` per join variable already bound.  Falls back to
        the heuristic order beyond 7 patterns (permutation blow-up).
        """
        import itertools as _it

        if len(patterns) > 7:
            return self._order_patterns(patterns, "heuristic")

        selectivity = self.statistics.selectivity
        estimates = [self._estimate(p) for p in patterns]
        weights = [
            self.statistics.cost_weight(p.source or "") for p in patterns
        ]
        variables = [
            _parameterizable_vars(p.pattern) | _rest_vars(p.pattern)
            for p in patterns
        ]

        best_order: tuple[int, ...] | None = None
        best_cost = float("inf")
        for order in _it.permutations(range(len(patterns))):
            bound: set[str] = set()
            bindings = 1.0
            cost = 0.0
            for index in order:
                shared = len(variables[index] & bound)
                produced = max(
                    estimates[index] * (selectivity**shared), 0.01
                )
                # queries sent plus objects shipped this step, scaled
                # by the source's observed-latency/breaker weight
                cost += (bindings + bindings * produced) * weights[index]
                bindings *= produced
                bound |= variables[index]
                if cost >= best_cost:
                    break
            if cost < best_cost:
                best_cost = cost
                best_order = order
        assert best_order is not None
        return [patterns[i] for i in best_order]

    def _estimate(self, condition: PatternCondition) -> float:
        """Cardinality estimate, shard-aware for sharded sources.

        A sharded source's estimate sums its *surviving* shards (after
        partition pruning on the pattern's pushed-down constants), so a
        pattern that routes to one shard correctly looks 1/N the size
        of one that must broadcast.
        """
        source_name = condition.source or ""
        if source_name in self.sources:
            resolved = self.sources.resolve(source_name)
            if isinstance(resolved, ShardedSource):
                names, _ = resolved.prune_for_pattern(condition.pattern)
                return self.statistics.sharded_estimate(
                    source_name, names, condition.pattern
                )
        return self.statistics.estimate(source_name, condition.pattern)

    @staticmethod
    def _annotate(
        node: PlanNode,
        rows: float,
        key: tuple[str, str, str] | None = None,
    ) -> PlanNode:
        """Stamp the planner's cardinality estimate onto ``node``.

        ``key`` is the ``(source, label, kind)`` statistics bucket the
        estimate came from; nodes without one (hash joins, extractors)
        still display their estimate in EXPLAIN ANALYZE and trigger
        misestimate events, but record no per-bucket q-error.
        """
        node.estimated_rows = float(rows)
        node.estimate_key = key
        return node

    def _source_leaf(
        self, source_name: str, relaxed: Pattern, query: Rule
    ) -> PlanNode:
        """The leaf node shipping ``query``: sharded sources fan the
        query across their surviving shards, everything else sends one
        plain :class:`QueryNode`."""
        resolved = self.sources.resolve(source_name)
        if isinstance(resolved, ShardedSource):
            names, pruned = resolved.prune_for_pattern(relaxed)
            return ShardedQueryNode(source_name, names, query, pruned)
        return QueryNode(source_name, query)

    def _shippable_comparisons(
        self,
        capability,
        pattern_vars: set[str],
        pending_comparisons: list[Comparison],
    ) -> list[Comparison]:
        """Comparisons this source can evaluate alongside the pattern.

        A comparison ships when the source advertises
        ``supports_comparisons``, every variable it mentions is bound by
        the pattern itself, and it is not a capability *residual* (those
        encode exactly what the source said it cannot filter; their
        fresh variables are prefixed ``_Cap``).  Shipped comparisons are
        removed from the pending list — the source does the filtering.
        """
        if not capability.supports_comparisons:
            return []
        shipped: list[Comparison] = []
        for comparison in list(pending_comparisons):
            needed = term_variables(comparison.left) | term_variables(
                comparison.right
            )
            if not needed or not needed <= pattern_vars:
                continue
            if any(name.startswith("_Cap") for name in needed):
                continue
            shipped.append(comparison)
            pending_comparisons.remove(comparison)
        return shipped

    # -- bind-join pipeline ----------------------------------------------------

    def _build_bind_join(
        self,
        patterns: list[PatternCondition],
        externals: list[ExternalCall],
        comparisons: list[Comparison],
    ) -> PlanNode:
        node: PlanNode | None = None
        bound: set[str] = set()
        pending_externals = list(externals)
        pending_comparisons = list(comparisons)
        selectivity = self.statistics.selectivity
        bindings_est = 1.0  # estimated binding rows flowing so far

        for condition in patterns:
            source_name = condition.source
            assert source_name is not None
            capability = self.sources.resolve(source_name).capability
            relaxed, residual = capability.split(condition.pattern)
            pending_comparisons.extend(residual)
            estimate = self._estimate(condition)
            label = _label_of(relaxed) or "_"
            shared = len(
                (_parameterizable_vars(relaxed) | _rest_vars(relaxed))
                & bound
            )
            produced = max(estimate * (selectivity**shared), 0.01)

            variables = sorted(pattern_variables(relaxed))
            shipped = self._shippable_comparisons(
                capability, set(variables), pending_comparisons
            )
            if node is None:
                query = _projection_query(
                    source_name, relaxed, variables, shipped
                )
                node = self._source_leaf(source_name, relaxed, query)
                self._annotate(
                    node, estimate, (source_name, label, "scan")
                )
                node = ExtractorNode(
                    node,
                    _extractor_pattern(query.head[0], relaxed),  # type: ignore[arg-type]
                    variables,
                )
                self._annotate(node, produced)
            else:
                param_vars = sorted(
                    _parameterizable_vars(relaxed) & bound
                )
                if param_vars:
                    template_pattern = _parameterize(relaxed, set(param_vars))
                    out_vars = sorted(
                        pattern_variables(template_pattern)
                    )
                    template = _projection_query(
                        source_name, template_pattern, out_vars, shipped
                    )
                    node = ParameterizedQueryNode(
                        node,
                        source_name,
                        template,
                        {name: name for name in param_vars},
                        **self._batch_spec(
                            source_name,
                            capability,
                            relaxed,
                            variables,
                            shipped,
                            param_vars,
                        ),
                    )
                    self._annotate(
                        node,
                        bindings_est * produced,
                        (source_name, label, "join"),
                    )
                    node = ExtractorNode(
                        node,
                        _extractor_pattern(
                            template.head[0], template_pattern  # type: ignore[arg-type]
                        ),
                        out_vars,
                    )
                    self._annotate(node, bindings_est * produced)
                else:
                    query = _projection_query(
                        source_name, relaxed, variables, shipped
                    )
                    right: PlanNode = self._source_leaf(
                        source_name, relaxed, query
                    )
                    self._annotate(
                        right, estimate, (source_name, label, "scan")
                    )
                    right = ExtractorNode(
                        right,
                        _extractor_pattern(query.head[0], relaxed),  # type: ignore[arg-type]
                        variables,
                    )
                    self._annotate(right, estimate)
                    node = JoinNode(node, right)
                    self._annotate(node, bindings_est * produced)
            bindings_est *= produced
            bound |= set(variables)
            node = self._drain_ready(
                node, bound, pending_externals, pending_comparisons
            )

        assert node is not None
        node = self._drain_ready(
            node, bound, pending_externals, pending_comparisons, final=True
        )
        return node

    def _batch_spec(
        self,
        source_name: str,
        capability,
        relaxed: Pattern,
        variables: list[str],
        shipped: list[Comparison],
        param_vars: list[str],
    ) -> dict:
        """Semi-join shipping kwargs for a parameterized query node.

        Empty (per-tuple probing stays) unless the source advertises
        batch filters and every parameter appears as a Const-labelled
        direct-child value of the pattern — the shape a shipped value
        filter can address.  The batch query is the same full-variable
        projection rule a leaf fetch of this pattern would ship, so the
        downstream extractor reads batch answers exactly like per-tuple
        ones.  Sharded sources additionally get their surviving shard
        names and the partition, for per-probe routing.
        """
        if not capability.supports_batch_filters:
            return {}
        param_labels = _semijoin_param_labels(relaxed, set(param_vars))
        if param_labels is None:
            return {}
        spec: dict = {
            "batch_query": _projection_query(
                source_name, relaxed, variables, shipped
            ),
            "param_labels": param_labels,
        }
        resolved = self.sources.resolve(source_name)
        if isinstance(resolved, ShardedSource):
            names, _ = resolved.prune_for_pattern(relaxed)
            spec["shard_names"] = names
            spec["partition"] = resolved.partition
        return spec

    # -- fetch-all-and-join pipeline -----------------------------------------

    def _build_fetch_all(
        self,
        patterns: list[PatternCondition],
        externals: list[ExternalCall],
        comparisons: list[Comparison],
    ) -> PlanNode:
        node: PlanNode | None = None
        bound: set[str] = set()
        pending_externals = list(externals)
        pending_comparisons = list(comparisons)
        selectivity = self.statistics.selectivity
        bindings_est = 1.0
        for condition in patterns:
            source_name = condition.source
            assert source_name is not None
            capability = self.sources.resolve(source_name).capability
            relaxed, residual = capability.split(condition.pattern)
            pending_comparisons.extend(residual)
            estimate = self._estimate(condition)
            label = _label_of(relaxed) or "_"
            shared = len(
                (_parameterizable_vars(relaxed) | _rest_vars(relaxed))
                & bound
            )
            produced = max(estimate * (selectivity**shared), 0.01)
            variables = sorted(pattern_variables(relaxed))
            shipped = self._shippable_comparisons(
                capability, set(variables), pending_comparisons
            )
            query = _projection_query(source_name, relaxed, variables, shipped)
            leaf: PlanNode = self._source_leaf(source_name, relaxed, query)
            self._annotate(leaf, estimate, (source_name, label, "scan"))
            leaf = ExtractorNode(
                leaf,
                _extractor_pattern(query.head[0], relaxed),  # type: ignore[arg-type]
                variables,
            )
            self._annotate(leaf, estimate)
            if node is None:
                node = leaf
            else:
                node = JoinNode(node, leaf)
                self._annotate(node, bindings_est * produced)
            bindings_est *= produced
            bound |= set(variables)
            node = self._drain_ready(
                node, bound, pending_externals, pending_comparisons
            )
        assert node is not None
        node = self._drain_ready(
            node, bound, pending_externals, pending_comparisons, final=True
        )
        return node

    # -- placing externals and comparisons ---------------------------------------

    def _drain_ready(
        self,
        node: PlanNode,
        bound: set[str],
        pending_externals: list[ExternalCall],
        pending_comparisons: list[Comparison],
        final: bool = False,
    ) -> PlanNode:
        """Attach every external/comparison evaluable with ``bound`` vars."""
        progress = True
        while progress:
            progress = False
            for comparison in list(pending_comparisons):
                needed = term_variables(comparison.left) | term_variables(
                    comparison.right
                )
                if needed <= bound:
                    node = FilterNode(node, comparison)
                    pending_comparisons.remove(comparison)
                    progress = True
            for call in list(pending_externals):
                if self._external_ready(call, bound):
                    node = ExternalPredNode(node, call)
                    pending_externals.remove(call)
                    bound |= {
                        arg.name
                        for arg in call.args
                        if isinstance(arg, Var) and not arg.is_anonymous
                    }
                    progress = True
        if final and (pending_externals or pending_comparisons):
            leftovers = [str(c) for c in pending_externals] + [
                str(c) for c in pending_comparisons
            ]
            raise PlanningError(
                f"conditions cannot be scheduled: {leftovers} (variables"
                f" bound by the plan: {sorted(bound)})"
            )
        return node

    def _external_ready(self, call: ExternalCall, bound: set[str]) -> bool:
        from repro.external.registry import ExternalFunctionError

        availability = [
            isinstance(arg, Const)
            or (
                isinstance(arg, Var)
                and not arg.is_anonymous
                and arg.name in bound
            )
            for arg in call.args
        ]
        registry = getattr(self, "_external_registry", None)
        if registry is None:
            # without a registry we optimistically require at least one
            # bound argument (a fully-free call explodes)
            return any(availability)
        try:
            registry.select(call.name, availability)
        except ExternalFunctionError:
            return False
        return True

    def bind_external_registry(self, registry) -> None:
        """Give the optimizer adornment knowledge for placement checks."""
        self._external_registry = registry


# ---------------------------------------------------------------------------
# query construction helpers
# ---------------------------------------------------------------------------


def _projection_query(
    source: str,
    pattern: Pattern,
    variables: list[str],
    comparisons: list[Comparison] | None = None,
) -> Rule:
    """The paper's wire form: project ``variables`` out of ``pattern``.

    Builds ``<bind_for_src {<bind_for_V1 V1> ...}> :- pattern`` —
    compare Qw and Qcs in Section 3.1.  An *object* variable ``V`` is
    projected as ``<bind_for_V {V}>`` (the matched object spliced into a
    singleton set) so that the extractor pattern ``<bind_for_V {V:<_>}>``
    recovers the object itself rather than its value.
    """
    object_vars = _object_vars(pattern)
    items: list[PatternItem] = []
    for name in variables:
        if name in object_vars:
            items.append(
                PatternItem(
                    Pattern(
                        label=Const(f"bind_for_{name}"),
                        value=SetPattern((VarItem(Var(name)),), None),
                    )
                )
            )
        else:
            items.append(
                PatternItem(
                    Pattern(label=Const(f"bind_for_{name}"), value=Var(name))
                )
            )
    head = Pattern(
        label=Const(f"bind_for_{source}"),
        value=SetPattern(tuple(items), None),
    )
    tail: tuple = (PatternCondition(pattern, None),)
    if comparisons:
        tail = tail + tuple(comparisons)
    return Rule((head,), tail)


def _extractor_pattern(query_head: Pattern, pattern: Pattern) -> Pattern:
    """The pattern an extractor uses on ``query_head``-shaped objects.

    Identical to the head except that object-variable projections
    ``<bind_for_V {V}>`` become ``<bind_for_V {V:<_ _>}>`` so matching
    binds ``V`` to the wrapped object.
    """
    object_vars = _object_vars(pattern)
    if not object_vars:
        return query_head
    value = query_head.value
    assert isinstance(value, SetPattern)
    items: list[PatternItem | VarItem] = []
    for item in value.items:
        replaced = item
        if isinstance(item, PatternItem):
            inner = item.pattern.value
            if isinstance(inner, SetPattern) and any(
                isinstance(member, VarItem)
                and member.var.name in object_vars
                for member in inner.items
            ):
                (member,) = inner.items
                assert isinstance(member, VarItem)
                wrapped = Pattern(
                    label=Var("_"),
                    value=Var("_"),
                    object_var=member.var,
                )
                replaced = PatternItem(
                    Pattern(
                        label=item.pattern.label,
                        value=SetPattern((PatternItem(wrapped),), None),
                    )
                )
        items.append(replaced)
    return Pattern(
        label=query_head.label, value=SetPattern(tuple(items), None)
    )


def _object_vars(pattern: Pattern) -> set[str]:
    """Variables bound to whole objects anywhere in ``pattern``."""
    found: set[str] = set()

    def visit(p: Pattern) -> None:
        if p.object_var is not None and not p.object_var.is_anonymous:
            found.add(p.object_var.name)
        value = p.value
        if isinstance(value, SetPattern):
            for item in value.items:
                if isinstance(item, PatternItem):
                    visit(item.pattern)
            if value.rest is not None:
                for condition in value.rest.conditions:
                    visit(condition)

    visit(pattern)
    return found


def _parameterizable_vars(pattern: Pattern) -> set[str]:
    """Variables usable as ``$`` parameters: those in label/type/oid
    slots or as direct item values — never rest or object variables
    (those carry sets/objects, which cannot be inlined as constants)."""
    result: set[str] = set()

    def visit(p: Pattern) -> None:
        for term in (p.label, p.type, p.oid):
            result.update(term_variables(term))
        value = p.value
        if isinstance(value, Var):
            if not value.is_anonymous:
                result.add(value.name)
            return
        if isinstance(value, SetPattern):
            for item in value.items:
                if isinstance(item, PatternItem):
                    visit(item.pattern)
            if value.rest is not None:
                for condition in value.rest.conditions:
                    visit(condition)

    # note: the *top-level* value variable of the whole pattern is fine
    # to parameterize only if atomic; we cannot know, so we restrict to
    # nested occurrences, which the paper's examples cover
    value = pattern.value
    for term in (pattern.label, pattern.type, pattern.oid):
        result.update(term_variables(term))
    if isinstance(value, SetPattern):
        for item in value.items:
            if isinstance(item, PatternItem):
                visit(item.pattern)
        if value.rest is not None:
            for condition in value.rest.conditions:
                visit(condition)
    # rest variables are set-valued: exclude them everywhere
    result -= _rest_vars(pattern)
    return result


def _semijoin_param_labels(
    pattern: Pattern, params: set[str]
) -> dict[str, str] | None:
    """``{param: direct-child label}`` when a value filter can address
    every parameter, else ``None``.

    A shipped ``label IN values`` filter is a *necessary* condition for
    a probe match only when the parameter is the value of a
    non-descendant direct child with a constant label (every object
    matching the instantiated probe then carries ``<label value>`` as a
    direct child).  Parameters in label/type/oid slots, nested items,
    descendant items, or rest conditions have no such direct-child
    witness, so the batch falls back to per-tuple probing.
    """
    value = pattern.value
    if not isinstance(value, SetPattern):
        return None
    labels: dict[str, str] = {}
    for item in value.items:
        if not isinstance(item, PatternItem) or item.descendant:
            continue
        p = item.pattern
        if (
            isinstance(p.label, Const)
            and isinstance(p.value, Var)
            and not p.value.is_anonymous
            and p.value.name in params
            and p.value.name not in labels
        ):
            labels[p.value.name] = str(p.label.value)
    if set(labels) != params:
        return None
    return labels


def _rest_vars(pattern: Pattern) -> set[str]:
    found: set[str] = set()

    def visit(p: Pattern) -> None:
        value = p.value
        if isinstance(value, SetPattern):
            if value.rest is not None and not value.rest.var.is_anonymous:
                found.add(value.rest.var.name)
            for item in value.items:
                if isinstance(item, PatternItem):
                    visit(item.pattern)
            if value.rest is not None:
                for condition in value.rest.conditions:
                    visit(condition)

    visit(pattern)
    return found


def _parameterize(pattern: Pattern, names: set[str]) -> Pattern:
    """Replace occurrences of ``names`` with ``$`` parameters."""

    def conv(term: Term | None) -> Term | None:
        if isinstance(term, Var) and term.name in names:
            return Param(term.name)
        return term

    value = pattern.value
    if isinstance(value, SetPattern):
        items: list[PatternItem | VarItem] = []
        for item in value.items:
            if isinstance(item, PatternItem):
                items.append(
                    PatternItem(
                        _parameterize(item.pattern, names), item.descendant
                    )
                )
            else:
                items.append(item)
        rest = value.rest
        if rest is not None and rest.conditions:
            rest = RestSpec(
                rest.var,
                tuple(_parameterize(c, names) for c in rest.conditions),
            )
        new_value: Term | SetPattern = SetPattern(tuple(items), rest)
    else:
        converted = conv(value)
        assert converted is not None
        new_value = converted
    label = conv(pattern.label)
    assert label is not None
    return Pattern(
        label=label,
        value=new_value,
        type=conv(pattern.type),
        oid=conv(pattern.oid),
        object_var=pattern.object_var,
    )

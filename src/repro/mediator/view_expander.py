"""The View Expander & Algebraic Optimizer (VE&AO).

First stage of the MSI pipeline (Figure 2.5): "reads the query and the
mediator specification and discovers which objects it must obtain from
each source", rewriting the query "so that references to the virtual
mediator objects are replaced by references to source objects".

The expansion (Section 3.2) proceeds per query condition:

1. rename the query and every candidate rule apart (footnote 7);
2. match each query condition addressed to the mediator against each
   specification rule head, producing unifiers;
3. take all combinations across conditions, merging unifiers;
4. for each merged unifier θ: the logical rule's head is θ applied to
   the query head (with definitions substituted for object variables),
   and its tail is θ applied to the conjunction of the chosen rules'
   tails plus the query's remaining conditions.

Condition pushdown (Section 3.3) happens inside unification: a query
item that cannot be located in the head's explicit items is attached to
one of the head's set variables, and applying θ to the rule tail turns
that into a ``| Rest1:{<year 3>}`` annotation on the source pattern —
one logical rule per placement choice (the τ1/τ2 multiplication).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.mediator.logical import LogicalDatamergeProgram, LogicalRule
from repro.mediator.unify import (
    Unifier,
    apply_mapping_to_pattern,
    unify_with_head,
)
from repro.msl.analysis import rename_apart
from repro.msl.ast import (
    Comparison,
    Condition,
    ExternalCall,
    HeadItem,
    Pattern,
    PatternCondition,
    PatternItem,
    Rule,
    SetPattern,
    Specification,
    Var,
    VarItem,
)
from repro.msl.errors import MSLSemanticError

__all__ = ["ViewExpander", "ExpansionError"]


class ExpansionError(MSLSemanticError):
    """The query cannot be expanded against the specification."""


@dataclass(frozen=True)
class _Option:
    """One way to satisfy one query condition: a rule + a unifier."""

    unifier: Unifier
    tail: tuple[Condition, ...]
    spec_rule_index: int


class ViewExpander:
    """Expands queries against one mediator's specification."""

    def __init__(
        self,
        mediator_name: str,
        specification: Specification,
        push_mode: str = "complete",
    ) -> None:
        self.mediator_name = mediator_name
        self.specification = specification
        self.push_mode = push_mode

    # -- the entry point ------------------------------------------------

    def expand(self, query: Rule) -> LogicalDatamergeProgram:
        """The logical datamerge program for ``query``.

        Conditions addressed to this mediator (``@med`` or unannotated)
        are expanded; conditions addressed elsewhere pass through with
        the unifier's mappings applied.
        """
        query = rename_apart(query, "_q")
        mediator_conditions: list[PatternCondition] = []
        passthrough: list[Condition] = []
        for condition in query.tail:
            if isinstance(condition, PatternCondition) and condition.source in (
                None,
                self.mediator_name,
            ):
                mediator_conditions.append(condition)
            else:
                passthrough.append(condition)

        if not mediator_conditions:
            raise ExpansionError(
                f"query has no condition addressed to mediator"
                f" {self.mediator_name!r}: {query}"
            )

        per_condition_options: list[list[_Option]] = []
        instance = itertools.count(1)
        for condition in mediator_conditions:
            options = self._options_for(condition.pattern, instance)
            if not options:
                # this condition matches no rule head: the whole program
                # is empty (conjunctive query)
                return LogicalDatamergeProgram(())
            per_condition_options.append(options)

        logical_rules: list[LogicalRule] = []
        seen: set[str] = set()
        for combo in itertools.product(*per_condition_options):
            merged: Unifier | None = Unifier()
            for option in combo:
                merged = merged.merge(option.unifier)
                if merged is None:
                    break
            if merged is None:
                continue
            theta = merged.finalized()
            head = _apply_to_head(query.head, theta)
            tail: list[Condition] = []
            for option in combo:
                tail.extend(
                    _apply_to_condition(condition, theta)
                    for condition in option.tail
                )
            tail.extend(
                _apply_to_condition(condition, theta)
                for condition in passthrough
            )
            rule = Rule(tuple(head), tuple(tail))
            key = str(rule)
            if key in seen:
                continue
            seen.add(key)
            logical_rules.append(
                LogicalRule(
                    rule,
                    theta,
                    tuple(sorted({o.spec_rule_index for o in combo})),
                )
            )
        return LogicalDatamergeProgram(tuple(logical_rules))

    # -- per-condition matching ----------------------------------------------

    def _options_for(
        self, query_pattern: Pattern, instance: "itertools.count[int]"
    ) -> list[_Option]:
        options: list[_Option] = []
        for rule_index, rule in enumerate(self.specification.rules):
            renamed = rename_apart(rule, f"_r{next(instance)}")
            for head_item in renamed.head:
                if not isinstance(head_item, Pattern):
                    continue  # specification heads are patterns by check
                for unifier in unify_with_head(
                    query_pattern, head_item, self.push_mode
                ):
                    options.append(
                        _Option(unifier, renamed.tail, rule_index)
                    )
        return options


# ---------------------------------------------------------------------------
# applying a finalized unifier to the query head and passthrough conditions
# ---------------------------------------------------------------------------


def _apply_to_condition(condition: Condition, theta: Unifier) -> Condition:
    if isinstance(condition, PatternCondition):
        return PatternCondition(
            apply_mapping_to_pattern(condition.pattern, theta),
            condition.source,
        )
    if isinstance(condition, ExternalCall):
        return ExternalCall(
            condition.name,
            tuple(theta.resolve(arg) for arg in condition.args),
        )
    if isinstance(condition, Comparison):
        return Comparison(
            theta.resolve(condition.left),
            condition.op,
            theta.resolve(condition.right),
        )
    raise TypeError(f"unknown condition {condition!r}")


def _apply_to_head(
    head: tuple[HeadItem, ...], theta: Unifier
) -> list[HeadItem]:
    items: list[HeadItem] = []
    for item in head:
        if isinstance(item, Var):
            items.extend(_expand_head_var(item, theta))
        else:
            items.append(_apply_to_head_pattern(item, theta))
    return items


def _expand_head_var(var: Var, theta: Unifier) -> list[HeadItem]:
    """A bare head variable becomes its definition (the ``JC ⇒ ...`` use)."""
    definition = theta.definitions.get(var.name)
    if definition is None:
        resolved = theta.resolve(var)
        if isinstance(resolved, Var):
            return [resolved]
        raise ExpansionError(
            f"query head variable {var} resolved to constant {resolved};"
            f" wrap it in a pattern to emit it as an object"
        )
    if isinstance(definition, Pattern):
        return [_strip_rest_conditions(definition)]
    # a SetPattern definition: the variable stood for a sub-object set;
    # its members become top-level head items
    expanded: list[HeadItem] = []
    for member in definition.items:
        if isinstance(member, PatternItem):
            expanded.append(_strip_rest_conditions(member.pattern))
        else:
            expanded.append(member.var)
    if definition.rest is not None and not definition.rest.var.is_anonymous:
        expanded.append(definition.rest.var)
    return expanded


def _strip_rest_conditions(pattern: Pattern) -> Pattern:
    """Drop RestSpec conditions anywhere in ``pattern`` (heads only)."""
    value = pattern.value
    if not isinstance(value, SetPattern):
        return pattern
    items: list[PatternItem | VarItem] = []
    for item in value.items:
        if isinstance(item, PatternItem):
            items.append(
                PatternItem(
                    _strip_rest_conditions(item.pattern), item.descendant
                )
            )
        else:
            items.append(item)
    rest = value.rest
    if rest is not None and rest.conditions:
        from repro.msl.ast import RestSpec

        rest = RestSpec(rest.var, ())
    return Pattern(
        label=pattern.label,
        value=SetPattern(tuple(items), rest),
        type=pattern.type,
        oid=pattern.oid,
        object_var=pattern.object_var,
    )


def _apply_to_head_pattern(pattern: Pattern, theta: Unifier) -> Pattern:
    """Apply mappings and splice variable definitions inside braces.

    Pushed conditions that :func:`apply_mapping_to_pattern` attaches to
    rest variables are stripped here: in a *head* the rest variable
    splices members in, and the conditions are enforced where the
    variable is bound — in the tail.
    """
    substituted = _strip_rest_conditions(
        apply_mapping_to_pattern(pattern, theta)
    )
    value = substituted.value
    if not isinstance(value, SetPattern):
        # a value variable whose definition is a set: turn the value
        # into that set pattern
        if isinstance(value, Var):
            definition = theta.definitions.get(value.name)
            if isinstance(definition, SetPattern):
                return Pattern(
                    label=substituted.label,
                    value=definition,
                    type=substituted.type,
                    oid=substituted.oid,
                    object_var=substituted.object_var,
                )
        return substituted
    items: list[PatternItem | VarItem] = []
    for item in value.items:
        if isinstance(item, PatternItem):
            items.append(
                PatternItem(
                    _apply_to_head_pattern(item.pattern, theta),
                    item.descendant,
                )
            )
            continue
        definition = theta.definitions.get(item.var.name)
        if definition is None:
            resolved = theta.resolve(item.var)
            if isinstance(resolved, Var):
                items.append(VarItem(resolved))
            else:
                raise ExpansionError(
                    f"head brace variable {item.var} resolved to constant"
                    f" {resolved}; constants cannot be spliced into a set"
                )
        elif isinstance(definition, Pattern):
            items.append(PatternItem(definition))
        else:
            items.extend(definition.items)
    rest = value.rest
    if rest is not None and not rest.var.is_anonymous:
        # a head-position rest variable with a definition (the query's
        # own '| QR' standing for the view's leftover structure) splices
        # its members in, like a VarItem
        rest_definition = theta.definitions.get(rest.var.name)
        if rest_definition is not None:
            if isinstance(rest_definition, Pattern):
                items.append(
                    PatternItem(_strip_rest_conditions(rest_definition))
                )
                rest = None
            else:
                for member in rest_definition.items:
                    if isinstance(member, PatternItem):
                        items.append(
                            PatternItem(
                                _strip_rest_conditions(member.pattern),
                                member.descendant,
                            )
                        )
                    else:
                        items.append(member)
                rest = rest_definition.rest
    return Pattern(
        label=substituted.label,
        value=SetPattern(tuple(items), rest),
        type=substituted.type,
        oid=substituted.oid,
        object_var=substituted.object_var,
    )

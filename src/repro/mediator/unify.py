"""Unifiers: matching query conditions against mediator rule heads.

Section 3.2 of the paper: the View Expander "matches the query tail
conditions with rule heads.  The successful matches result in expressions
called *unifiers*".  A unifier has

* **mappings** (``↦``) — variable-to-term substitutions, e.g.
  ``N ↦ 'Joe Chung'``, applied to both the query head and the rule tail;
* **set-conditions** — the pushdown mappings of Section 3.3, e.g.
  ``Rest1 ↦ {<year 3>}``: conditions attached to a set-bound rule
  variable ("the attachment of the conditions specified inside the {} to
  the specified variable");
* **definitions** (``⇒``) — e.g. ``JC ⇒ <cs_person {...}>``: "the
  definition carries all the information about the structure of the
  mediator objects that bind to the query variable".

Matching a query's set pattern against a head's braces enumerates *all*
ways each query item can be satisfied — by unifying with an explicit
head item, or by being pushed into any set variable of the head.  That
enumeration is what produces the two unifiers τ1/τ2 for the ``<year 3>``
query of Section 3.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.msl.ast import (
    Const,
    Pattern,
    PatternItem,
    RestSpec,
    SemOidTerm,
    SetPattern,
    Term,
    Var,
    VarItem,
)
from repro.msl.errors import MSLSemanticError

__all__ = ["Unifier", "unify_with_head", "apply_mapping_to_pattern"]


Definition = Union[Pattern, SetPattern]


@dataclass
class Unifier:
    """One successful match of a query condition with a rule head."""

    mappings: dict[str, Term] = field(default_factory=dict)
    set_conditions: dict[str, tuple[Pattern, ...]] = field(default_factory=dict)
    definitions: dict[str, Definition] = field(default_factory=dict)

    # -- construction (returns None on conflict) ---------------------------

    def copy(self) -> "Unifier":
        return Unifier(
            dict(self.mappings),
            dict(self.set_conditions),
            dict(self.definitions),
        )

    def map_var(self, name: str, term: Term) -> "Unifier | None":
        """Add the mapping ``name ↦ term``; None if inconsistent."""
        if name == "_":
            return self
        resolved_new = self.resolve(term)
        if name in self.mappings:
            resolved_old = self.resolve(self.mappings[name])
            if resolved_old == resolved_new:
                return self
            # two constants that disagree: dead end; two variables (or a
            # variable and a constant): unify them transitively
            if isinstance(resolved_old, Const) and isinstance(
                resolved_new, Const
            ):
                return None
            if isinstance(resolved_old, Var):
                updated = self.copy()
                updated.mappings[resolved_old.name] = resolved_new
                return updated
            if isinstance(resolved_new, Var):
                updated = self.copy()
                updated.mappings[resolved_new.name] = resolved_old
                return updated
            return None
        if isinstance(resolved_new, Var) and resolved_new.name == name:
            return self  # no-op mapping X ↦ X
        updated = self.copy()
        updated.mappings[name] = resolved_new
        return updated

    def push_condition(self, var_name: str, condition: Pattern) -> "Unifier":
        """Attach ``condition`` to set variable ``var_name`` (pushdown)."""
        updated = self.copy()
        updated.set_conditions[var_name] = updated.set_conditions.get(
            var_name, ()
        ) + (condition,)
        return updated

    def define(self, var_name: str, definition: Definition) -> "Unifier | None":
        if var_name == "_":
            return self
        if var_name in self.definitions:
            return (
                self if self.definitions[var_name] == definition else None
            )
        updated = self.copy()
        updated.definitions[var_name] = definition
        return updated

    # -- resolution ---------------------------------------------------------

    def resolve(self, term: Term) -> Term:
        """Chase mapping chains: X ↦ Y, Y ↦ 'c' resolves X to 'c'."""
        seen: set[str] = set()
        current = term
        while isinstance(current, Var) and current.name in self.mappings:
            if current.name in seen:
                raise MSLSemanticError(
                    f"cyclic mapping through variable {current.name}"
                )
            seen.add(current.name)
            current = self.mappings[current.name]
        if isinstance(current, SemOidTerm):
            return SemOidTerm(
                current.functor,
                tuple(self.resolve(a) for a in current.args),
            )
        return current

    def merge(self, other: "Unifier") -> "Unifier | None":
        """Combine two unifiers (for multi-condition queries)."""
        merged: Unifier | None = self.copy()
        for name, term in other.mappings.items():
            merged = merged.map_var(name, term)
            if merged is None:
                return None
        for name, conditions in other.set_conditions.items():
            for condition in conditions:
                merged = merged.push_condition(name, condition)
        for name, definition in other.definitions.items():
            merged = merged.define(name, definition)
            if merged is None:
                return None
        return merged

    def finalized(self) -> "Unifier":
        """Resolve all chains and apply mappings inside pushed conditions
        and definitions, producing the presentable form of the unifier."""
        final = Unifier()
        for name in self.mappings:
            final.mappings[name] = self.resolve(Var(name))
        final.set_conditions = {
            name: tuple(
                apply_mapping_to_pattern(c, self) for c in conditions
            )
            for name, conditions in self.set_conditions.items()
        }
        final.definitions = {
            name: _apply_to_definition(definition, self)
            for name, definition in self.definitions.items()
        }
        return final

    def __str__(self) -> str:
        parts = [
            f"{name} -> {term}" for name, term in sorted(self.mappings.items())
        ]
        parts += [
            f"{name} -> {{{' '.join(str(c) for c in conditions)}}}"
            for name, conditions in sorted(self.set_conditions.items())
        ]
        parts += [
            f"{name} => {definition}"
            for name, definition in sorted(self.definitions.items())
        ]
        return "[" + ", ".join(parts) + "]"


# ---------------------------------------------------------------------------
# applying a unifier's mappings to patterns
# ---------------------------------------------------------------------------


def _apply_term(term: Term | None, unifier: Unifier) -> Term | None:
    if term is None:
        return None
    if isinstance(term, (Var, SemOidTerm)):
        return unifier.resolve(term)
    return term


def apply_mapping_to_pattern(pattern: Pattern, unifier: Unifier) -> Pattern:
    """Substitute the unifier's mappings through ``pattern``.

    Set-conditions are *also* applied: when a substituted value variable
    or rest variable has pushed conditions, they are attached in place
    (the ``Rest1:{<year 3>}`` notation).
    """
    label = _apply_term(pattern.label, unifier)
    assert label is not None
    oid = _apply_term(pattern.oid, unifier)
    type_ = _apply_term(pattern.type, unifier)

    value = pattern.value
    new_value: Term | SetPattern
    if isinstance(value, SetPattern):
        items: list[PatternItem | VarItem] = []
        for item in value.items:
            if isinstance(item, PatternItem):
                items.append(
                    PatternItem(
                        apply_mapping_to_pattern(item.pattern, unifier),
                        item.descendant,
                    )
                )
            else:
                items.append(item)
        rest = value.rest
        if rest is not None:
            pushed = unifier.set_conditions.get(rest.var.name, ())
            conditions = tuple(
                apply_mapping_to_pattern(c, unifier)
                for c in rest.conditions + pushed
            )
            rest = RestSpec(rest.var, conditions)
        new_value = SetPattern(tuple(items), rest)
    elif isinstance(value, Var):
        resolved = unifier.resolve(value)
        pushed = unifier.set_conditions.get(value.name, ())
        if pushed and isinstance(resolved, Var):
            # a set-valued variable with attached conditions becomes
            # {| V:{conditions}} — V still binds all members, and the
            # conditions must hold among them
            conditions = tuple(
                apply_mapping_to_pattern(c, unifier) for c in pushed
            )
            new_value = SetPattern((), RestSpec(resolved, conditions))
        else:
            new_value = resolved
    else:
        new_value = value

    object_var = pattern.object_var
    if object_var is not None and not object_var.is_anonymous:
        resolved_ov = unifier.resolve(object_var)
        object_var = resolved_ov if isinstance(resolved_ov, Var) else None

    return Pattern(
        label=label,
        value=new_value,
        type=type_,
        oid=oid,
        object_var=object_var,
    )


def _apply_to_definition(definition: Definition, unifier: Unifier) -> Definition:
    if isinstance(definition, Pattern):
        return apply_mapping_to_pattern(definition, unifier)
    items: list[PatternItem | VarItem] = []
    for item in definition.items:
        if isinstance(item, PatternItem):
            items.append(
                PatternItem(
                    apply_mapping_to_pattern(item.pattern, unifier),
                    item.descendant,
                )
            )
        else:
            items.append(item)
    return SetPattern(tuple(items), definition.rest)


# ---------------------------------------------------------------------------
# unification of a query pattern with a rule head pattern
# ---------------------------------------------------------------------------


def _unify_slot(
    query_term: Term | None,
    head_term: Term | None,
    unifier: Unifier,
    *,
    slot: str,
) -> Unifier | None:
    """Unify one non-value slot; orientation: query vars map to head terms."""
    if query_term is None:
        return unifier  # the query doesn't constrain this slot
    if head_term is None:
        # the head leaves the slot open (e.g. no oid): a query variable
        # there cannot be given a definition, so only '_' is acceptable
        if isinstance(query_term, Var):
            return unifier if query_term.is_anonymous else None
        return None
    if isinstance(query_term, Const):
        if isinstance(head_term, Const):
            return unifier if query_term.value == head_term.value else None
        if isinstance(head_term, Var):
            return unifier.map_var(head_term.name, query_term)
        if isinstance(head_term, SemOidTerm):
            return None  # constant oid never equals a fresh semantic oid
        return None
    if isinstance(query_term, Var):
        if query_term.is_anonymous:
            return unifier
        return unifier.map_var(query_term.name, head_term)
    if isinstance(query_term, SemOidTerm) and isinstance(head_term, SemOidTerm):
        if (
            query_term.functor != head_term.functor
            or len(query_term.args) != len(head_term.args)
        ):
            return None
        current: Unifier | None = unifier
        for qa, ha in zip(query_term.args, head_term.args):
            current = _unify_slot(qa, ha, current, slot=slot)
            if current is None:
                return None
        return current
    return None


def unify_with_head(
    query_pattern: Pattern, head: Pattern, push_mode: str = "complete"
) -> Iterator[Unifier]:
    """All unifiers matching ``query_pattern`` against rule head ``head``.

    Both patterns must already be renamed apart.  Yields raw (not yet
    finalized) unifiers; the view expander finalizes after merging the
    per-condition unifiers of a multi-condition query.

    ``push_mode`` controls the enumeration of pushdown placements:

    * ``"complete"`` — every query item is *also* tried against every set
      variable of the head, even when an explicit head item unifies with
      it.  Complete w.r.t. OEM set semantics (a Rest set may contain a
      second sub-object with the same label), at the cost of more logical
      rules.
    * ``"needed"`` — pushdown is tried only for items no explicit head
      item accepts.  This reproduces the paper's presentation (one
      unifier θ1 for the 'Joe Chung' query; τ1/τ2 for the 'year' query)
      and is the cheaper, pragmatically complete choice for sources
      without duplicated labels.
    """
    if push_mode not in ("complete", "needed"):
        raise MSLSemanticError(f"unknown push_mode {push_mode!r}")
    yield from _unify_pattern(query_pattern, head, Unifier(), push_mode)


def _unify_pattern(
    query: Pattern, head: Pattern, unifier: Unifier, push_mode: str
) -> Iterator[Unifier]:
    current = _unify_slot(query.label, head.label, unifier, slot="label")
    if current is None:
        return
    current = _unify_slot(query.type, head.type, current, slot="type")
    if current is None:
        return
    current = _unify_slot(query.oid, head.oid, current, slot="oid")
    if current is None:
        return
    if query.object_var is not None and not query.object_var.is_anonymous:
        # the definition: the query variable stands for view objects of
        # the head's shape (with current mappings; finalized later)
        maybe = current.define(query.object_var.name, head)
        if maybe is None:
            return
        current = maybe

    q_value = query.value
    h_value = head.value

    if isinstance(q_value, Const):
        if isinstance(h_value, Const):
            if q_value.value == h_value.value:
                yield current
        elif isinstance(h_value, Var):
            mapped = current.map_var(h_value.name, q_value)
            if mapped is not None:
                yield mapped
        return

    if isinstance(q_value, Var):
        if q_value.is_anonymous:
            yield current
            return
        if isinstance(h_value, (Const, Var)):
            mapped = current.map_var(q_value.name, h_value)
            if mapped is not None:
                yield mapped
            return
        if isinstance(h_value, SetPattern):
            # the query variable binds the view object's sub-object set;
            # record its structure as a definition
            defined = current.define(q_value.name, h_value)
            if defined is not None:
                yield defined
            return
        return

    if isinstance(q_value, SetPattern):
        if isinstance(h_value, SetPattern):
            yield from _unify_set(q_value, h_value, current, push_mode)
            return
        if isinstance(h_value, Var):
            # every query item becomes a condition attached to the head's
            # set-valued variable
            result: Unifier | None = current
            for item in q_value.items:
                if isinstance(item, VarItem):
                    return  # bare variable in a query tail: rejected upstream
                if item.descendant:
                    return  # cannot push a descendant item into a variable
                assert result is not None
                result = result.push_condition(h_value.name, item.pattern)
            if q_value.rest is not None and result is not None:
                result = result.map_var(q_value.rest.var.name, h_value)
            if result is not None:
                yield result
            return
        return


def _unify_set(
    query_set: SetPattern,
    head_set: SetPattern,
    unifier: Unifier,
    push_mode: str,
) -> Iterator[Unifier]:
    """Containment matching of query braces into head braces.

    Each query item either unifies with a distinct explicit head item or
    is pushed into one of the head's set variables (``Rest1``, ...).
    All combinations are enumerated — the τ1/τ2 multiplicity.
    """
    head_items = [
        item for item in head_set.items if isinstance(item, PatternItem)
    ]
    head_vars = [
        item.var
        for item in head_set.items
        if isinstance(item, VarItem) and not item.var.is_anonymous
    ]
    # a head-level '| Rest' splices like a bare variable, so it is a
    # pushdown target exactly like a VarItem
    if head_set.rest is not None and not head_set.rest.var.is_anonymous:
        head_vars.append(head_set.rest.var)
    query_items = list(query_set.items)

    def step(
        index: int, used: frozenset[int], current: Unifier
    ) -> Iterator[tuple[frozenset[int], Unifier]]:
        if index == len(query_items):
            yield used, current
            return
        item = query_items[index]
        if isinstance(item, VarItem):
            return  # bare variables are head-only; queries never have them
        # option A: unify with an unused explicit head item
        if not item.descendant:
            direct_hit = False
            for position, head_item in enumerate(head_items):
                if position in used or head_item.descendant:
                    continue
                for extended in _unify_pattern(
                    item.pattern, head_item.pattern, current, push_mode
                ):
                    direct_hit = True
                    yield from step(index + 1, used | {position}, extended)
            # option B: push into any head set variable
            if push_mode == "complete" or not direct_hit:
                for head_var in head_vars:
                    pushed = current.push_condition(
                        head_var.name, item.pattern
                    )
                    yield from step(index + 1, used, pushed)
        # descendant query items are handled by the mediator's
        # materialization fallback (see Mediator.answer) — no static
        # pushdown is attempted here.

    any_descendant = any(
        isinstance(item, PatternItem) and item.descendant
        for item in query_items
    )
    if any_descendant:
        return

    for used, current in step(0, frozenset(), unifier):
        if query_set.rest is None:
            yield current
            continue
        # the query's rest variable stands for the head structure not
        # consumed by the query's explicit items (head-level rest vars
        # were folded into head_vars above)
        leftovers: list[PatternItem | VarItem] = [
            item
            for position, item in enumerate(head_items)
            if position not in used
        ]
        leftovers.extend(VarItem(v) for v in head_vars)
        defined = current.define(
            query_set.rest.var.name, SetPattern(tuple(leftovers), None)
        )
        if defined is not None:
            yield defined

"""Physical datamerge graphs: the "machine language" of MedMaker.

Section 3.4: the optimizer turns a logical datamerge rule into "a
'dataflow' graph, where the nodes represent the operations to be
executed by the engine".  The node types of Figure 3.6 are all here —

* :class:`QueryNode` — sends a fixed MSL query to a source;
* :class:`ExtractorNode` — extracts variable bindings from result
  objects via an object pattern (the paper's ``epw``);
* :class:`ExternalPredNode` — invokes an external predicate per tuple;
* :class:`ParameterizedQueryNode` — per input tuple, instantiates a
  query template (``$R``, ``$LN``, ``$FN``) and sends it to a source;
* :class:`ConstructorNode` — builds the final result objects from the
  pattern ``cp(N, R, Rest1, Rest2)``;

plus the supporting nodes a complete engine needs: :class:`FilterNode`
(mediator-side compensation of conditions a source cannot evaluate),
:class:`JoinNode` (for fetch-all plans), :class:`DedupNode`, and
:class:`UnionNode` (multi-rule logical programs).

Each node consumes the tables of its input nodes and produces one
table; the engine (:mod:`repro.mediator.engine`) runs the graph
bottom-up and can record every intermediate table, which is how the
test-suite and benchmarks replay Figure 3.6 row for row.
"""

from __future__ import annotations

import abc
from time import perf_counter
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.exec.dispatcher import current_scope
from repro.mediator.tables import BindingTable, TableError
from repro.msl.ast import (
    Comparison,
    Const,
    ExternalCall,
    HeadItem,
    Pattern,
    PatternCondition,
    Rule,
    Var,
)
from repro.msl.bindings import values_equal
from repro.msl.compile import run_row_extractor
from repro.msl.errors import MSLSemanticError
from repro.msl.evaluate import compare_values
from repro.msl.matcher import match_pattern
from repro.msl.substitute import (
    head_variables,
    instantiate_head_item,
    instantiate_params_in_pattern,
)
from repro.msl.bindings import Bindings
from repro.oem.compare import eliminate_duplicates
from repro.oem.model import OEMObject
from repro.oem.oid import OidGenerator
from repro.wrappers.sharding import (
    BloomFilter,
    SemiJoinFilter,
    SemiJoinQuery,
    encode_value,
    shard_name,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mediator.engine import ExecutionContext

__all__ = [
    "PlanNode",
    "QueryNode",
    "ShardedQueryNode",
    "ExtractorNode",
    "ExternalPredNode",
    "ParameterizedQueryNode",
    "FilterNode",
    "JoinNode",
    "DedupNode",
    "ConstructorNode",
    "UnionNode",
    "PhysicalPlan",
    "OBJECT_COLUMN",
    "RESULT_COLUMN",
    "build_comparison_keep",
]

#: Column name carrying raw result objects out of query nodes.
OBJECT_COLUMN = "_obj"
#: Column name carrying constructed result objects out of constructors.
RESULT_COLUMN = "_result"


class PlanNode(abc.ABC):
    """One operator of a physical datamerge graph."""

    #: Constituent-operator count for stage accounting.  Ordinary nodes
    #: occupy one stage; a fused pipeline node spans one stage per
    #: constituent so deadline slicing sees the same stage count with
    #: or without fusion.
    fusion_width = 1

    #: Optimizer-annotated cardinality estimate for this operator's
    #: output rows (``None`` when the planner has no estimate), and the
    #: ``(source, label, kind)`` statistics key the estimate derives
    #: from (``kind`` is ``"scan"`` for leaf fetches, ``"join"`` for
    #: bind-join probes).  Read by EXPLAIN ANALYZE, the q-error
    #: tracker, and the engine's mid-query misestimate detector.
    estimated_rows: "float | None" = None
    estimate_key: "tuple[str, str, str] | None" = None

    def __init__(self, inputs: Sequence["PlanNode"] = ()) -> None:
        self.inputs: tuple[PlanNode, ...] = tuple(inputs)

    @abc.abstractmethod
    def execute(
        self, inputs: list[BindingTable], context: "ExecutionContext"
    ) -> BindingTable:
        """Produce this node's output table from its input tables."""

    @abc.abstractmethod
    def describe(self) -> str:
        """A one-line description for plan displays."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


class QueryNode(PlanNode):
    """Leaf: send a fixed MSL query to one source.

    The output table has a single :data:`OBJECT_COLUMN` column holding
    the returned top-level objects, exactly like the ``Qw Result`` table
    at the bottom of Figure 3.6.
    """

    def __init__(self, source: str, query: Rule) -> None:
        super().__init__(())
        self.source = source
        self.query = query

    def execute(
        self, inputs: list[BindingTable], context: "ExecutionContext"
    ) -> BindingTable:
        objects = context.send_query(self.source, self.query)
        return BindingTable(
            (OBJECT_COLUMN,),
            ([obj] for obj in objects),
            governor=context.governor,
        )

    def describe(self) -> str:
        return f"query {self.source}: {self.query}"


def _fan_queries(context, dispatcher, pairs):
    """Send ``(source, query)`` pairs, in parallel when possible.

    Answers come back in pair order.  Sequential runs send directly
    (failing fast, like the per-row path always did); parallel runs let
    every task settle, merge each task scope into the active one in
    submission order, then raise the first captured error — the same
    deterministic merge order :meth:`ParameterizedQueryNode.run_batch`
    established.
    """
    if dispatcher is None or not dispatcher.parallel or len(pairs) <= 1:
        return [context.send_query(source, query) for source, query in pairs]
    outcomes = dispatcher.run_tasks(
        [
            (lambda s=source, q=query: context.send_query(s, q))
            for source, query in pairs
        ]
    )
    parent = current_scope()
    first_error: BaseException | None = None
    for outcome in outcomes:
        if parent is not None:
            parent.merge(outcome.scope)
        else:
            context.warnings.extend(outcome.scope.warnings)
        if outcome.error is not None and first_error is None:
            first_error = outcome.error
    if first_error is not None:
        raise first_error
    return [outcome.value or [] for outcome in outcomes]


class ShardedQueryNode(PlanNode):
    """Leaf: fan one fixed query across the shards of a sharded source.

    The optimizer replaces a :class:`QueryNode` on a
    :class:`~repro.wrappers.sharding.ShardedSource` with this node,
    pruning shards that cannot hold matching objects (a constant pushed
    down on the partition label routes to exactly one shard).  The
    surviving shards are probed concurrently through the dispatcher —
    this node runs inline on the coordinating thread (it is *not* a
    :class:`QueryNode`, so the staged executor never puts it on a pool
    worker, which keeps the fan-out free of nested-pool deadlocks) —
    and answers concatenate in shard order.
    """

    def __init__(
        self,
        source: str,
        shard_names: Sequence[str],
        query: Rule,
        pruned: int = 0,
    ) -> None:
        super().__init__(())
        self.source = source
        self.shard_names = tuple(shard_names)
        self.query = query
        self.pruned = pruned

    def execute(
        self, inputs: list[BindingTable], context: "ExecutionContext"
    ) -> BindingTable:
        context.record_shard_fanout(len(self.shard_names), self.pruned)
        answers = _fan_queries(
            context,
            context.dispatcher,
            [(name, self.query) for name in self.shard_names],
        )
        return BindingTable(
            (OBJECT_COLUMN,),
            ([obj] for answer in answers for obj in answer or ()),
            governor=context.governor,
        )

    def describe(self) -> str:
        total = len(self.shard_names) + self.pruned
        return (
            f"sharded-query {self.source}"
            f" [{len(self.shard_names)}/{total} shards]: {self.query}"
        )


class ExtractorNode(PlanNode):
    """Extract variable bindings from the objects of one column.

    Parameters mirror the paper's extractor: "the first is the ...
    object pattern [that] indicates where the desired bindings are found
    in the result objects; the second parameter indicates the column of
    the input table that contains the objects".  The input column is
    always discarded (footnote 8).
    """

    def __init__(
        self,
        input_node: PlanNode,
        pattern: Pattern,
        variables: Sequence[str],
        column: str = OBJECT_COLUMN,
    ) -> None:
        super().__init__((input_node,))
        self.pattern = pattern
        self.pattern_text = str(pattern)
        self.variables = tuple(variables)
        self.column = column

    def execute(
        self, inputs: list[BindingTable], context: "ExecutionContext"
    ) -> BindingTable:
        (table,) = inputs
        position = table.position(self.column)
        carried = [c for c in table.columns if c != self.column]
        carried_positions = [table.position(c) for c in carried]
        new_columns = [v for v in self.variables if v not in carried]
        result = BindingTable(
            tuple(carried) + tuple(new_columns), governor=context.governor
        )
        add = result._appender()
        profiler = context.profiler
        tracer = context.tracer
        span = (
            tracer.start_span("pattern-match", self.pattern_text)
            if tracer is not None
            else None
        )
        started = perf_counter() if profiler is not None else 0.0
        matches = 0
        compiler = context.compiler
        if compiler is not None:
            compiled = compiler.pattern(self.pattern)
            index = compiled.layout.index
            # a variable colliding with a carried column is a join:
            # keep the row only when the values agree
            carried_checks = tuple(
                (table.position(c), index[c])
                for c in carried
                if c in index
            )
            new_registers = tuple(index.get(v) for v in new_columns)
            matches = run_row_extractor(
                compiled,
                table.rows,
                position,
                carried_positions,
                carried_checks,
                new_registers,
                add,
                self.column,
                TableError,
            )
        else:
            for row in table.rows:
                obj = row[position]
                if not isinstance(obj, OEMObject):
                    raise TableError(
                        f"extractor column {self.column!r} holds non-object"
                        f" {obj!r}"
                    )
                for env in match_pattern(self.pattern, obj):
                    if not all(
                        values_equal(env.get(c), row[table.position(c)])
                        for c in carried
                        if c in env
                    ):
                        continue
                    matches += 1
                    add(
                        tuple(row[p] for p in carried_positions)
                        + tuple(env.get(v) for v in new_columns)
                    )
        if profiler is not None:
            profiler.record_pattern(
                self.pattern_text,
                len(table.rows),
                matches,
                perf_counter() - started,
            )
        if span is not None:
            span.set_attribute("objects", len(table.rows))
            span.set_attribute("matches", matches)
            span.set_attribute("compiled", compiler is not None)
            tracer.finish_span(span)
        return result

    def describe(self) -> str:
        return f"extract {', '.join(self.variables)} via {self.pattern}"


class ExternalPredNode(PlanNode):
    """Invoke an external predicate for every tuple (Figure 3.6's
    ``external pred`` node)."""

    def __init__(self, input_node: PlanNode, call: ExternalCall) -> None:
        super().__init__((input_node,))
        self.call = call

    def plan_call(
        self, has_column, position
    ) -> tuple[list[str], list[tuple[str, object]]]:
        """``(out_vars, argument specs)`` for one input schema.

        The argument plan is fixed before the hot loop, over raw row
        tuples: ``('const', value) | ('col', row position) |
        ('out', out index) | ('skip', None)``; mirrors the dict-based
        logic exactly.  Shared with the fused pipeline's
        external-predicate stage.
        """
        out_vars: list[str] = []
        for arg in self.call.args:
            if (
                isinstance(arg, Var)
                and not arg.is_anonymous
                and not has_column(arg.name)
                and arg.name not in out_vars
            ):
                out_vars.append(arg.name)
        specs: list[tuple[str, object]] = []
        for arg in self.call.args:
            if isinstance(arg, Const):
                specs.append(("const", arg.value))
            elif (
                isinstance(arg, Var)
                and not arg.is_anonymous
                and has_column(arg.name)
            ):
                specs.append(("col", position(arg.name)))
            elif isinstance(arg, Var) and not arg.is_anonymous:
                specs.append(("out", out_vars.index(arg.name)))
            else:
                specs.append(("skip", None))
        return out_vars, specs

    def expander(
        self,
        specs: Sequence[tuple[str, object]],
        out_vars: Sequence[str],
        context: "ExecutionContext",
    ):
        """Per-row expansion closure over a fixed argument plan."""
        governor = context.governor
        n_out = len(out_vars)
        unset = object()

        def expand(row: tuple[object, ...]) -> Iterable[Sequence[object]]:
            # each invocation is charged against the external-call
            # budget; in truncate mode an exhausted budget skips the
            # call, dropping the row (a subset, never invented data)
            if governor is not None and not governor.charge_external_call():
                return
            args: list[object] = []
            available: list[bool] = []
            for kind, payload in specs:
                if kind == "const":
                    args.append(payload)
                    available.append(True)
                elif kind == "col":
                    args.append(row[payload])
                    available.append(True)
                else:
                    args.append(None)
                    available.append(False)
            for full in context.externals.evaluate(
                self.call.name, args, available
            ):
                produced: list[object] = [unset] * n_out
                consistent = True
                for (kind, payload), value in zip(specs, full):
                    if kind == "const":
                        if payload != value:
                            consistent = False
                            break
                    elif kind == "col":
                        if not values_equal(row[payload], value):
                            consistent = False
                            break
                    elif kind == "out":
                        existing = produced[payload]
                        if existing is unset:
                            produced[payload] = value
                        elif not values_equal(existing, value):
                            consistent = False
                            break
                if consistent:
                    yield [
                        None if value is unset else value
                        for value in produced
                    ]

        return expand

    def execute(
        self, inputs: list[BindingTable], context: "ExecutionContext"
    ) -> BindingTable:
        (table,) = inputs
        out_vars, specs = self.plan_call(table.has_column, table.position)
        expand = self.expander(specs, out_vars, context)
        tracer = context.tracer
        if tracer is not None:
            with tracer.span("external-predicate", self.call.name) as span:
                result = table.extend_rows(out_vars, expand)
                span.set_attribute("rows_in", len(table.rows))
                span.set_attribute("rows_out", len(result))
            return result
        return table.extend_rows(out_vars, expand)

    def describe(self) -> str:
        return f"external {self.call}"


class ParameterizedQueryNode(PlanNode):
    """Per input tuple, instantiate a query template and send it.

    "For each tuple of its input table, this node generates a query for
    source cs requesting bindings ... The values for query parameters
    $R, $LN, and $FN are taken from ... the incoming table."  Input
    columns are kept (the node's keep/discard parameter, fixed to keep),
    and the returned objects land in :data:`OBJECT_COLUMN`.
    """

    def __init__(
        self,
        input_node: PlanNode,
        source: str,
        template: Rule,
        param_columns: Mapping[str, str],
        batch_query: Rule | None = None,
        param_labels: Mapping[str, str] | None = None,
        shard_names: Sequence[str] | None = None,
        partition=None,
    ) -> None:
        super().__init__((input_node,))
        self.source = source
        self.template = template
        self.param_columns = dict(param_columns)
        # semi-join shipping spec (optimizer-attached when the source
        # advertises batch filters): the full-variable projection rule
        # to ship once per target, the direct-child label each template
        # parameter's values appear under, and — for sharded sources —
        # the surviving shard names plus the partition for per-probe
        # routing on the partition label
        self.batch_query = batch_query
        self.param_labels = dict(param_labels) if param_labels else {}
        self.shard_names = tuple(shard_names) if shard_names else ()
        self.partition = partition

    def instantiate(self, row: Mapping[str, object]) -> Rule:
        """The concrete query for one input tuple (Qcs1/Qcs2 style)."""
        return self._instantiate_with(
            {
                name: row[column]
                for name, column in self.param_columns.items()
            }
        )

    def _instantiate_with(self, params: Mapping[str, object]) -> Rule:
        tail = []
        for condition in self.template.tail:
            if isinstance(condition, PatternCondition):
                tail.append(
                    PatternCondition(
                        instantiate_params_in_pattern(
                            condition.pattern, params
                        ),
                        condition.source,
                    )
                )
            else:
                tail.append(condition)
        return Rule(self.template.head, tuple(tail))

    def execute(
        self, inputs: list[BindingTable], context: "ExecutionContext"
    ) -> BindingTable:
        (table,) = inputs
        return self._execute_batch(table, context, context.dispatcher)

    def _execute_batch(
        self, table: BindingTable, context: "ExecutionContext", dispatcher
    ) -> BindingTable:
        """Fan the per-tuple queries of one input table across workers.

        Queries are instantiated up front and deduplicated by canonical
        text (distinct rows often bind the same parameters), one task
        is dispatched per unique query, and the output table is rebuilt
        on the coordinating thread in input-row order — same rows, same
        order, same dropped-empty-answer semantics as a per-row
        ``extend``.  Per-task warnings and attempt counts merge into
        the node's own scope in tuple order.
        """
        param_positions = [
            (name, table.position(column))
            for name, column in self.param_columns.items()
        ]
        result = BindingTable(
            tuple(table.columns) + (OBJECT_COLUMN,),
            governor=context.governor,
        )
        self.run_batch(
            table.rows, param_positions, context, dispatcher,
            result._appender(),
        )
        return result

    def run_batch(
        self,
        rows: Sequence[tuple[object, ...]],
        param_positions: Sequence[tuple[str, int]],
        context: "ExecutionContext",
        dispatcher,
        add,
    ) -> None:
        """Batched probe over raw rows, emitting through ``add``.

        Shared with the fused pipeline's parameterized-query stage so
        the fused path has the exact dedup, dispatch, warning-merge,
        and row-rebuild order of the unfused one.  When the optimizer
        attached a semi-join spec (the source accepts batch filters)
        and the context has semi-join shipping enabled, the whole batch
        collapses into one shipped filter per target instead of one
        probe per distinct tuple.
        """
        if (
            rows
            and self.batch_query is not None
            and context.semijoin
            and self._run_semijoin(
                rows, param_positions, context, dispatcher, add
            )
        ):
            return
        unique: list[Rule] = []
        index_of: dict[str, int] = {}
        row_query: list[int] = []
        for row in rows:
            query = self._instantiate_with(
                {name: row[p] for name, p in param_positions}
            )
            text = str(query)
            position = index_of.get(text)
            if position is None:
                position = index_of[text] = len(unique)
                unique.append(query)
            row_query.append(position)
        answers = _fan_queries(
            context,
            dispatcher,
            [(self.source, query) for query in unique],
        )
        for row, position in zip(rows, row_query):
            for obj in answers[position] or ():
                add(row + (obj,))

    def _run_semijoin(
        self,
        rows: Sequence[tuple[object, ...]],
        param_positions: Sequence[tuple[str, int]],
        context: "ExecutionContext",
        dispatcher,
        add,
    ) -> bool:
        """Ship one batched value filter per target instead of probing.

        Distinct probe tuples (canonically encoded, so ``1`` and
        ``1.0`` collapse) are routed to their shard when the partition
        label is among the parameters — otherwise broadcast — and each
        surviving target receives a single
        :class:`~repro.wrappers.sharding.SemiJoinQuery`: the
        full-variable projection rule plus one ``IN``-set (or, above
        ``context.bloom_threshold`` values, Bloom) filter per
        parameter.  Returned objects are demultiplexed back onto their
        probe by the ``bind_for_*`` values, and an object counts for a
        probe only if that probe was shipped to the answering target —
        which re-checks Bloom false positives exactly and keeps
        cross-shard duplicates out.  Emits the same rows, in the same
        input order, as the per-tuple path.  Returns ``False`` (caller
        falls back to per-tuple probes) if a parameter value cannot be
        put in a filter set.
        """
        params = [name for name, _ in param_positions]
        probes: list[tuple[object, ...]] = []
        keys: list[tuple[bytes, ...]] = []
        index_of: dict[tuple[bytes, ...], int] = {}
        row_key: list[tuple[bytes, ...]] = []
        for row in rows:
            values = tuple(row[p] for _, p in param_positions)
            key = tuple(encode_value(v) for v in values)
            if key not in index_of:
                index_of[key] = len(probes)
                probes.append(values)
                keys.append(key)
            row_key.append(key)
        targets = list(self.shard_names) or [self.source]
        route_position: int | None = None
        if self.partition is not None and self.shard_names:
            for position, name in enumerate(params):
                if self.param_labels.get(name) == self.partition.label:
                    route_position = position
                    break
        target_set = set(targets)
        groups: dict[str, list[int]] = {name: [] for name in targets}
        for i, values in enumerate(probes):
            routed: int | None = None
            if route_position is not None:
                routed = self.partition.shard_of(values[route_position])
            if routed is None:
                for name in targets:
                    groups[name].append(i)
            else:
                name = shard_name(self.source, routed)
                if name in target_set:
                    groups[name].append(i)
        shipped = [(name, groups[name]) for name in targets if groups[name]]
        threshold = context.bloom_threshold
        pairs: list[tuple[str, SemiJoinQuery]] = []
        admitted: list[set[tuple[bytes, ...]]] = []
        try:
            for name, member_ids in shipped:
                filters = []
                for position, pname in enumerate(params):
                    values = frozenset(
                        probes[i][position] for i in member_ids
                    )
                    label = self.param_labels[pname]
                    if threshold and len(values) > threshold:
                        filters.append(
                            SemiJoinFilter(
                                pname, label,
                                bloom=BloomFilter.build(values),
                            )
                        )
                    else:
                        filters.append(
                            SemiJoinFilter(pname, label, values=values)
                        )
                pairs.append(
                    (name, SemiJoinQuery(self.batch_query, tuple(filters)))
                )
                admitted.append({keys[i] for i in member_ids})
        except TypeError:  # unhashable parameter value
            return False
        answers = _fan_queries(context, dispatcher, pairs)
        context.record_semijoin(len(pairs), len(probes))
        bind_labels = [f"bind_for_{name}" for name in params]
        by_key: dict[tuple[bytes, ...], list[OEMObject]] = {
            key: [] for key in keys
        }
        for admit, answer in zip(admitted, answers):
            for obj in answer or ():
                okey = tuple(
                    encode_value(obj.get(label)) for label in bind_labels
                )
                if okey in admit:
                    by_key[okey].append(obj)
        for row, key in zip(rows, row_key):
            for obj in by_key[key]:
                add(row + (obj,))
        return True

    def describe(self) -> str:
        params = ", ".join(
            f"${name}<-{column}" for name, column in self.param_columns.items()
        )
        mode = ""
        if self.batch_query is not None:
            mode = " (semijoin"
            if self.shard_names:
                mode += f" x{len(self.shard_names)} shards"
            mode += ")"
        return f"param-query {self.source}{mode} [{params}]: {self.template}"


def build_comparison_keep(comparison: Comparison, has_column, position):
    """Positional keep-predicate for one comparison over raw row tuples.

    ``has_column``/``position`` abstract the column lookup so the same
    predicate builder serves :class:`FilterNode` (backed by a
    :class:`BindingTable`) and the fused pipeline's filter stage
    (backed by a plain column list).
    """

    def accessor(term):
        # positional mirror of term_value over the row's variable
        # columns (the carrier columns are never comparison operands)
        if isinstance(term, Const):
            value = term.value
            return lambda row, _v=value: (True, _v)
        if (
            isinstance(term, Var)
            and not term.is_anonymous
            and has_column(term.name)
            and term.name not in (OBJECT_COLUMN, RESULT_COLUMN)
        ):
            p = position(term.name)
            return lambda row, _p=p: (True, row[_p])
        return lambda row: (False, None)

    left = accessor(comparison.left)
    right = accessor(comparison.right)
    op = comparison.op

    def keep(row: tuple[object, ...]) -> bool:
        left_ok, left_value = left(row)
        right_ok, right_value = right(row)
        if not (left_ok and right_ok):
            raise MSLSemanticError(
                f"comparison {comparison} evaluated with unbound operand"
            )
        return compare_values(op, left_value, right_value)

    return keep


class FilterNode(PlanNode):
    """Apply a comparison to each tuple (mediator-side compensation)."""

    def __init__(self, input_node: PlanNode, comparison: Comparison) -> None:
        super().__init__((input_node,))
        self.comparison = comparison

    def execute(
        self, inputs: list[BindingTable], context: "ExecutionContext"
    ) -> BindingTable:
        (table,) = inputs
        keep = build_comparison_keep(
            self.comparison, table.has_column, table.position
        )
        return table.filter_rows(keep)

    def describe(self) -> str:
        return f"filter {self.comparison}"


class JoinNode(PlanNode):
    """Natural (hash) join of two tables on their shared columns."""

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        super().__init__((left, right))

    def execute(
        self, inputs: list[BindingTable], context: "ExecutionContext"
    ) -> BindingTable:
        left, right = inputs
        return left.natural_join(right)

    def describe(self) -> str:
        return "join"


class DedupNode(PlanNode):
    """Duplicate elimination over (a subset of) columns."""

    def __init__(
        self, input_node: PlanNode, columns: Sequence[str] | None = None
    ) -> None:
        super().__init__((input_node,))
        self.columns = tuple(columns) if columns is not None else None

    def execute(
        self, inputs: list[BindingTable], context: "ExecutionContext"
    ) -> BindingTable:
        (table,) = inputs
        return table.distinct(self.columns)

    def describe(self) -> str:
        return "dedup" + (
            f" on {', '.join(self.columns)}" if self.columns else ""
        )


class ConstructorNode(PlanNode):
    """Create the final result objects (Figure 3.6's ``constructor``).

    "For each row in the input table, the constructor operator takes a
    row, assigns [the values] to the N, R, Rest1, and Rest2 values in
    cp, creating one of the final result objects."  Head-variable
    bindings are projected and deduplicated first (the MSL semantics of
    footnote 3), and structurally duplicated objects are eliminated —
    the feature the authors' engine lacked (footnote 9) but the
    semantics prescribe.
    """

    def __init__(
        self,
        input_node: PlanNode,
        head: Sequence[HeadItem],
        deduplicate: bool = True,
    ) -> None:
        super().__init__((input_node,))
        self.head = tuple(head)
        self.deduplicate = deduplicate
        self._needed = sorted(head_variables(self.head))

    def execute(
        self, inputs: list[BindingTable], context: "ExecutionContext"
    ) -> BindingTable:
        (table,) = inputs
        available = [v for v in self._needed if table.has_column(v)]
        projected = table.project(available)
        if self.deduplicate:
            projected = projected.distinct()
        governor = context.governor
        objects: list[OEMObject] = []
        for row in projected.rows:
            if governor is not None and not governor.charge_result_object():
                break  # truncate mode: stop constructing, keep the run
            env = Bindings(dict(zip(projected.columns, row)))
            for item in self.head:
                objects.extend(
                    instantiate_head_item(item, env, context.oidgen)
                )
        if self.deduplicate:
            objects = eliminate_duplicates(objects)
        return BindingTable(
            (RESULT_COLUMN,),
            ([obj] for obj in objects),
            governor=context.governor,
        )

    def describe(self) -> str:
        return f"construct {' '.join(str(h) for h in self.head)}"


class UnionNode(PlanNode):
    """Concatenate the result tables of several sub-plans.

    "If more than one head matches, then more than one rule will be
    considered; resulting objects will be added to the result."
    """

    def __init__(
        self, inputs: Sequence[PlanNode], deduplicate: bool = True
    ) -> None:
        super().__init__(tuple(inputs))
        self.deduplicate = deduplicate

    def execute(
        self, inputs: list[BindingTable], context: "ExecutionContext"
    ) -> BindingTable:
        result = BindingTable((RESULT_COLUMN,), governor=context.governor)
        add = result._appender()
        for table in inputs:
            if table.columns != (RESULT_COLUMN,):
                raise TableError(
                    f"union inputs must be result tables, got"
                    f" {list(table.columns)}"
                )
            for row in table.rows:
                add(row)
        if self.deduplicate:
            result = result.distinct()
        return result

    def describe(self) -> str:
        return f"union of {len(self.inputs)}"


class PhysicalPlan:
    """A rooted DAG of plan nodes, executable by the datamerge engine."""

    def __init__(self, root: PlanNode) -> None:
        self.root = root
        self._order: list[PlanNode] | None = None
        self._stages: list[list[PlanNode]] | None = None
        self._stage_starts: list[tuple[int, list[PlanNode]]] | None = None
        self._depth: int | None = None

    def nodes(self) -> list[PlanNode]:
        """All nodes in bottom-up (topological) order."""
        if self._order is not None:
            return self._order
        order: list[PlanNode] = []
        seen: set[int] = set()

        def visit(node: PlanNode) -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            for child in node.inputs:
                visit(child)
            order.append(node)

        visit(self.root)
        self._order = order
        return order

    def stages(self) -> list[list[PlanNode]]:
        """Nodes grouped by topological depth, shallowest first.

        A node's depth is ``1 + max(depth of its inputs)``, so all of a
        stage's inputs live in strictly earlier stages and the nodes
        *within* one stage are mutually independent — the unit of
        parallelism for the stage-aware executor.  Within a stage,
        nodes keep their :meth:`nodes` (topological) order, which is
        what keeps parallel runs' warning and trace order
        deterministic.
        """
        if self._stages is None:
            self._compute_stages()
        return self._stages

    def stage_starts(self) -> list[tuple[int, list[PlanNode]]]:
        """:meth:`stages` with each group's starting stage *number*.

        For unfused plans the numbers are simply 1, 2, 3, ...; a fused
        pipeline node occupies the number of its first constituent and
        spans ``fusion_width`` consecutive numbers, so stage numbering
        (and therefore deadline slicing and stage spans) is identical
        with and without fusion.
        """
        if self._stage_starts is None:
            self._compute_stages()
        return self._stage_starts

    def depth(self) -> int:
        """Total constituent-stage count (the deadline-slicing unit).

        Counts every constituent of a fused node, so
        ``fused_plan.depth() == unfused_plan.depth()``.
        """
        if self._depth is None:
            self._compute_stages()
        return self._depth

    def _compute_stages(self) -> None:
        end: dict[int, int] = {}
        grouped: dict[int, list[PlanNode]] = {}
        total = 0
        for node in self.nodes():
            start = 1 + max(
                (end[id(child)] for child in node.inputs), default=0
            )
            end[id(node)] = start + node.fusion_width - 1
            if end[id(node)] > total:
                total = end[id(node)]
            grouped.setdefault(start, []).append(node)
        self._stage_starts = [(d, grouped[d]) for d in sorted(grouped)]
        self._stages = [group for _, group in self._stage_starts]
        self._depth = total

    def describe(self) -> str:
        """A numbered, indented description of the whole graph."""
        numbers = {id(node): i for i, node in enumerate(self.nodes(), 1)}
        lines = []
        for node in self.nodes():
            refs = ", ".join(str(numbers[id(c)]) for c in node.inputs)
            prefix = f"[{numbers[id(node)]}]"
            suffix = f"  <- [{refs}]" if refs else ""
            lines.append(f"{prefix} {node.describe()}{suffix}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"PhysicalPlan({len(self.nodes())} nodes)"

"""Binding tables: what flows along the arcs of a datamerge graph.

Figure 3.6: "the rectangles next to the arcs of the graph represent
tables that flow during a sample run ... Typically, the tuples of the
tables carry bindings for the logical datamerge program variables."

A :class:`BindingTable` has named columns and rows of bound values
(atoms, OEM objects, or object sets).  The display form mimics the
figure, including the heading row the paper adds "for readability".

Physically the table is a hybrid row/columnar store.  The row list is
authoritative — governor row-admission accounting, plan nodes, and the
display form all see the classic rows/columns API — but the relational
operations that hash on values (:meth:`natural_join`,
:meth:`distinct`) work on lazily materialised struct-of-arrays views:
per-column arrays of memoized ``value_key`` results built once per
(table, column) via :meth:`key_column` instead of being recomputed for
every probe of every row.  Columns that hold only exact ``str`` atoms
skip key construction entirely and hash the raw values ("exact" keys).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.msl.bindings import value_key
from repro.oem.model import OEMObject
from repro.oem.printer import to_inline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.governor.budget import QueryGovernor

__all__ = ["BindingTable", "TableError", "key_array"]


class TableError(Exception):
    """Malformed table operation (unknown column, arity mismatch, ...)."""


def key_array(column: Sequence[object]) -> tuple[list[object], bool]:
    """``(keys, exact)`` for one column of values.

    ``exact`` means every value is exactly a ``str``: raw strings are
    their own hash keys (``value_key`` equality for two strings is
    plain string equality), so the column itself doubles as the key
    array with zero per-value work.  Otherwise every value is lowered
    to its canonical ``value_key``.  Shared with the fused pipeline's
    constructor stage so fused dedup partitions rows identically.
    """
    for value in column:
        if type(value) is not str:
            return [value_key(v) for v in column], False
    return list(column), True


class BindingTable:
    """An in-memory table of variable bindings.

    A table may carry a :class:`~repro.governor.budget.QueryGovernor`:
    every row admission is then charged against the query's row budgets
    (per-table and run-total) and checked for cooperative cancellation.
    Tables derived by the relational operations inherit the governor.
    Without one (the default), admission is a plain list append.
    """

    __slots__ = ("columns", "rows", "governor", "_positions", "_keys", "_keys_len")

    def __init__(
        self,
        columns: Sequence[str],
        rows: Iterable[Sequence[object]] = (),
        governor: "QueryGovernor | None" = None,
    ) -> None:
        self.columns: tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise TableError(f"duplicate column names in {self.columns}")
        self._positions = {name: i for i, name in enumerate(self.columns)}
        self.rows: list[tuple[object, ...]] = []
        self.governor = governor
        # memoized columnar key arrays: position -> (keys, exact),
        # valid only while len(rows) == _keys_len (rows only ever grow)
        self._keys: dict[int, tuple[list[object], bool]] | None = None
        self._keys_len = -1
        add = self._appender()
        arity = len(self.columns)
        for row in rows:
            row = tuple(row)
            if len(row) != arity:
                raise TableError(
                    f"row of arity {len(row)} does not fit columns"
                    f" {list(self.columns)}"
                )
            add(row)

    # -- basic access ----------------------------------------------------

    def position(self, column: str) -> int:
        try:
            return self._positions[column]
        except KeyError:
            raise TableError(
                f"no column {column!r}; columns are {list(self.columns)}"
            ) from None

    def has_column(self, column: str) -> bool:
        return column in self._positions

    def column_values(self, column: str) -> list[object]:
        position = self.position(column)
        return [row[position] for row in self.rows]

    def append(self, row: Sequence[object]) -> None:
        row = tuple(row)
        if len(row) != len(self.columns):
            raise TableError(
                f"row of arity {len(row)} does not fit columns"
                f" {list(self.columns)}"
            )
        if self.governor is None or self.governor.admit_row(self):
            self.rows.append(row)

    def _admit(self, row: tuple[object, ...]) -> None:
        """Governed fast-path append: no arity check, budget charged."""
        if self.governor.admit_row(self):
            self.rows.append(row)

    def _appender(self) -> Callable[[tuple[object, ...]], None]:
        """The cheapest correct way to add pre-shaped rows to this table.

        Hot paths (joins, extends, plan nodes) bind this once per
        table: ungoverned tables get the raw ``list.append``, governed
        tables the budget-charging path.
        """
        if self.governor is None:
            return self.rows.append
        return self.governor.row_admitter(self)

    def key_column(self, position: int) -> tuple[list[object], bool]:
        """Memoized ``(keys, exact)`` array for one column (by position).

        The cache is keyed by table length: rows are append-only, so a
        length mismatch is the complete staleness signal even for rows
        added through the raw ``_appender`` path.  Callers must treat
        the returned list as read-only.
        """
        if self._keys is None or self._keys_len != len(self.rows):
            self._keys = {}
            self._keys_len = len(self.rows)
        entry = self._keys.get(position)
        if entry is None:
            column = [row[position] for row in self.rows]
            entry = self._keys[position] = key_array(column)
        return entry

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[object, ...]]:
        return iter(self.rows)

    def row_dict(self, row: Sequence[object]) -> dict[str, object]:
        return dict(zip(self.columns, row))

    # -- relational-ish operations ---------------------------------------

    def project(self, columns: Sequence[str]) -> "BindingTable":
        positions = [self.position(c) for c in columns]
        return BindingTable(
            columns,
            ([row[p] for p in positions] for row in self.rows),
            governor=self.governor,
        )

    def filter(
        self, predicate: Callable[[dict[str, object]], bool]
    ) -> "BindingTable":
        return self.filter_rows(
            lambda row: predicate(self.row_dict(row))
        )

    def filter_rows(
        self, predicate: Callable[[tuple[object, ...]], bool]
    ) -> "BindingTable":
        """Like :meth:`filter`, but the predicate sees the raw row tuple.

        The compiled plan nodes use this with positional accessors so
        the hot loop never materialises a per-row dict.
        """
        return BindingTable(
            self.columns,
            (row for row in self.rows if predicate(row)),
            governor=self.governor,
        )

    def extend(
        self,
        new_columns: Sequence[str],
        expander: Callable[[dict[str, object]], Iterable[Sequence[object]]],
    ) -> "BindingTable":
        """For each row, append zero or more value tuples for new columns.

        Rows for which ``expander`` yields nothing are dropped (the
        natural semantics of a dependent join).
        """
        return self.extend_rows(
            new_columns,
            lambda row: expander(self.row_dict(row)),
        )

    def extend_rows(
        self,
        new_columns: Sequence[str],
        expander: Callable[
            [tuple[object, ...]], Iterable[Sequence[object]]
        ],
    ) -> "BindingTable":
        """Like :meth:`extend`, but the expander sees the raw row tuple."""
        overlap = set(new_columns) & set(self.columns)
        if overlap:
            raise TableError(f"columns {sorted(overlap)} already exist")
        result = BindingTable(
            tuple(self.columns) + tuple(new_columns), governor=self.governor
        )
        add = result._appender()
        arity = len(new_columns)
        for row in self.rows:
            for extension in expander(row):
                extension = tuple(extension)
                if len(extension) != arity:
                    raise TableError(
                        f"expander produced arity {len(extension)},"
                        f" expected {arity}"
                    )
                add(row + extension)
        return result

    def natural_join(self, other: "BindingTable") -> "BindingTable":
        """Hash join on all shared columns (structural value equality)."""
        shared = [c for c in self.columns if other.has_column(c)]
        other_only = [c for c in other.columns if not self.has_column(c)]
        result = BindingTable(
            tuple(self.columns) + tuple(other_only), governor=self.governor
        )
        add = result._appender()
        if not shared:
            cross_positions = [other.position(c) for c in other_only]
            for left in self.rows:
                for right in other.rows:
                    add(
                        left
                        + tuple(right[p] for p in cross_positions)
                    )
            return result
        # Build/probe on memoized key columns.  ``value_key`` equality
        # implies ``values_equal`` for every value class (atoms carry
        # their type name in the key, so bool/int never alias; objects
        # and object sets key on the same structural identity that
        # ``values_equal`` compares), so no per-row verification pass
        # is needed after the hash lookup.
        shared_other = [other.position(c) for c in shared]
        shared_self = [self.position(c) for c in shared]
        right_keys = [other.key_column(p) for p in shared_other]
        left_keys = [self.key_column(p) for p in shared_self]
        # An exact (raw-string) key column only hashes compatibly with
        # another exact column; against a canonical column, lift the
        # raw strings to their canonical atom keys on the fly.
        for i, ((lk, le), (rk, re)) in enumerate(zip(left_keys, right_keys)):
            if le and not re:
                left_keys[i] = ([("atom", "str", v) for v in lk], False)
            elif re and not le:
                right_keys[i] = ([("atom", "str", v) for v in rk], False)
        positions_other_only = [other.position(c) for c in other_only]
        index: dict[object, list[tuple[object, ...]]] = {}
        if len(shared) == 1:
            rkeys = right_keys[0][0]
            for i, right in enumerate(other.rows):
                index.setdefault(rkeys[i], []).append(right)
            lkeys = left_keys[0][0]
            for i, left in enumerate(self.rows):
                for right in index.get(lkeys[i], ()):
                    add(
                        left + tuple(right[p] for p in positions_other_only)
                    )
        else:
            rcols = [keys for keys, _ in right_keys]
            for i, right in enumerate(other.rows):
                index.setdefault(
                    tuple(col[i] for col in rcols), []
                ).append(right)
            lcols = [keys for keys, _ in left_keys]
            for i, left in enumerate(self.rows):
                key = tuple(col[i] for col in lcols)
                for right in index.get(key, ()):
                    add(
                        left + tuple(right[p] for p in positions_other_only)
                    )
        return result

    def distinct(self, columns: Sequence[str] | None = None) -> "BindingTable":
        """Duplicate elimination on ``columns`` (default: all)."""
        interesting = (
            [self.position(c) for c in columns]
            if columns is not None
            else list(range(len(self.columns)))
        )
        seen: set[object] = set()
        result = BindingTable(self.columns, governor=self.governor)
        add = result._appender()
        if len(interesting) == 1:
            keys = self.key_column(interesting[0])[0]
            for i, row in enumerate(self.rows):
                key = keys[i]
                if key not in seen:
                    seen.add(key)
                    add(row)
        else:
            key_cols = [self.key_column(p)[0] for p in interesting]
            for i, row in enumerate(self.rows):
                key = tuple(col[i] for col in key_cols)
                if key not in seen:
                    seen.add(key)
                    add(row)
        return result

    # -- display (the Figure 3.6 rectangles) ------------------------------

    def render(self, max_rows: int = 20, max_width: int = 40) -> str:
        """Render as an ASCII table with a heading row."""

        def cell(value: object) -> str:
            if isinstance(value, OEMObject):
                text = to_inline(value)
            elif isinstance(value, tuple):
                text = "{" + " ".join(to_inline(o) for o in value) + "}"
            elif isinstance(value, str):
                text = f"'{value}'"
            else:
                text = str(value)
            if len(text) > max_width:
                text = text[: max_width - 3] + "..."
            return text

        header = list(self.columns)
        body = [
            [cell(v) for v in row] for row in self.rows[:max_rows]
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body), 1)
            if body
            else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in body:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"BindingTable({list(self.columns)}, {len(self.rows)} rows)"
        )

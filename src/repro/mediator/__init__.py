"""MedMaker's Mediator Specification Interpreter (MSI) — the paper's
primary contribution: view expansion, cost-based optimization, and the
datamerge engine, wrapped in the Mediator facade."""

from repro.mediator.engine import DatamergeEngine, ExecutionContext, TraceEntry
from repro.mediator.fusion import fuse_objects, has_semantic_oids
from repro.mediator.logical import LogicalDatamergeProgram, LogicalRule
from repro.mediator.mediator import Mediator, MediatorError
from repro.mediator.optimizer import (
    CostBasedOptimizer,
    PlanningError,
    STRATEGIES,
)
from repro.mediator.pipeline import (
    FusedPipelineNode,
    FusionDecision,
    fuse_plan,
)
from repro.mediator.plan import (
    ConstructorNode,
    DedupNode,
    ExternalPredNode,
    ExtractorNode,
    FilterNode,
    JoinNode,
    OBJECT_COLUMN,
    ParameterizedQueryNode,
    PhysicalPlan,
    PlanNode,
    QueryNode,
    RESULT_COLUMN,
    UnionNode,
)
from repro.mediator.statistics import SourceStatistics
from repro.mediator.tables import BindingTable, TableError
from repro.mediator.unify import Unifier, apply_mapping_to_pattern, unify_with_head
from repro.mediator.view_expander import ExpansionError, ViewExpander

__all__ = [
    "BindingTable",
    "ConstructorNode",
    "CostBasedOptimizer",
    "DatamergeEngine",
    "DedupNode",
    "ExecutionContext",
    "ExpansionError",
    "ExternalPredNode",
    "ExtractorNode",
    "FilterNode",
    "FusedPipelineNode",
    "FusionDecision",
    "JoinNode",
    "LogicalDatamergeProgram",
    "LogicalRule",
    "Mediator",
    "MediatorError",
    "OBJECT_COLUMN",
    "ParameterizedQueryNode",
    "PhysicalPlan",
    "PlanNode",
    "PlanningError",
    "QueryNode",
    "RESULT_COLUMN",
    "STRATEGIES",
    "SourceStatistics",
    "TableError",
    "TraceEntry",
    "Unifier",
    "UnionNode",
    "ViewExpander",
    "apply_mapping_to_pattern",
    "fuse_objects",
    "fuse_plan",
    "has_semantic_oids",
    "unify_with_head",
]

"""The datamerge engine: bottom-up execution of physical graphs.

Third stage of the MSI pipeline (Figure 2.5): "the datamerge engine
executes the plan and produces the required result objects".  Execution
is bottom-up over the plan's topological order, exactly as the paper
walks Figure 3.6 ("the datamerge engine executes the graph in a
bottom-up fashion; first, the lower query node is executed ...").

The :class:`ExecutionContext` carries everything nodes need: the source
registry for shipping queries, the external-function registry, an oid
generator for constructed objects, optional statistics feedback, and —
when tracing is on — the intermediate table of every node, which is how
tests and benchmarks replay the figure's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.mediator.plan import PhysicalPlan, PlanNode
from repro.mediator.tables import BindingTable
from repro.msl.ast import PatternCondition, Rule
from repro.oem.model import OEMObject
from repro.oem.oid import OidGenerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.external.registry import ExternalRegistry
    from repro.mediator.statistics import SourceStatistics
    from repro.wrappers.registry import SourceRegistry

__all__ = ["ExecutionContext", "DatamergeEngine", "TraceEntry"]


@dataclass
class TraceEntry:
    """One executed node with its output table."""

    node: PlanNode
    table: BindingTable

    def render(self) -> str:
        return f"{self.node.describe()}\n{self.table.render()}"


@dataclass
class ExecutionContext:
    """Shared state for one plan execution."""

    sources: "SourceRegistry"
    externals: "ExternalRegistry"
    oidgen: OidGenerator = field(default_factory=lambda: OidGenerator("&m"))
    statistics: "SourceStatistics | None" = None
    trace: list[TraceEntry] | None = None
    queries_sent: dict[str, int] = field(default_factory=dict)
    objects_received: dict[str, int] = field(default_factory=dict)

    def send_query(self, source_name: str, query: Rule) -> list[OEMObject]:
        """Ship ``query`` to a source, with accounting and statistics."""
        source = self.sources.resolve(source_name)
        result = source.answer(query)
        self.queries_sent[source_name] = (
            self.queries_sent.get(source_name, 0) + 1
        )
        self.objects_received[source_name] = (
            self.objects_received.get(source_name, 0) + len(result)
        )
        if self.statistics is not None:
            for condition in query.tail:
                if isinstance(condition, PatternCondition):
                    self.statistics.record(
                        source_name, condition.pattern, len(result)
                    )
        return result

    @property
    def total_queries(self) -> int:
        return sum(self.queries_sent.values())

    @property
    def total_objects(self) -> int:
        return sum(self.objects_received.values())


class DatamergeEngine:
    """Executes physical datamerge plans."""

    def __init__(self, trace: bool = False) -> None:
        self.trace_enabled = trace
        self.last_trace: list[TraceEntry] = []

    def execute(
        self, plan: PhysicalPlan, context: ExecutionContext
    ) -> BindingTable:
        """Run ``plan`` bottom-up; return the root's output table."""
        if self.trace_enabled and context.trace is None:
            context.trace = []
        outputs: dict[int, BindingTable] = {}
        for node in plan.nodes():
            inputs = [outputs[id(child)] for child in node.inputs]
            table = node.execute(inputs, context)
            outputs[id(node)] = table
            if context.trace is not None:
                context.trace.append(TraceEntry(node, table))
        if context.trace is not None:
            self.last_trace = context.trace
        return outputs[id(plan.root)]

    def execute_to_objects(
        self, plan: PhysicalPlan, context: ExecutionContext
    ) -> list[OEMObject]:
        """Run ``plan`` and return the result objects of the root table."""
        table = self.execute(plan, context)
        column = table.position(table.columns[0])
        objects: list[OEMObject] = []
        for row in table.rows:
            value = row[column]
            if isinstance(value, OEMObject):
                objects.append(value)
        return objects

    def render_trace(self) -> str:
        """The Figure 3.6 walkthrough: every node with its table."""
        return "\n\n".join(entry.render() for entry in self.last_trace)

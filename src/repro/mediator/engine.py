"""The datamerge engine: bottom-up execution of physical graphs.

Third stage of the MSI pipeline (Figure 2.5): "the datamerge engine
executes the plan and produces the required result objects".  Execution
is bottom-up over the plan's topological order, exactly as the paper
walks Figure 3.6 ("the datamerge engine executes the graph in a
bottom-up fashion; first, the lower query node is executed ...").

The :class:`ExecutionContext` carries everything nodes need: the source
registry for shipping queries, the external-function registry, an oid
generator for constructed objects, optional statistics feedback, and —
when tracing is on — the intermediate table of every node, which is how
tests and benchmarks replay the figure's tables.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING

from repro.exec.dispatcher import TaskScope, current_scope, scope_active
from repro.mediator.plan import PhysicalPlan, PlanNode, QueryNode
from repro.mediator.tables import BindingTable
from repro.msl.ast import PatternCondition, Rule
from repro.obs.span import Span, status_of_exception
from repro.oem.model import OEMObject
from repro.oem.oid import OidGenerator
from repro.reliability.deadline import call_allowance_scope
from repro.reliability.health import SourceWarning
from repro.reliability.hedging import current_hedge_role
from repro.wrappers.base import SourceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.dispatcher import SourceDispatcher
    from repro.exec.profile import Profiler
    from repro.external.registry import ExternalRegistry
    from repro.governor.budget import QueryGovernor
    from repro.mediator.statistics import SourceStatistics
    from repro.msl.compile import CompileCache
    from repro.obs.insight import QueryInsight
    from repro.obs.span import Tracer
    from repro.obs.telemetry import Telemetry
    from repro.reliability.deadline import DeadlineSlicer
    from repro.reliability.resilient import ResilienceManager
    from repro.wrappers.registry import SourceRegistry

__all__ = ["ExecutionContext", "DatamergeEngine", "TraceEntry"]


@dataclass
class TraceEntry:
    """One executed node with its output table.

    ``attempts`` counts the source calls made while the node ran
    (retries included); ``latency`` is the clock time those calls took.
    Both stay zero for nodes that never touch a source.
    """

    node: PlanNode
    table: BindingTable
    attempts: int = 0
    latency: float = 0.0

    def render(self) -> str:
        return f"{self.node.describe()}\n{self.table.render()}"


@dataclass
class ExecutionContext:
    """Shared state for one plan execution."""

    sources: "SourceRegistry"
    externals: "ExternalRegistry"
    oidgen: OidGenerator = field(default_factory=lambda: OidGenerator("&m"))
    statistics: "SourceStatistics | None" = None
    trace: list[TraceEntry] | None = None
    queries_sent: dict[str, int] = field(default_factory=dict)
    objects_received: dict[str, int] = field(default_factory=dict)
    resilience: "ResilienceManager | None" = None
    on_source_failure: str = "fail"
    warnings: list[SourceWarning] = field(default_factory=list)
    attempts_made: int = 0
    source_latency: float = 0.0
    governor: "QueryGovernor | None" = None
    dispatcher: "SourceDispatcher | None" = None
    compiler: "CompileCache | None" = None
    profiler: "Profiler | None" = None
    # telemetry: None when disabled, so every emission site is one
    # ``is not None`` check on the hot path; per-source call counts are
    # buffered in queries_sent/objects_received and rolled into the
    # registry once per run by flush_telemetry()
    tracer: "Tracer | None" = None
    telemetry: "Telemetry | None" = None
    # deadline propagation: when a slicer is attached, every source
    # call runs under a per-call time allowance (its stage's share of
    # the remaining wall-clock budget), enforced by the resilient layer
    slicer: "DeadlineSlicer | None" = None
    # brownout rung 3: run this query's stages inline even when the
    # dispatcher has worker threads — per-query fan-out competes with
    # *other* queries for the pool under overload (caching, dedup, and
    # bulkheads still apply through dispatcher.fetch)
    force_sequential: bool = False
    # stage number of the node currently executing (set by the engine
    # when a deadline slicer is attached); a fused pipeline node reads
    # it as the base for its constituents' per-stage slicer advances
    stage_base: int = 1
    # semi-join shipping: when on, a parameterized-query batch against
    # a batch-capable source ships one value filter per target instead
    # of one probe per distinct tuple; above bloom_threshold distinct
    # values per parameter the filter ships as a Bloom digest (the
    # returned superset is re-checked exactly at the mediator)
    semijoin: bool = True
    bloom_threshold: int = 64
    # sharding/semi-join accounting for explain() and telemetry
    semijoin_batches: int = 0
    semijoin_probes: int = 0
    shards_scanned: int = 0
    shards_pruned: int = 0
    # plan observability: when an EXPLAIN ANALYZE insight rides along,
    # every executed operator folds its rows/time into it; q-errors on
    # annotated nodes always feed statistics + telemetry, insight or not
    insight: "QueryInsight | None" = None
    # mid-query adaptivity: an operator whose actual rows exceed its
    # estimate by this factor raises a misestimate event, records a
    # correction ratio for its (source, label) bucket, and lets the
    # staged executor re-rank not-yet-dispatched stages; 0 disables
    misestimate_factor: float = 4.0
    misestimate_events: int = 0
    estimate_corrections: dict[tuple[str, str], float] = field(
        default_factory=dict
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False
    )

    def record_semijoin(self, batches: int, probes: int) -> None:
        """Account one batched shipping round: ``batches`` filters went
        to the wire in place of ``probes`` distinct per-tuple queries."""
        with self._lock:
            self.semijoin_batches += batches
            self.semijoin_probes += probes

    def record_shard_fanout(self, scanned: int, pruned: int) -> None:
        """Account one sharded leaf fan-out (shards probed vs pruned)."""
        with self._lock:
            self.shards_scanned += scanned
            self.shards_pruned += pruned

    @property
    def semijoin_probes_saved(self) -> int:
        """Wire queries avoided by batching: distinct probes that would
        have shipped individually, minus the filters actually sent."""
        return max(0, self.semijoin_probes - self.semijoin_batches)

    def observe_node(
        self,
        node: PlanNode,
        rows_in: int,
        rows_out: int,
        seconds: float,
        latency: float = 0.0,
    ) -> None:
        """Fold one executed operator into the observability loop.

        Three consumers, each optional: the EXPLAIN ANALYZE insight
        (rows/time per node), the q-error trackers (statistics +
        telemetry, for nodes carrying an optimizer estimate key), and
        the misestimate detector.  Unannotated nodes without an insight
        attached make this a cheap no-op, so the hook is safe on every
        operator of every run.
        """
        if self.insight is not None:
            self.insight.observe_node(
                node, rows_in, rows_out, seconds, latency
            )
        estimated = node.estimated_rows
        if estimated is None:
            return
        key = node.estimate_key
        if key is not None:
            from repro.mediator.statistics import qerror

            error = qerror(estimated, rows_out)
            source, label, kind = key
            if self.statistics is not None:
                self.statistics.record_qerror(source, label, kind, error)
            if self.telemetry is not None:
                self.telemetry.record_qerror(source, label, kind, error)
        factor = self.misestimate_factor
        if factor and rows_out > max(estimated, 0.5) * factor:
            self._record_misestimate(node, estimated, rows_out)

    def _record_misestimate(
        self, node: PlanNode, estimated: float, actual: int
    ) -> None:
        """One underestimate big enough to react to mid-query."""
        correction = actual / max(estimated, 0.5)
        key = node.estimate_key
        with self._lock:
            self.misestimate_events += 1
            if key is not None:
                bucket = (key[0], key[1])
                if correction > self.estimate_corrections.get(bucket, 1.0):
                    self.estimate_corrections[bucket] = correction
        if self.telemetry is not None:
            self.telemetry.record_misestimate(key[0] if key else "")
        tracer = self.tracer
        if tracer is not None:
            span = tracer.start_span("misestimate", type(node).__name__)
            span.set_attribute("estimated_rows", estimated)
            span.set_attribute("actual_rows", actual)
            span.set_attribute("correction", correction)
            tracer.finish_span(span)
        if self.insight is not None:
            if key is not None:
                action = (
                    f"recorded {correction:.1f}x correction for"
                    f" {key[0]}/{key[1]}; undispatched stages re-rank"
                    " against it"
                )
            else:
                action = "noted (no statistics bucket to correct)"
            self.insight.record_misestimate(node, estimated, actual, action)

    def corrected_estimate(self, node: PlanNode) -> "float | None":
        """``estimated_rows`` adjusted by any recorded correction."""
        estimated = node.estimated_rows
        if estimated is None:
            return None
        key = node.estimate_key
        if key is None:
            return estimated
        with self._lock:
            ratio = self.estimate_corrections.get((key[0], key[1]), 1.0)
        return estimated * ratio

    def send_query(self, source_name: str, query: Rule) -> list[OEMObject]:
        """Ship ``query`` to a source, with accounting and statistics.

        With a :class:`ResilienceManager` attached, the source is
        called through its resilient wrapper (timeout + retry +
        breaker).  In ``degrade`` mode a source that still fails
        contributes an empty answer and a :class:`SourceWarning`
        instead of aborting the whole datamerge run.

        With a :class:`QueryGovernor` attached, the run-level deadline
        and cancellation token are checked *before* the call is shipped
        (so the engine cannot burn unbounded time between calls), and
        the answer passes through the governor's sanitizer before it
        may enter a binding table.

        With a :class:`~repro.exec.dispatcher.SourceDispatcher`
        attached (and active), the call routes through the answer
        cache and the single-flight dedup layer; only cache misses
        without an identical in-flight request actually ship.
        """
        if self.governor is not None and not self.governor.allow_source_call(
            source_name
        ):
            # truncate mode past the deadline: contribute nothing,
            # warned once by the governor
            return []
        dispatcher = self.dispatcher
        if dispatcher is not None and dispatcher.active:
            if dispatcher.hedging is not None and current_scope() is None:
                # hedged attempts record into fresh scopes and the
                # dispatcher merges the winner's back into the current
                # one — guarantee a scope exists (the sequential path
                # has none) so winner warnings aren't dropped
                scope = TaskScope()
                with scope_active(scope):
                    result = dispatcher.fetch(
                        source_name,
                        str(query),
                        lambda: self._ship(source_name, query),
                    )
                self.warnings.extend(scope.warnings)
                return result
            return dispatcher.fetch(
                source_name,
                str(query),
                lambda: self._ship(source_name, query),
            )
        return self._ship(source_name, query)[0]

    def _ship(
        self, source_name: str, query: Rule
    ) -> tuple[list[OEMObject], bool]:
        """One source call under its deadline slice (see `_ship_now`)."""
        slicer = self.slicer
        if slicer is None:
            return self._ship_now(source_name, query)
        with call_allowance_scope(slicer.call_allowance(source_name)):
            return self._ship_now(source_name, query)

    def _ship_now(
        self, source_name: str, query: Rule
    ) -> tuple[list[OEMObject], bool]:
        """The real source call (reliability-wrapped), with accounting.

        Returns ``(answer, cacheable)`` — a degraded answer is an
        absence, not an observation, so it is never cacheable.  Safe to
        run on a dispatcher worker thread: run-wide counters mutate
        under the context lock, and per-call warnings/attempts go to
        the active :class:`TaskScope` (when one is installed) so the
        coordinator can merge them back in deterministic order.
        """
        source = self.sources.resolve(source_name)
        resilient = None
        if self.resilience is not None:
            source = resilient = self.resilience.wrap(source)
        scope = current_scope()
        sink = scope.warnings if scope is not None else self.warnings
        tracer = self.tracer
        span = (
            tracer.start_span("source-call", source_name)
            if tracer is not None
            else None
        )
        degraded = False
        try:
            result = source.answer(query)
            if self.governor is not None:
                # strict sanitation raises MalformedAnswerError, which
                # is a SourceError: degrade mode treats a malformed
                # source like an unavailable one
                result = self.governor.sanitize_answer(
                    source_name, result, sink=sink
                )
        except SourceError as exc:
            if self.on_source_failure != "degrade":
                if span is not None:
                    span.set_attribute("error", type(exc).__name__)
                    tracer.finish_span(span, status="error")
                raise
            degraded = True
            attempts = (
                resilient.last_call_stats()[0] if resilient is not None else 1
            )
            sink.append(
                SourceWarning(
                    source=source_name,
                    message=str(exc),
                    attempts=attempts,
                    error=type(exc).__name__,
                )
            )
            result = []
        if resilient is not None:
            attempts, elapsed = resilient.last_call_stats()
        else:
            attempts, elapsed = 1, 0.0
        if span is not None:
            span.set_attribute("attempts", attempts)
            span.set_attribute("objects", len(result))
            span.set_attribute("cacheable", not degraded)
            role = current_hedge_role()
            if role is not None:
                span.set_attribute("hedge_role", role)
            if degraded:
                span.set_attribute("degraded", True)
            if resilient is not None:
                span.set_attribute("breaker", resilient.breaker.state)
            tracer.finish_span(
                span, status="degraded" if degraded else "ok"
            )
        if scope is not None:
            scope.attempts += attempts
            scope.latency += elapsed
        with self._lock:
            self.attempts_made += attempts
            self.source_latency += elapsed
            self.queries_sent[source_name] = (
                self.queries_sent.get(source_name, 0) + 1
            )
            self.objects_received[source_name] = (
                self.objects_received.get(source_name, 0) + len(result)
            )
            if (
                self.statistics is not None
                and not degraded
                and not getattr(query, "is_semijoin", False)
            ):
                # degraded answers are absences, not observations —
                # feeding them to the optimizer would teach it the
                # source is empty.  Semi-join batches are skipped too:
                # one answer spans many probe tuples, so recording it
                # against the pattern would poison the per-probe
                # cardinality estimate.
                for condition in query.tail:
                    if isinstance(condition, PatternCondition):
                        self.statistics.record(
                            source_name, condition.pattern, len(result)
                        )
        return result, not degraded

    def flush_telemetry(self) -> None:
        """Roll this run's buffered source-call totals into the registry.

        ``_ship`` buffers per-source call and object counts in
        ``queries_sent`` / ``objects_received`` (under the context lock
        it already takes); flushing once per run costs two counter
        increments per *source* instead of two per *call* — the
        difference between ~2% and ~0 overhead on fan-out queries.
        Cache hits never reach ``_ship``, so the flushed totals count
        exactly the queries that shipped.
        """
        if self.telemetry is not None and self.queries_sent:
            with self._lock:
                calls = dict(self.queries_sent)
                received = dict(self.objects_received)
            self.telemetry.record_source_calls(calls, received)
        if self.telemetry is not None and (
            self.semijoin_batches or self.shards_scanned
        ):
            with self._lock:
                batches = self.semijoin_batches
                saved = self.semijoin_probes_saved
                pruned = self.shards_pruned
            self.telemetry.record_sharding(batches, saved, pruned)

    @property
    def total_queries(self) -> int:
        return sum(self.queries_sent.values())

    @property
    def total_objects(self) -> int:
        return sum(self.objects_received.values())


def _traced_execute(
    node: PlanNode,
    inputs: list[BindingTable],
    context: ExecutionContext,
    stage_span: "Span | None",
) -> BindingTable:
    """Run one node inside a plan-node span.

    The span is current while the node executes, so source-call,
    pattern-match and external-predicate spans emitted underneath
    parent to it — including spans from dispatcher workers, which
    inherit the node span through their copied context.  With
    ``stage_span=None`` the parent is taken from the calling context
    (the stage span a worker inherited).  Untraced runs fall straight
    through to ``node.execute``.
    """
    tracer = context.tracer
    if tracer is None:
        return node.execute(inputs, context)
    span = tracer.start_span(
        "plan-node", type(node).__name__, parent=stage_span
    )
    try:
        with tracer.use(span):
            table = node.execute(inputs, context)
    except BaseException as exc:
        tracer.finish_span(span, status=status_of_exception(exc))
        raise
    span.set_attribute("rows_out", len(table))
    tracer.finish_span(span)
    return table


def _rerank_stage(
    stage_index: int,
    stage: list[PlanNode],
    context: ExecutionContext,
) -> list[PlanNode]:
    """Re-order a not-yet-dispatched stage after a misestimate.

    Within a stage every node is independent of the others, so order
    only affects dispatch sequence (and warning interleaving), never
    the answer.  Cheapest-corrected-estimate-first mirrors the
    optimizer's smallest-first join ordering; nodes without estimates
    keep their relative position at the end.  Runs only when at least
    one node in the stage is touched by a recorded correction, and
    records the decision into the analyze output when the order
    actually changes.
    """
    if len(stage) < 2:
        return stage
    affected = False
    for node in stage:
        key = node.estimate_key
        if key is not None and (key[0], key[1]) in context.estimate_corrections:
            affected = True
            break
    if not affected:
        return stage
    estimates = [context.corrected_estimate(node) for node in stage]
    order = sorted(
        range(len(stage)),
        key=lambda i: (estimates[i] is None, estimates[i] or 0.0, i),
    )
    if order == list(range(len(stage))):
        return stage
    reranked = [stage[i] for i in order]
    insight = context.insight
    if insight is not None:
        insight.record_rerank(
            stage_index,
            [insight.key_of(n) or type(n).__name__ for n in stage],
            [insight.key_of(n) or type(n).__name__ for n in reranked],
        )
    return reranked


class DatamergeEngine:
    """Executes physical datamerge plans."""

    def __init__(self, trace: bool = False) -> None:
        self.trace_enabled = trace
        self.last_trace: list[TraceEntry] = []

    def execute(
        self, plan: PhysicalPlan, context: ExecutionContext
    ) -> BindingTable:
        """Run ``plan`` bottom-up; return the root's output table.

        With a governor attached, every node boundary is a cooperative
        checkpoint: the cancellation token and the run deadline are
        checked before each node executes, and the governor learns
        which node is running so budget violations can name it.
        """
        if self.trace_enabled and context.trace is None:
            context.trace = []
        governor = context.governor
        if governor is not None:
            governor.start()
        slicer = context.slicer
        if slicer is not None:
            # depth() counts every constituent of a fused pipeline
            # node, so the slicer sees the same stage count with or
            # without operator fusion
            slicer.begin_plan(plan.depth())
        dispatcher = context.dispatcher
        if (
            dispatcher is not None
            and dispatcher.parallel
            and not context.force_sequential
        ):
            return self._execute_staged(plan, context, dispatcher)
        outputs: dict[int, BindingTable] = {}
        tracer = context.tracer
        # stage spans are *logical* here: the sequential executor walks
        # nodes in DFS order (stages interleave), so each stage's span
        # opens at its first node and closes when the plan finishes —
        # the tree shape matches the staged executor's, not the timing
        stage_spans: dict[int, Span] = {}
        stage_of: dict[int, int] = {}
        if tracer is not None or slicer is not None:
            for index, stage in plan.stage_starts():
                for node in stage:
                    stage_of[id(node)] = index
        try:
            for node in plan.nodes():
                if governor is not None:
                    governor.enter_node(node)
                if slicer is not None:
                    index = stage_of[id(node)]
                    slicer.enter_stage(index)
                    context.stage_base = index
                inputs = [outputs[id(child)] for child in node.inputs]
                attempts_before = context.attempts_made
                latency_before = context.source_latency
                rows_in = sum(len(table) for table in inputs)
                profiler = context.profiler
                started = perf_counter()
                stage_span = None
                if tracer is not None:
                    index = stage_of[id(node)]
                    stage_span = stage_spans.get(index)
                    if stage_span is None:
                        stage_span = stage_spans[index] = tracer.start_span(
                            "plan-stage", f"stage-{index}"
                        )
                table = _traced_execute(node, inputs, context, stage_span)
                elapsed = perf_counter() - started
                if profiler is not None:
                    profiler.record_node(
                        type(node).__name__,
                        len(table),
                        elapsed,
                        context.source_latency - latency_before,
                    )
                context.observe_node(
                    node,
                    rows_in,
                    len(table),
                    elapsed,
                    context.source_latency - latency_before,
                )
                outputs[id(node)] = table
                if context.trace is not None:
                    context.trace.append(
                        TraceEntry(
                            node,
                            table,
                            attempts=context.attempts_made - attempts_before,
                            latency=context.source_latency - latency_before,
                        )
                    )
        except BaseException as exc:
            if tracer is not None:
                status = status_of_exception(exc)
                for span in stage_spans.values():
                    if span.end is None:
                        tracer.finish_span(span, status=status)
            raise
        if tracer is not None:
            for span in stage_spans.values():
                tracer.finish_span(span)
        if context.trace is not None:
            self.last_trace = context.trace
        return outputs[id(plan.root)]

    def _execute_staged(
        self,
        plan: PhysicalPlan,
        context: ExecutionContext,
        dispatcher: "SourceDispatcher",
    ) -> BindingTable:
        """Stage-parallel execution: fan out each stage's leaf queries.

        Nodes are grouped by topological depth; within a stage every
        node is independent of the others.  Leaf :class:`QueryNode`\\ s
        of a stage run concurrently on the dispatcher's worker pool;
        everything else (including :class:`ParameterizedQueryNode`,
        which fans out its own per-tuple batch) runs inline on this
        thread, so only the coordinating thread ever blocks on futures
        — no nested-pool deadlock.  Warnings and trace figures are
        merged back in topological order, which keeps parallel runs'
        reporting deterministic.
        """
        governor = context.governor
        tracer = context.tracer
        slicer = context.slicer
        outputs: dict[int, BindingTable] = {}
        entries: dict[int, TraceEntry] = {}
        for stage_index, stage in plan.stage_starts():
            if context.estimate_corrections:
                stage = _rerank_stage(stage_index, stage, context)
            if slicer is not None:
                slicer.enter_stage(stage_index)
                context.stage_base = stage_index
            stage_span = (
                tracer.start_span("plan-stage", f"stage-{stage_index}")
                if tracer is not None
                else None
            )
            try:
                self._run_stage(
                    stage, context, dispatcher, outputs, entries, stage_span
                )
            except BaseException as exc:
                if stage_span is not None and stage_span.end is None:
                    tracer.finish_span(
                        stage_span, status=status_of_exception(exc)
                    )
                raise
            if stage_span is not None:
                tracer.finish_span(stage_span)
        if context.trace is not None:
            context.trace.extend(
                entries[id(node)]
                for node in plan.nodes()
                if id(node) in entries
            )
            self.last_trace = context.trace
        return outputs[id(plan.root)]

    @staticmethod
    def _run_stage(
        stage: list[PlanNode],
        context: ExecutionContext,
        dispatcher: "SourceDispatcher",
        outputs: dict[int, BindingTable],
        entries: dict[int, TraceEntry],
        stage_span: "Span | None",
    ) -> None:
        """Run one stage: fan out its leaf queries, inline the rest.

        When tracing, the dispatcher submission happens inside the
        stage span's context, so worker threads (which run tasks in a
        copied :mod:`contextvars` context) parent their plan-node spans
        to the stage automatically.
        """
        governor = context.governor
        tracer = context.tracer
        leaves = [node for node in stage if isinstance(node, QueryNode)]
        leaf_ids = {id(node) for node in leaves}
        if leaves:
            if governor is not None:
                for node in leaves:
                    governor.enter_node(node)
            thunks = [
                (lambda n=node: _traced_execute(n, [], context, None))
                for node in leaves
            ]
            if tracer is not None:
                with tracer.use(stage_span):
                    outcomes = dispatcher.run_tasks(thunks)
            else:
                outcomes = dispatcher.run_tasks(thunks)
            first_error: BaseException | None = None
            for node, outcome in zip(leaves, outcomes):
                context.warnings.extend(outcome.scope.warnings)
                if outcome.error is not None:
                    if first_error is None:
                        first_error = outcome.error
                    continue
                table = outcome.value
                assert isinstance(table, BindingTable)
                outputs[id(node)] = table
                if context.profiler is not None:
                    context.profiler.record_node(
                        type(node).__name__,
                        len(table),
                        outcome.scope.latency,
                        outcome.scope.latency,
                    )
                context.observe_node(
                    node,
                    0,
                    len(table),
                    outcome.scope.latency,
                    outcome.scope.latency,
                )
                if context.trace is not None:
                    entries[id(node)] = TraceEntry(
                        node,
                        table,
                        attempts=outcome.scope.attempts,
                        latency=outcome.scope.latency,
                    )
            if first_error is not None:
                raise first_error
        for node in stage:
            if id(node) in leaf_ids:
                continue
            if governor is not None:
                governor.enter_node(node)
            inputs = [outputs[id(child)] for child in node.inputs]
            rows_in = sum(len(table) for table in inputs)
            scope = TaskScope()
            profiler = context.profiler
            started = perf_counter()
            with scope_active(scope):
                table = _traced_execute(node, inputs, context, stage_span)
            elapsed = perf_counter() - started
            if profiler is not None:
                profiler.record_node(
                    type(node).__name__, len(table), elapsed, scope.latency
                )
            context.observe_node(
                node, rows_in, len(table), elapsed, scope.latency
            )
            context.warnings.extend(scope.warnings)
            outputs[id(node)] = table
            if context.trace is not None:
                entries[id(node)] = TraceEntry(
                    node,
                    table,
                    attempts=scope.attempts,
                    latency=scope.latency,
                )

    def execute_to_objects(
        self, plan: PhysicalPlan, context: ExecutionContext
    ) -> list[OEMObject]:
        """Run ``plan`` and return the result objects of the root table."""
        table = self.execute(plan, context)
        column = table.position(table.columns[0])
        objects: list[OEMObject] = []
        for row in table.rows:
            value = row[column]
            if isinstance(value, OEMObject):
                objects.append(value)
        return objects

    def render_trace(self) -> str:
        """The Figure 3.6 walkthrough: every node with its table."""
        return "\n\n".join(entry.render() for entry in self.last_trace)

"""Deadline propagation and adaptive per-source timeouts.

A :class:`~repro.governor.budget.QueryBudget` deadline bounds the whole
run, but on its own it cannot stop one straggling source call from
consuming the entire budget: the governor only checks *between* calls.
This module slices the run deadline into per-stage and per-call time
allowances and derives per-source timeouts from observed latency, so a
stage never spends the whole query budget waiting on one straggler:

* :class:`LatencyTracker` — a small thread-safe sliding window of
  latency samples per source with nearest-rank percentiles (the same
  estimator the health registry uses), for components that observe
  latency without a :class:`~repro.reliability.health.HealthRegistry`;
* :class:`AdaptiveTimeoutPolicy` — replaces a static source timeout
  with ``multiplier x pXX`` of the source's observed latency (from the
  health registry's window when available, its own tracker otherwise),
  falling back to the static value while the window is cold;
* :class:`DeadlineSlicer` — splits the governor's remaining wall-clock
  budget evenly across the plan stages still to run
  (``remaining / stages_left``) and caps each source call at
  ``min(stage share, adaptive timeout)``;
* :func:`call_allowance_scope` — a :mod:`contextvars` carrier so the
  allowance computed at dispatch reaches the resilient wrapper deep in
  a worker thread without threading it through every call signature.

Everything reads time from the injectable clock the governor and
resilience layer already share, so slicing is exactly testable with a
:class:`~repro.reliability.clock.ManualClock`.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.governor.budget import QueryGovernor
    from repro.reliability.health import HealthRegistry

__all__ = [
    "LatencyTracker",
    "AdaptiveTimeoutConfig",
    "AdaptiveTimeoutPolicy",
    "DeadlineSlicer",
    "call_allowance_scope",
    "current_call_allowance",
]

#: The per-call time allowance active on this thread of control
#: (None = unsliced: only static/adaptive timeouts apply).
_ALLOWANCE: contextvars.ContextVar[float | None] = contextvars.ContextVar(
    "repro_call_allowance", default=None
)


def current_call_allowance() -> float | None:
    """The wall-clock seconds the current source call may spend."""
    return _ALLOWANCE.get()


@contextlib.contextmanager
def call_allowance_scope(seconds: float | None) -> Iterator[None]:
    """Install a per-call time allowance for a ``with`` block.

    The allowance travels by contextvar, so it survives the dispatcher
    handing the call to a worker (workers run in a copied context) and
    reaches the resilient wrapper without signature plumbing.
    """
    token = _ALLOWANCE.set(seconds)
    try:
        yield
    finally:
        _ALLOWANCE.reset(token)


def _nearest_rank(ordered: list[float], quantile: float) -> float:
    """Nearest-rank percentile over a sorted sample list."""
    rank = max(1, -(-int(quantile * 10000) * len(ordered) // 10000))
    rank = min(rank, len(ordered))
    return ordered[rank - 1]


class LatencyTracker:
    """Thread-safe per-source sliding windows of latency samples.

    The estimator matches
    :meth:`~repro.reliability.health.SourceHealth.latency_percentile`
    (nearest rank on the sorted window) so figures agree wherever both
    are reported.
    """

    def __init__(self, window: int = 256) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self._samples: dict[str, list[float]] = {}
        self._lock = threading.Lock()

    def observe(self, source: str, seconds: float) -> None:
        with self._lock:
            samples = self._samples.setdefault(source, [])
            samples.append(seconds)
            if len(samples) > self.window:
                del samples[: len(samples) - self.window]

    def count(self, source: str) -> int:
        with self._lock:
            return len(self._samples.get(source, ()))

    def quantile(
        self, source: str, quantile: float, min_samples: int = 1
    ) -> float | None:
        """The ``quantile`` latency, or ``None`` while the window is
        colder than ``min_samples``."""
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        with self._lock:
            samples = self._samples.get(source)
            if not samples or len(samples) < max(1, min_samples):
                return None
            ordered = sorted(samples)
        return _nearest_rank(ordered, quantile)


@dataclass(frozen=True)
class AdaptiveTimeoutConfig:
    """Knobs for latency-derived per-source timeouts.

    A warm source's timeout is ``multiplier x`` its observed
    ``quantile`` latency, floored at ``min_timeout``; until
    ``min_samples`` latencies have been observed the policy abstains
    and the static timeout (if any) applies unchanged.
    """

    quantile: float = 0.99
    multiplier: float = 3.0
    min_timeout: float = 0.001
    min_samples: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.quantile <= 1.0:
            raise ValueError(
                f"quantile must be in [0, 1], got {self.quantile}"
            )
        if self.multiplier <= 0:
            raise ValueError("multiplier must be positive")
        if self.min_timeout <= 0:
            raise ValueError("min_timeout must be positive")
        if self.min_samples < 1:
            raise ValueError("min_samples must be at least 1")


class AdaptiveTimeoutPolicy:
    """Per-source timeouts tracked from live latency percentiles.

    Prefers the shared :class:`HealthRegistry` window (every resilient
    attempt lands there) and falls back to its own
    :class:`LatencyTracker`, which callers without a health registry
    (the hedge coordinator) feed directly via :meth:`observe`.
    """

    def __init__(
        self,
        config: AdaptiveTimeoutConfig | None = None,
        health: "HealthRegistry | None" = None,
    ) -> None:
        self.config = config or AdaptiveTimeoutConfig()
        self.health = health
        self.tracker = LatencyTracker()

    def observe(self, source: str, seconds: float) -> None:
        self.tracker.observe(source, seconds)

    def quantile_for(
        self, source: str, quantile: float | None = None
    ) -> float | None:
        """The observed latency quantile, or ``None`` while cold."""
        config = self.config
        q = config.quantile if quantile is None else quantile
        if self.health is not None:
            value = self.health.latency_quantile(
                source, q, min_samples=config.min_samples
            )
            if value is not None:
                return value
        return self.tracker.quantile(
            source, q, min_samples=config.min_samples
        )

    def timeout_for(self, source: str) -> float | None:
        """The adaptive timeout for ``source``, or ``None`` while cold
        (cold ⇒ the caller's static timeout applies unchanged)."""
        value = self.quantile_for(source)
        if value is None or value <= 0:
            return None
        return max(self.config.min_timeout, self.config.multiplier * value)

    def describe(self) -> str:
        config = self.config
        return (
            f"adaptive timeouts: {config.multiplier:g} x p"
            f"{config.quantile * 100:g} (warm after"
            f" {config.min_samples} sample(s),"
            f" floor {config.min_timeout:g}s)"
        )


class DeadlineSlicer:
    """Slices a governor's wall-clock deadline across plan stages.

    The engine announces the plan shape with :meth:`begin_plan` and
    calls :meth:`enter_stage` as execution advances; every source call
    asks :meth:`call_allowance` for its share:
    ``remaining_budget / stages_left``, further capped by the adaptive
    timeout when the source's latency window is warm — so one call can
    never monopolize time that later stages still need, and a call to a
    historically-fast source is cut off long before the stage share.

    Stage bookkeeping is written only by the engine's coordinating
    thread; worker threads just read it, and a stale read merely yields
    the previous (more conservative) stage's share.
    """

    def __init__(
        self,
        governor: "QueryGovernor",
        adaptive: AdaptiveTimeoutPolicy | None = None,
        min_allowance: float = 0.001,
    ) -> None:
        deadline = governor.budget.deadline
        if deadline is None:
            raise ValueError("DeadlineSlicer needs a budget with a deadline")
        if min_allowance <= 0:
            raise ValueError("min_allowance must be positive")
        self.governor = governor
        self.deadline = deadline
        self.adaptive = adaptive
        self.min_allowance = min_allowance
        self._total_stages = 1
        self._stage = 1

    def begin_plan(self, total_stages: int) -> None:
        """Announce a plan about to execute with ``total_stages`` stages."""
        self._total_stages = max(1, total_stages)
        self._stage = 1

    def enter_stage(self, index: int) -> None:
        """Advance to 1-based stage ``index`` of the announced plan.

        Monotonic: a DFS executor visits nodes with stages interleaved,
        and progress must never move backwards (:meth:`begin_plan`
        resets it for the next plan).
        """
        self._stage = min(max(self._stage, index), self._total_stages)

    def remaining(self) -> float:
        """Wall-clock seconds left before the run deadline."""
        return max(0.0, self.deadline - self.governor.elapsed)

    def stages_left(self) -> int:
        return max(1, self._total_stages - self._stage + 1)

    def stage_allowance(self) -> float:
        """The current stage's even share of the remaining budget."""
        return self.remaining() / self.stages_left()

    def call_allowance(self, source: str) -> float:
        """Seconds one call to ``source`` may spend right now."""
        allowance = self.stage_allowance()
        if self.adaptive is not None:
            hint = self.adaptive.timeout_for(source)
            if hint is not None:
                allowance = min(allowance, hint)
        return max(self.min_allowance, allowance)

    def describe(self) -> str:
        text = (
            f"deadline slicing: {self.deadline:g}s over"
            f" {self._total_stages} stage(s)"
        )
        if self.adaptive is not None:
            text += f"; {self.adaptive.describe()}"
        return text

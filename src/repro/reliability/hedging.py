"""Hedged source requests: speculative duplicates for stragglers.

The tail of a fan-out query is set by its slowest source call.  When a
call has been outstanding longer than the source's typical latency
(~p95), the cheapest defence is to issue a *second*, identical call and
take whichever answer lands first — "the tail at scale" hedging.  The
:class:`HedgeCoordinator` implements it for the dispatcher:

* the primary attempt is started on the coordinator's own small pool
  (never the dispatcher's worker pool — its workers are the *callers*
  here, and hedging from the same bounded pool would deadlock it);
* after an adaptive delay (``multiplier x p`` of the source's observed
  latency from the shared health registry, static ``delay`` while
  cold) one hedge is started for a still-unresolved call;
* first *successful* result wins; the loser is cancelled
  cooperatively — an abandon :class:`threading.Event` travels by
  contextvar into the loser's resilient wrapper, which checks it
  between attempts and before backoff sleeps and bails out with
  :class:`HedgeAbandoned` (a thread cannot be aborted mid-call, so
  cancellation is cooperative and post-hoc, like the timeout layer);
* if the first completion *failed*, the other attempt keeps the call
  alive — hedging doubles as a second chance for transient faults;
* attempts, wins, cancellations, and still-outstanding losers are
  counted for spans, metrics, ``health_snapshot()`` and ``explain()``.

Determinism contract: a hedge is a *duplicate* of an idempotent read —
with deterministic sources both attempts produce the same answer, so
which one wins never changes the result set, only its latency.  Only
the winner's answer is returned (and cached, once, by the dispatcher);
the loser's is discarded, so hedges never double-count or double-cache.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, TypeVar

from repro.reliability.clock import Clock, MonotonicClock
from repro.reliability.deadline import LatencyTracker
from repro.wrappers.base import SourceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.reliability.health import HealthRegistry

__all__ = [
    "HedgeAbandoned",
    "HedgePolicy",
    "HedgeCoordinator",
    "abandon_scope",
    "current_abandon",
    "current_hedge_role",
]

T = TypeVar("T")

#: The abandon event of the hedged call this thread is serving
#: (None outside hedged attempts).  The resilient wrapper polls it.
_ABANDON: contextvars.ContextVar[threading.Event | None] = (
    contextvars.ContextVar("repro_hedge_abandon", default=None)
)

#: Which attempt of a hedged call this thread is: "primary", "hedge",
#: or None outside hedged attempts.  Spans tag hedge attempts with it.
_ROLE: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_hedge_role", default=None
)


def current_abandon() -> threading.Event | None:
    """The abandon event the current hedged attempt should poll."""
    return _ABANDON.get()


def current_hedge_role() -> str | None:
    """``"primary"`` / ``"hedge"`` inside a hedged attempt, else None."""
    return _ROLE.get()


@contextlib.contextmanager
def abandon_scope(
    event: threading.Event, role: str
) -> Iterator[None]:
    """Install the abandon event and role for one attempt's extent."""
    abandon_token = _ABANDON.set(event)
    role_token = _ROLE.set(role)
    try:
        yield
    finally:
        _ROLE.reset(role_token)
        _ABANDON.reset(abandon_token)


class HedgeAbandoned(SourceError):
    """A hedged attempt stopped because the other attempt already won."""

    def __init__(self, source: str) -> None:
        super().__init__(
            f"hedged call to {source!r} abandoned: the other attempt won"
        )
        self.source = source


@dataclass(frozen=True)
class HedgePolicy:
    """When to issue a speculative duplicate of a source call.

    The hedge fires after ``multiplier x`` the source's observed
    ``quantile`` latency (from the health registry's sliding window, or
    the coordinator's own tracker), floored at ``min_delay``; until
    ``min_samples`` latencies are known the static ``delay`` applies.
    ``max_workers`` bounds the coordinator's attempt pool — both
    attempts of every concurrently hedged call run there.
    """

    delay: float = 0.05
    quantile: float = 0.95
    multiplier: float = 1.5
    min_delay: float = 0.001
    min_samples: int = 8
    max_workers: int = 16

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("delay must be non-negative")
        if not 0.0 <= self.quantile <= 1.0:
            raise ValueError(
                f"quantile must be in [0, 1], got {self.quantile}"
            )
        if self.multiplier <= 0:
            raise ValueError("multiplier must be positive")
        if self.min_delay < 0:
            raise ValueError("min_delay must be non-negative")
        if self.min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        if self.max_workers < 2:
            raise ValueError("max_workers must be at least 2")


class HedgeCoordinator:
    """Runs source calls with first-result-wins speculative duplicates.

    One coordinator serves a whole mediator; :meth:`fetch` is called by
    the dispatcher (from its worker threads or the coordinating thread)
    with a thunk performing the real, reliability-wrapped call.  The
    coordinator owns a separate attempt pool, so a dispatcher worker
    blocking in :meth:`fetch` never deadlocks its own pool.
    """

    def __init__(
        self,
        policy: HedgePolicy | None = None,
        clock: Clock | None = None,
        health: "HealthRegistry | None" = None,
    ) -> None:
        self.policy = policy or HedgePolicy()
        self.clock = clock or MonotonicClock()
        self.health = health
        self.tracker = LatencyTracker()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._pool: ThreadPoolExecutor | None = None
        # counters (under _lock); "races" are fetches where a hedge was
        # actually issued — hedge_wins + primary_wins == races once all
        # attempts have settled, which the chaos harness asserts
        self.calls = 0
        self.hedges_issued = 0
        self.hedge_wins = 0
        self.primary_wins = 0
        self.cancelled = 0  # losers signalled to abandon
        self.abandoned = 0  # attempts that bailed out via HedgeAbandoned
        self.outstanding = 0  # attempts submitted but not yet settled

    # -- lifecycle ---------------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.policy.max_workers,
                    thread_name_prefix="repro-hedge",
                )
            return self._pool

    def shutdown(self) -> None:
        """Stop the attempt pool (idempotent; a new fetch restarts it)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- the hedge delay ---------------------------------------------------

    def delay_for(self, source: str) -> float:
        """Seconds to wait before hedging a call to ``source``."""
        policy = self.policy
        quantile = None
        if self.health is not None:
            quantile = self.health.latency_quantile(
                source, policy.quantile, min_samples=policy.min_samples
            )
        if quantile is None:
            quantile = self.tracker.quantile(
                source, policy.quantile, min_samples=policy.min_samples
            )
        if quantile is None or quantile <= 0:
            return policy.delay
        return max(policy.min_delay, policy.multiplier * quantile)

    # -- the hedged call ---------------------------------------------------

    def fetch(self, source: str, attempt: Callable[[], T]) -> T:
        """Run ``attempt``, hedging it if it straggles; first result wins.

        ``attempt`` must be safe to run twice concurrently (source
        calls are idempotent reads).  Returns the winner's value; the
        loser is signalled to abandon and its result (or error) is
        discarded.  If the first completion failed, the other attempt
        keeps the call alive; only when both fail does the primary's
        error (or, if the primary was abandoned, the hedge's) surface.
        """
        pool = self._ensure_pool()
        abandon = threading.Event()

        def submit(role: str):
            def run() -> T:
                if abandon.is_set():
                    # the other attempt won while this one was queued
                    with self._lock:
                        self.abandoned += 1
                    raise HedgeAbandoned(source)
                started = self.clock.now()
                with abandon_scope(abandon, role):
                    value = attempt()
                self.tracker.observe(source, self.clock.now() - started)
                return value

            context = contextvars.copy_context()
            with self._lock:
                self.outstanding += 1
            try:
                future = pool.submit(context.run, run)
            except BaseException:
                with self._idle:
                    self.outstanding -= 1
                    self._idle.notify_all()
                raise
            future.add_done_callback(self._settled)
            return future

        with self._lock:
            self.calls += 1
        primary = submit("primary")
        done, _ = wait([primary], timeout=self.delay_for(source))
        if done:
            # settled before the hedge delay: no race, value or error
            # surfaces as-is
            return primary.result()
        hedge = submit("hedge")
        with self._lock:
            self.hedges_issued += 1
        pending = {primary, hedge}
        errors: dict[object, BaseException] = {}
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                error = future.exception()
                if error is None:
                    abandon.set()
                    with self._lock:
                        if future is hedge:
                            self.hedge_wins += 1
                        else:
                            self.primary_wins += 1
                        self.cancelled += len(pending)
                    return future.result()
                errors[future] = error
        # both attempts failed: surface the primary's error unless the
        # primary merely got abandoned (can't happen today — abandon is
        # only set after a win — but kept defensive)
        primary_error = errors.get(primary)
        if primary_error is None or isinstance(
            primary_error, HedgeAbandoned
        ):
            raise errors[hedge]
        raise primary_error

    def _settled(self, future) -> None:
        # retrieve the exception so discarded losers never trip
        # "exception was never retrieved" warnings
        future.exception()
        with self._idle:
            self.outstanding -= 1
            self._idle.notify_all()

    def drain(self, timeout: float = 5.0) -> bool:
        """Wait (real time) until no attempt is outstanding.

        Returns False if attempts are still in flight after ``timeout``
        seconds — the chaos harness treats that as a leaked hedge.
        """
        deadline = time.monotonic() + timeout
        with self._idle:
            while self.outstanding:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "calls": self.calls,
                "hedges_issued": self.hedges_issued,
                "hedge_wins": self.hedge_wins,
                "primary_wins": self.primary_wins,
                "cancelled": self.cancelled,
                "abandoned": self.abandoned,
                "outstanding": self.outstanding,
            }

    def describe(self) -> str:
        stats = self.stats()
        policy = self.policy
        return (
            f"hedging: after {policy.multiplier:g} x p"
            f"{policy.quantile * 100:g} (cold-start {policy.delay:g}s);"
            f" {stats['hedges_issued']} hedge(s) on {stats['calls']}"
            f" call(s), {stats['hedge_wins']} hedge win(s),"
            f" {stats['cancelled']} cancelled,"
            f" {stats['outstanding']} outstanding"
        )

    def __repr__(self) -> str:
        return (
            f"HedgeCoordinator(delay={self.policy.delay!r},"
            f" issued={self.hedges_issued})"
        )

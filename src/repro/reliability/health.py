"""Per-source health accounting and structured degradation warnings.

The reliability layer records every attempt against every source here;
:meth:`HealthRegistry.snapshot` gives mediators, benchmarks and the CLI
one consistent view of who is healthy, who is flapping, and whose
breaker is open — the operational counterpart of the optimizer's
statistics store.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace

from repro.reliability.policy import CLOSED, CircuitBreaker

__all__ = [
    "SourceHealth",
    "SourceWarning",
    "HealthRegistry",
    "aggregate_warnings",
]


@dataclass(frozen=True)
class SourceWarning:
    """A structured note that a source's answer is missing or partial.

    Produced in ``degrade`` mode when a source exhausts its retry
    budget (or its breaker is open) and the mediator substitutes an
    empty answer.  Carried on :class:`~repro.client.result.ResultSet`
    so clients can tell a complete answer from a degraded one.
    ``count`` reports how many identical warnings (same source, same
    error class) were folded into this one by
    :func:`aggregate_warnings`.
    """

    source: str
    message: str
    attempts: int = 0
    error: str | None = None
    count: int = 1

    def signature(self) -> tuple:
        """Aggregation key: same source + same error class collapse."""
        return (type(self).__name__, self.source, self.error)

    def render(self) -> str:
        suffix = f" after {self.attempts} attempt(s)" if self.attempts else ""
        repeat = f" [x{self.count}]" if self.count > 1 else ""
        return (
            f"source {self.source!r} degraded{suffix}:"
            f" {self.message}{repeat}"
        )


def aggregate_warnings(warnings) -> list:
    """Fold repeated identical warnings into one record with a count.

    Warnings sharing a ``signature()`` (same source + error class for
    :class:`SourceWarning`, same budget + node for the governor's
    ``BudgetWarning``) collapse to the first occurrence with ``count``
    set to the total and, where present, ``attempts`` summed — so a
    50-row degrade run renders one line, not 50.  Objects without a
    ``signature`` pass through untouched; insertion order is kept.
    """
    grouped: dict[object, list] = {}
    order: list[object] = []
    for warning in warnings:
        signature = getattr(warning, "signature", None)
        key = signature() if callable(signature) else id(warning)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(warning)
    result = []
    for key in order:
        group = grouped[key]
        first = group[0]
        if len(group) == 1:
            result.append(first)
            continue
        updates: dict[str, object] = {"count": sum(w.count for w in group)}
        if hasattr(first, "attempts"):
            updates["attempts"] = sum(w.attempts for w in group)
        result.append(replace(first, **updates))
    return result


#: Latency samples kept per source for percentile estimation.  A small
#: sliding window keeps memory bounded while tracking recent behaviour.
LATENCY_WINDOW = 512


@dataclass
class SourceHealth:
    """Mutable per-source counters; snapshots hand out frozen copies."""

    source: str
    attempts: int = 0
    successes: int = 0
    failures: int = 0
    rejections: int = 0
    retries: int = 0
    total_latency: float = 0.0
    last_latency: float = 0.0
    last_error: str | None = None
    breaker_state: str = CLOSED
    latencies: list[float] = field(default_factory=list)

    @property
    def failure_rate(self) -> float:
        return self.failures / self.attempts if self.attempts else 0.0

    def observe_latency(self, latency: float) -> None:
        """Record one attempt's latency in the sliding sample window."""
        self.total_latency += latency
        self.last_latency = latency
        self.latencies.append(latency)
        if len(self.latencies) > LATENCY_WINDOW:
            del self.latencies[: len(self.latencies) - LATENCY_WINDOW]

    def latency_percentile(self, quantile: float) -> float:
        """The ``quantile`` (0..1) latency over the sample window.

        Nearest-rank on the sorted window — deterministic and exact for
        the samples held; 0.0 before any attempt was observed.
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = max(1, -(-int(quantile * 10000) * len(ordered) // 10000))
        rank = min(rank, len(ordered))
        return ordered[rank - 1]

    @property
    def p50_latency(self) -> float:
        return self.latency_percentile(0.50)

    @property
    def p95_latency(self) -> float:
        return self.latency_percentile(0.95)

    @property
    def max_latency(self) -> float:
        return max(self.latencies) if self.latencies else 0.0

    def render(self) -> str:
        error = f" last_error={self.last_error!r}" if self.last_error else ""
        latency = (
            f" p50={self.p50_latency:.4f}s p95={self.p95_latency:.4f}s"
            f" max={self.max_latency:.4f}s"
            if self.latencies
            else ""
        )
        return (
            f"{self.source}: breaker={self.breaker_state}"
            f" attempts={self.attempts} ok={self.successes}"
            f" failed={self.failures} rejected={self.rejections}"
            f"{latency}{error}"
        )


class HealthRegistry:
    """Name-keyed health records, fed by :class:`ResilientSource`.

    All mutation happens under one lock: with the parallel dispatcher,
    worker threads record events for many sources concurrently, and the
    counters must stay exact (they are what the determinism tests
    compare between sequential and parallel runs).
    """

    def __init__(self) -> None:
        self._records: dict[str, SourceHealth] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()
        # telemetry mirrors, set by bind_metrics (None = not bound);
        # recording methods guard on them, so an unbound registry adds
        # one attribute check per event
        self._metric_latency = None
        self._metric_attempts = None
        self._metric_failures = None
        self._metric_retries = None
        self._metric_rejections = None
        self._metric_transitions = None

    def record_for(self, source: str) -> SourceHealth:
        with self._lock:
            record = self._records.get(source)
            if record is None:
                record = self._records[source] = SourceHealth(source)
            return record

    def bind_metrics(self, registry) -> None:
        """Mirror health events into a telemetry metrics registry.

        The sliding-window percentiles above stay (tests and existing
        callers pin them), but once bound, the histogram-derived
        p50/p95/p99 of ``repro_source_latency_seconds`` become the
        reported latency figures.  Breakers already attached (and any
        attached later) get an ``on_transition`` observer feeding the
        transition counter.
        """
        from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS

        self._metric_latency = registry.histogram(
            "repro_source_latency_seconds",
            "Per-attempt source latency (successes and failures).",
            labelnames=("source",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._metric_attempts = registry.counter(
            "repro_source_attempts_total",
            "Source call attempts, retries included.",
            labelnames=("source",),
        )
        self._metric_failures = registry.counter(
            "repro_source_failures_total",
            "Failed source call attempts.",
            labelnames=("source",),
        )
        self._metric_retries = registry.counter(
            "repro_retry_attempts_total",
            "Retries scheduled after a failed attempt.",
            labelnames=("source",),
        )
        self._metric_rejections = registry.counter(
            "repro_breaker_rejections_total",
            "Calls refused because a breaker was open.",
            labelnames=("source",),
        )
        self._metric_transitions = registry.counter(
            "repro_breaker_transitions_total",
            "Circuit breaker state changes.",
            labelnames=("source", "to"),
        )
        with self._lock:
            breakers = dict(self._breakers)
        for name, breaker in breakers.items():
            self._observe_breaker(name, breaker)

    def _observe_breaker(self, source: str, breaker: CircuitBreaker) -> None:
        transitions = self._metric_transitions

        def on_transition(old: str, new: str, _source=source) -> None:
            transitions.inc(source=_source, to=new)

        breaker.on_transition = on_transition

    def attach_breaker(self, source: str, breaker: CircuitBreaker) -> None:
        """Associate ``breaker`` so snapshots report its live state."""
        with self._lock:
            self._breakers[source] = breaker
        if self._metric_transitions is not None:
            self._observe_breaker(source, breaker)

    # -- event recording ---------------------------------------------------

    def record_attempt(self, source: str) -> None:
        record = self.record_for(source)
        with self._lock:
            record.attempts += 1
        if self._metric_attempts is not None:
            self._metric_attempts.inc(source=source)

    def record_success(self, source: str, latency: float) -> None:
        record = self.record_for(source)
        with self._lock:
            record.successes += 1
            record.observe_latency(latency)
        if self._metric_latency is not None:
            self._metric_latency.observe(latency, source=source)

    def record_failure(self, source: str, error: str, latency: float) -> None:
        record = self.record_for(source)
        with self._lock:
            record.failures += 1
            record.observe_latency(latency)
            record.last_error = error
        if self._metric_failures is not None:
            self._metric_failures.inc(source=source)
            self._metric_latency.observe(latency, source=source)

    def record_retry(self, source: str) -> None:
        record = self.record_for(source)
        with self._lock:
            record.retries += 1
        if self._metric_retries is not None:
            self._metric_retries.inc(source=source)

    def record_rejection(self, source: str) -> None:
        record = self.record_for(source)
        with self._lock:
            record.rejections += 1
        if self._metric_rejections is not None:
            self._metric_rejections.inc(source=source)

    # -- introspection ------------------------------------------------------

    def attempts_of(self, source: str) -> int:
        record = self._records.get(source)
        return record.attempts if record else 0

    def latency_quantile(
        self, source: str, quantile: float, min_samples: int = 1
    ) -> float | None:
        """The ``quantile`` latency over the source's sample window.

        ``None`` while the window holds fewer than ``min_samples``
        observations — adaptive timeout and hedge policies use that to
        fall back to their static cold-start values instead of acting
        on noise.
        """
        with self._lock:
            record = self._records.get(source)
            if record is None or len(record.latencies) < max(1, min_samples):
                return None
            return record.latency_percentile(quantile)

    def status(self, source: str) -> SourceHealth:
        """A frozen-in-time copy of one source's record."""
        record = self.record_for(source)
        with self._lock:
            breaker = self._breakers.get(source)
            return replace(
                record,
                breaker_state=(
                    breaker.state if breaker else record.breaker_state
                ),
                latencies=list(record.latencies),
            )

    def snapshot(self) -> dict[str, SourceHealth]:
        """Copies of every record, with live breaker states folded in."""
        with self._lock:
            names = sorted(self._records)
        return {name: self.status(name) for name in names}

    def render(self) -> str:
        return "\n".join(
            record.render() for record in self.snapshot().values()
        )

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
            breakers = list(self._breakers.values())
        for breaker in breakers:
            breaker.reset()

"""Fault tolerance for mediation over autonomous sources.

The paper's sources — a campus ``whois`` service, a live relational
database — are exactly the kind that get slow, flaky, or disappear.
This package gives the MSI pipeline a defensive access layer:

* :mod:`repro.reliability.clock` — injectable time (tests never sleep);
* :mod:`repro.reliability.faults` — deterministic fault injection for
  testing and benchmarking;
* :mod:`repro.reliability.policy` — retry backoff and circuit breakers;
* :mod:`repro.reliability.resilient` — the composed resilient wrapper
  and the per-mediator :class:`ResilienceManager`;
* :mod:`repro.reliability.health` — per-source health accounting and
  the structured :class:`SourceWarning` carried by degraded answers;
* :mod:`repro.reliability.deadline` — deadline slicing across plan
  stages and latency-derived adaptive per-source timeouts;
* :mod:`repro.reliability.hedging` — speculative duplicate requests
  for straggling source calls, first result wins.
"""

from repro.reliability.clock import Clock, ManualClock, MonotonicClock
from repro.reliability.deadline import (
    AdaptiveTimeoutConfig,
    AdaptiveTimeoutPolicy,
    DeadlineSlicer,
    LatencyTracker,
    call_allowance_scope,
    current_call_allowance,
)
from repro.reliability.hedging import (
    HedgeAbandoned,
    HedgeCoordinator,
    HedgePolicy,
    current_hedge_role,
)
from repro.reliability.faults import (
    FaultInjectingSource,
    MALFORMED,
    MALFORMED_KINDS,
    TransientSourceError,
)
from repro.reliability.health import (
    HealthRegistry,
    SourceHealth,
    SourceWarning,
    aggregate_warnings,
)
from repro.reliability.policy import (
    CLOSED,
    CircuitBreaker,
    HALF_OPEN,
    OPEN,
    RetryPolicy,
)
from repro.reliability.resilient import (
    MalformedResponseError,
    ResilienceConfig,
    ResilienceManager,
    ResilientSource,
    SourceTimeoutError,
    SourceUnavailable,
)

__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "Clock",
    "FaultInjectingSource",
    "HALF_OPEN",
    "HealthRegistry",
    "MALFORMED",
    "MALFORMED_KINDS",
    "MalformedResponseError",
    "ManualClock",
    "MonotonicClock",
    "OPEN",
    "ResilienceConfig",
    "ResilienceManager",
    "ResilientSource",
    "RetryPolicy",
    "SourceHealth",
    "SourceTimeoutError",
    "SourceUnavailable",
    "SourceWarning",
    "TransientSourceError",
    "aggregate_warnings",
]

"""Deterministic fault injection over any :class:`Source`.

A :class:`FaultInjectingSource` decorates a wrapper (or a whole
sub-mediator) and, driven by one seeded ``random.Random``, injects the
failure modes an autonomous source exhibits in the wild:

* transient errors (:class:`TransientSourceError`) at ``fault_rate``;
* simulated latency — the injected clock is advanced, never slept on;
  ``slow_rate`` / ``slow_latency`` add a heavy tail: the occasional
  call stalls at ``slow_latency`` instead of ``latency`` (the shape
  hedging and adaptive timeouts are built to absorb);
* empty answers at ``empty_rate`` (the source "worked" but lost data);
* malformed answers at ``malformed_rate`` — the shape is picked by
  ``malformed_kind``: ``"flat"`` (non-OEM garbage, the classic), or
  the governor-era kinds ``"malformed_typed"`` (an object whose
  declared type lies about its value), ``"malformed_deep"`` (absurdly
  nested but otherwise valid OEM), and ``"malformed_cyclic"`` (a
  reference cycle) — everything an answer sanitizer must catch;
* a ``dead`` switch for sustained outages (breaker tests flip it);
  ``die_after=N`` flips it automatically after N calls, simulating a
  source that dies mid-query.

The same seed always yields the same schedule — the outcome of call
*n* depends only on the seed and *n* — which is what lets the test
suite assert retry and degradation behaviour exactly.  The slow-call
draw consumes randomness only when ``slow_rate > 0``, so existing
seeded schedules are untouched by the default configuration.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.msl.ast import Rule
from repro.oem.model import OEMObject
from repro.reliability.clock import Clock, ManualClock
from repro.wrappers.base import Source, SourceError

__all__ = [
    "TransientSourceError",
    "FaultInjectingSource",
    "MALFORMED",
    "MALFORMED_KINDS",
]


class TransientSourceError(SourceError):
    """An injected momentary failure: a retry may well succeed."""


#: Sentinel object returned inside a "malformed" answer.  It is not an
#: :class:`OEMObject`, so response validation must reject the answer.
MALFORMED = "<<malformed-oem-response>>"

#: Recognised shapes for an injected malformed answer.
MALFORMED_KINDS = frozenset({"flat", "deep", "typed", "cyclic"})


def _malformed_deep(depth: int = 100) -> OEMObject:
    """A validly-typed object nested far past any sane answer depth."""
    obj = OEMObject("leaf", "bottom", "string")
    for level in range(depth):
        obj = OEMObject(f"level{depth - level}", (obj,), "set")
    return obj


def _malformed_typed() -> OEMObject:
    """An object whose declared type lies about its value.

    The constructor validates type/value agreement, so the corruption
    is applied afterwards with ``object.__setattr__`` — exactly how a
    buggy wrapper ships a record that *looks* like OEM but is not.
    """
    obj = OEMObject("count", 7, "integer")
    object.__setattr__(obj, "value", "seven")  # integer carrying a str
    bad_label = OEMObject("name", "Joe Chung", "string")
    object.__setattr__(bad_label, "label", 42)  # non-string label
    return OEMObject("person", (obj, bad_label), "set")


def _malformed_cyclic() -> OEMObject:
    """A set object whose child tuple points back at an ancestor."""
    inner = OEMObject("inner", (), "set")
    outer = OEMObject("outer", (inner,), "set")
    object.__setattr__(inner, "value", (outer,))
    return outer


class FaultInjectingSource(Source):
    """Wrap ``inner`` with a seeded, deterministic fault schedule.

    The wrapper keeps ``inner``'s name, capability and schema facts, so
    it can be registered (or passed to a resilient wrapper) anywhere
    the bare source could.  Each injected outcome is appended to
    :attr:`outcomes` (``"ok"``, ``"fault"``, ``"empty"``,
    ``"malformed"`` or ``"dead"``) for assertions.
    """

    def __init__(
        self,
        inner: Source,
        seed: int = 0,
        fault_rate: float = 0.0,
        empty_rate: float = 0.0,
        malformed_rate: float = 0.0,
        malformed_kind: str = "flat",
        latency: float = 0.0,
        slow_rate: float = 0.0,
        slow_latency: float = 0.0,
        dead: bool = False,
        die_after: int | None = None,
        clock: Clock | None = None,
    ) -> None:
        for name, rate in (
            ("fault_rate", fault_rate),
            ("empty_rate", empty_rate),
            ("malformed_rate", malformed_rate),
            ("slow_rate", slow_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if latency < 0 or slow_latency < 0:
            raise ValueError("latency must be non-negative")
        if die_after is not None and die_after < 0:
            raise ValueError("die_after must be non-negative")
        if malformed_kind not in MALFORMED_KINDS:
            raise ValueError(
                f"malformed_kind must be one of"
                f" {sorted(MALFORMED_KINDS)}, got {malformed_kind!r}"
            )
        self.inner = inner
        self.name = inner.name
        self.seed = seed
        self.fault_rate = fault_rate
        self.empty_rate = empty_rate
        self.malformed_rate = malformed_rate
        self.malformed_kind = malformed_kind
        self.latency = latency
        self.slow_rate = slow_rate
        self.slow_latency = slow_latency
        self.dead = dead
        self.die_after = die_after
        self.clock = clock or ManualClock()
        self._rng = random.Random(seed)
        self.calls = 0
        self.inner_calls = 0
        self.outcomes: list[str] = []

    @property
    def capability(self):
        return self.inner.capability

    @property
    def schema_facts(self):
        return self.inner.schema_facts

    # -- schedule ----------------------------------------------------------

    def _draw_outcome(self) -> str:
        """One seeded draw; the dead switch overrides the schedule."""
        if self.dead:
            return "dead"
        roll = self._rng.random()
        if roll < self.fault_rate:
            return "fault"
        if roll < self.fault_rate + self.empty_rate:
            return "empty"
        if roll < self.fault_rate + self.empty_rate + self.malformed_rate:
            return "malformed"
        return "ok"

    def _deliver(self, produce) -> list[OEMObject]:
        self.calls += 1
        if self.die_after is not None and self.calls > self.die_after:
            self.dead = True
        delay = self.latency
        if self.slow_rate and self._rng.random() < self.slow_rate:
            # an occasional stall: this is the extra draw that makes
            # heavy-tailed schedules; it only happens with slow_rate
            # set, so default-configured seeded schedules are unchanged
            delay = self.slow_latency
        if delay:
            self.clock.sleep(delay)
        outcome = self._draw_outcome()
        self.outcomes.append(outcome)
        if outcome == "dead":
            raise SourceError(f"source {self.name!r} is down")
        if outcome == "fault":
            raise TransientSourceError(
                f"injected transient fault at {self.name!r}"
                f" (call {self.calls})"
            )
        if outcome == "empty":
            return []
        if outcome == "malformed":
            return self._malformed_answer()
        self.inner_calls += 1
        return produce()

    def _malformed_answer(self) -> list[OEMObject]:
        """Build one malformed answer in the configured shape."""
        if self.malformed_kind == "deep":
            return [_malformed_deep()]
        if self.malformed_kind == "typed":
            return [_malformed_typed()]
        if self.malformed_kind == "cyclic":
            return [_malformed_cyclic()]
        return [MALFORMED]  # type: ignore[list-item]

    # -- the Source interface ----------------------------------------------

    def answer(self, query: Rule) -> list[OEMObject]:
        return self._deliver(lambda: self.inner.answer(query))

    def export(self) -> Sequence[OEMObject]:
        return self._deliver(lambda: list(self.inner.export()))

    def reset_counters(self) -> None:
        self.calls = 0
        self.inner_calls = 0
        self.outcomes.clear()
        self.inner.reset_counters()

    def stats(self) -> dict[str, object]:
        stats = dict(self.inner.stats())
        stats.update(
            fault_calls=self.calls,
            fault_outcomes=len(self.outcomes),
            faults_injected=sum(
                1 for outcome in self.outcomes if outcome != "ok"
            ),
        )
        return stats

"""Injectable clocks: real time for production, manual time for tests.

Every reliability component (retry backoff, circuit-breaker cooldowns,
timeout detection, latency accounting) reads time through a
:class:`Clock` so that tests and benchmarks never call ``time.sleep``.
A :class:`ManualClock` advances only when told to — a backoff "sleep"
is just an addition — which makes fault schedules, breaker cooldowns
and recovery curves fully deterministic.
"""

from __future__ import annotations

import abc
import threading
import time

__all__ = ["Clock", "MonotonicClock", "ManualClock"]


class Clock(abc.ABC):
    """A monotonic time source with a sleep operation."""

    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds (monotonic; origin unspecified)."""

    @abc.abstractmethod
    def sleep(self, seconds: float) -> None:
        """Block (or pretend to block) for ``seconds``."""


class MonotonicClock(Clock):
    """The real thing: ``time.monotonic`` + ``time.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class ManualClock(Clock):
    """A clock that only moves when advanced — no real waiting.

    ``sleep`` advances the clock by the requested amount, so code under
    test experiences backoff delays and cooldown windows instantly.
    Advancing is atomic: under the parallel dispatcher many worker
    threads "sleep" on one shared manual clock, and the total advance
    must equal the sum of the sleeps regardless of interleaving.

    >>> clock = ManualClock()
    >>> clock.sleep(2.5); clock.advance(0.5); clock.now()
    3.0
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.sleeps: list[float] = []
        self._lock = threading.Lock()

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        with self._lock:
            self.sleeps.append(seconds)
            self._now += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        with self._lock:
            self._now += seconds

"""Retry and circuit-breaker policies for source access.

Autonomous sources fail in two modes the mediator must distinguish:

* *transient* faults (a dropped connection, a momentary overload) —
  worth retrying with exponential backoff;
* *sustained* outages — retrying only wastes the query's time budget,
  so a per-source :class:`CircuitBreaker` stops sending after a
  threshold of consecutive failures and probes again after a cooldown.

Both policies are pure state machines over an injectable
:class:`~repro.reliability.clock.Clock`; nothing here ever sleeps on
its own.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Callable

from repro.reliability.clock import Clock, MonotonicClock

__all__ = ["RetryPolicy", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry one source call.

    ``max_attempts`` counts the initial try: ``max_attempts=3`` means
    one call plus up to two retries.  Backoff for the retry after
    attempt *n* is ``base_delay * multiplier**(n-1)``, capped at
    ``max_delay``, then jittered from the caller-supplied rng per
    ``jitter_mode``:

    * ``"equal"`` (the default) adds up to ``jitter`` (a fraction) of
      the computed delay — retries stay near the exponential schedule;
    * ``"full"`` draws the whole delay uniformly from
      ``[0, computed delay]`` (AWS-style full jitter) — under a
      parallel dispatcher this decorrelates the retry storms of
      workers that all failed against the same source at the same
      moment, so a recovering source is not stampeded; ``jitter`` is
      ignored in this mode.

    ``deadline`` is a per-query time budget: no retry is scheduled
    that would start after ``deadline`` seconds from the first attempt.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1
    deadline: float | None = None
    jitter_mode: str = "equal"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter is a fraction in [0, 1]")
        if self.jitter_mode not in ("equal", "full"):
            raise ValueError(
                "jitter_mode must be 'equal' or 'full',"
                f" got {self.jitter_mode!r}"
            )

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff before the retry following failed attempt ``attempt``.

        ``attempt`` is 1-based; jitter comes from ``rng`` so a seeded
        caller gets a reproducible delay sequence.  Without an rng the
        un-jittered exponential delay is returned in either mode.
        """
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        delay = min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )
        if rng is None:
            return delay
        if self.jitter_mode == "full":
            return rng.uniform(0.0, delay)
        if self.jitter:
            delay += delay * self.jitter * rng.random()
        return delay

    def within_deadline(self, elapsed: float, next_delay: float) -> bool:
        """May a retry still be scheduled ``elapsed`` seconds in?"""
        if self.deadline is None:
            return True
        return elapsed + next_delay <= self.deadline


#: Circuit-breaker states (the classic three-state machine).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-source closed/open/half-open breaker.

    * **closed** — calls flow; ``failure_threshold`` *consecutive*
      failures open the breaker.
    * **open** — calls are rejected without touching the source until
      ``cooldown`` seconds have passed on the injected clock.
    * **half-open** — exactly one *in-flight* probe call is admitted;
      concurrent callers fail fast until the probe reports back.
      Success closes the breaker, failure re-opens it (restarting the
      cooldown).  Without this gate a parallel dispatcher would pour a
      whole stage through a just-cooled breaker the instant it
      half-opens — a thundering herd at the recovering source.

    >>> from repro.reliability.clock import ManualClock
    >>> clock = ManualClock()
    >>> breaker = CircuitBreaker(failure_threshold=2, cooldown=10, clock=clock)
    >>> breaker.record_failure(); breaker.record_failure(); breaker.state
    'open'
    >>> breaker.allow()
    False
    >>> clock.advance(10); breaker.allow(), breaker.state
    (True, 'half_open')
    >>> breaker.record_success(); breaker.state
    'closed'
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        clock: Clock | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.clock = clock or MonotonicClock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self.rejections = 0
        # state transitions must be atomic: under the parallel
        # dispatcher many worker threads consult one breaker
        self._mutex = threading.RLock()
        #: Optional observer called as ``on_transition(old, new)`` on
        #: every state change (under the mutex — keep it cheap).
        self.on_transition: Callable[[str, str], None] | None = None

    def _set_state(self, new: str) -> None:
        old, self._state = self._state, new
        if old != new and self.on_transition is not None:
            self.on_transition(old, new)

    @property
    def state(self) -> str:
        """Current state, promoting open → half-open when cooled down."""
        with self._mutex:
            if (
                self._state == OPEN
                and self.clock.now() - self._opened_at >= self.cooldown
            ):
                self._set_state(HALF_OPEN)
            return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def allow(self) -> bool:
        """May a call be attempted right now?

        In half-open state this admits exactly one in-flight probe
        (the gate clears when the probe reports success or failure);
        every rejected call is counted in :attr:`rejections`.
        """
        with self._mutex:
            state = self.state
            if state == OPEN:
                self.rejections += 1
                return False
            if state == HALF_OPEN:
                if self._probe_inflight:
                    self.rejections += 1
                    return False
                self._probe_inflight = True
            return True

    def record_success(self) -> None:
        with self._mutex:
            self._consecutive_failures = 0
            self._probe_inflight = False
            self._set_state(CLOSED)

    def record_failure(self) -> None:
        with self._mutex:
            self._consecutive_failures += 1
            self._probe_inflight = False
            if (
                self.state == HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            ):
                self._set_state(OPEN)
                self._opened_at = self.clock.now()

    def reset(self) -> None:
        """Force the breaker closed and forget history."""
        with self._mutex:
            self._set_state(CLOSED)
            self._consecutive_failures = 0
            self._opened_at = 0.0
            self._probe_inflight = False
            self.rejections = 0

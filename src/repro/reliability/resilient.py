"""Resilient source access: timeout + retry + circuit breaker.

:class:`ResilientSource` decorates any :class:`Source` — a wrapper, a
fault injector, or a whole sub-mediator — with the full defensive
stack:

1. the per-source :class:`CircuitBreaker` is consulted before every
   attempt (open breaker ⇒ immediate :class:`SourceUnavailable`);
2. the call is made and timed on the injected clock; a call that took
   longer than ``timeout`` is discarded as a :class:`SourceTimeoutError`
   (a single-threaded engine cannot abort a call midway, so timeouts
   are enforced post-hoc — honest, and fully deterministic with a
   :class:`~repro.reliability.clock.ManualClock`);
3. the answer is validated — anything that is not a list of OEM objects
   is a :class:`MalformedResponseError`;
4. failures are retried per :class:`RetryPolicy` (seeded backoff
   jitter, per-query deadline budget), every event lands in the shared
   :class:`HealthRegistry`, and an exhausted budget raises
   :class:`SourceUnavailable` carrying the attempt count and last error.

:class:`ResilienceManager` builds one such wrapper per source from a
single :class:`ResilienceConfig` and is what the execution context
routes ``send_query`` through.
"""

from __future__ import annotations

import random
import threading
import zlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.msl.ast import Rule
from repro.oem.model import OEMObject
from repro.reliability.clock import Clock, MonotonicClock
from repro.reliability.deadline import (
    AdaptiveTimeoutConfig,
    AdaptiveTimeoutPolicy,
    current_call_allowance,
)
from repro.reliability.health import HealthRegistry
from repro.reliability.hedging import HedgeAbandoned, current_abandon
from repro.reliability.policy import CircuitBreaker, RetryPolicy
from repro.wrappers.base import Source, SourceError

__all__ = [
    "SourceTimeoutError",
    "MalformedResponseError",
    "SourceUnavailable",
    "ResilientSource",
    "ResilienceConfig",
    "ResilienceManager",
]


class SourceTimeoutError(SourceError):
    """A source call exceeded its time budget; its answer is discarded."""


class MalformedResponseError(SourceError):
    """A source returned something that is not a list of OEM objects."""


class SourceUnavailable(SourceError):
    """All attempts against a source failed (or its breaker is open)."""

    def __init__(
        self, source: str, message: str, attempts: int = 0,
        cause: Exception | None = None,
    ) -> None:
        super().__init__(message)
        self.source = source
        self.attempts = attempts
        self.cause = cause


def validate_answer(source: str, result: object) -> list[OEMObject]:
    """Reject anything that is not a list of OEM objects."""
    if not isinstance(result, list) or not all(
        isinstance(item, OEMObject) for item in result
    ):
        raise MalformedResponseError(
            f"source {source!r} returned a malformed OEM answer:"
            f" {type(result).__name__}"
        )
    return result


class ResilientSource(Source):
    """``inner`` behind timeout detection, retries and a breaker."""

    def __init__(
        self,
        inner: Source,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        timeout: float | None = None,
        clock: Clock | None = None,
        health: HealthRegistry | None = None,
        seed: int = 0,
        timeout_policy: AdaptiveTimeoutPolicy | None = None,
    ) -> None:
        self.inner = inner
        self.name = inner.name
        self.policy = policy or RetryPolicy()
        self.clock = clock or MonotonicClock()
        self.breaker = breaker or CircuitBreaker(clock=self.clock)
        self.timeout = timeout
        #: When set, a warm latency window *replaces* the static
        #: ``timeout`` with ``multiplier x pXX`` of observed latency;
        #: the static value only covers the cold start.
        self.timeout_policy = timeout_policy
        self.health = health or HealthRegistry()
        self.health.attach_breaker(self.name, self.breaker)
        self._rng = random.Random(seed)
        # per-call accounting: (attempts, elapsed) of the *latest* call
        # on this thread.  Thread-local so concurrent dispatcher workers
        # sharing one wrapper never read each other's figures — the
        # health registry only holds cross-call totals.
        self._local = threading.local()

    def last_call_stats(self) -> tuple[int, float]:
        """``(attempts, elapsed_seconds)`` of this thread's last call."""
        return getattr(self._local, "stats", (0, 0.0))

    @property
    def capability(self):
        return self.inner.capability

    @property
    def schema_facts(self):
        return self.inner.schema_facts

    # -- the defended call path --------------------------------------------

    def effective_timeout(self, allowance: float | None = None) -> float | None:
        """The per-attempt timeout in force for the next call.

        A warm adaptive policy replaces the static timeout (the static
        value is the cold-start fallback, not a cap — observed latency
        is the better estimate of "too slow" either way); a per-call
        deadline allowance, when one is active, bounds the result from
        above so a call can never outspend its slice of the query
        budget.
        """
        timeout = self.timeout
        if self.timeout_policy is not None:
            adaptive = self.timeout_policy.timeout_for(self.name)
            if adaptive is not None:
                timeout = adaptive
        if allowance is not None:
            timeout = allowance if timeout is None else min(timeout, allowance)
        return timeout

    def _call(self, produce: Callable[[], object]) -> list[OEMObject]:
        started = self.clock.now()
        last_error: SourceError | None = None
        attempts = 0
        allowance = current_call_allowance()
        timeout = self.effective_timeout(allowance)
        abandon = current_abandon()
        try:
            for attempt in range(1, self.policy.max_attempts + 1):
                if abandon is not None and abandon.is_set():
                    # the hedged twin of this call already won; stop
                    # without charging the breaker or health record
                    raise HedgeAbandoned(self.name)
                if not self.breaker.allow():
                    self.health.record_rejection(self.name)
                    raise SourceUnavailable(
                        self.name,
                        f"source {self.name!r} unavailable: circuit breaker"
                        f" is open (cooldown {self.breaker.cooldown}s)",
                        attempts=attempts,
                        cause=last_error,
                    )
                attempts = attempt
                self.health.record_attempt(self.name)
                attempt_started = self.clock.now()
                try:
                    result = produce()
                    elapsed = self.clock.now() - attempt_started
                    if timeout is not None and elapsed > timeout:
                        raise SourceTimeoutError(
                            f"source {self.name!r} answered in"
                            f" {elapsed:.3f}s, over the"
                            f" {timeout:.3f}s timeout"
                        )
                    result = validate_answer(self.name, result)
                except SourceUnavailable:
                    # a nested resilient layer already gave up; don't retry
                    self.breaker.record_failure()
                    raise
                except SourceError as exc:
                    elapsed = self.clock.now() - attempt_started
                    self.breaker.record_failure()
                    self.health.record_failure(self.name, str(exc), elapsed)
                    last_error = exc
                    if attempt >= self.policy.max_attempts:
                        break
                    if abandon is not None and abandon.is_set():
                        raise HedgeAbandoned(self.name)
                    delay = self.policy.delay(attempt, self._rng)
                    if not self.policy.within_deadline(
                        self.clock.now() - started, delay
                    ):
                        break
                    if (
                        allowance is not None
                        and self.clock.now() - started + delay > allowance
                    ):
                        # the retry would start past this call's slice
                        # of the query deadline — give up now so the
                        # stage's remaining budget serves other calls
                        break
                    self.health.record_retry(self.name)
                    self.clock.sleep(delay)
                    continue
                self.breaker.record_success()
                self.health.record_success(
                    self.name, self.clock.now() - attempt_started
                )
                return result
            raise SourceUnavailable(
                self.name,
                f"source {self.name!r} unavailable after {attempts}"
                f" attempt(s): {last_error}",
                attempts=attempts,
                cause=last_error,
            ) from last_error
        finally:
            # every exit path publishes this call's figures for the
            # execution context (thread-local, so concurrent dispatcher
            # workers never see each other's calls)
            self._local.stats = (attempts, self.clock.now() - started)

    # -- the Source interface ----------------------------------------------

    def answer(self, query: Rule) -> list[OEMObject]:
        return self._call(lambda: self.inner.answer(query))

    def export(self) -> Sequence[OEMObject]:
        return self._call(lambda: list(self.inner.export()))

    def reset_counters(self) -> None:
        self.inner.reset_counters()

    def stats(self) -> dict[str, object]:
        stats = dict(self.inner.stats())
        status = self.health.status(self.name)
        stats.update(
            resilient_attempts=status.attempts,
            resilient_failures=status.failures,
            resilient_rejections=status.rejections,
            breaker_state=status.breaker_state,
        )
        return stats


@dataclass(frozen=True)
class ResilienceConfig:
    """One bundle of knobs for every source behind a mediator.

    ``adaptive`` switches the static ``timeout`` into a cold-start
    fallback: once a source's latency window is warm, its timeout is
    derived from observed percentiles per the
    :class:`AdaptiveTimeoutConfig`.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    timeout: float | None = None
    breaker_threshold: int = 5
    breaker_cooldown: float = 30.0
    seed: int = 0
    adaptive: AdaptiveTimeoutConfig | None = None


class ResilienceManager:
    """Builds and caches one :class:`ResilientSource` per source name.

    All wrappers share the manager's clock and :class:`HealthRegistry`;
    each gets its own breaker and seeded jitter stream (derived from
    the config seed and the source name, so schedules stay stable as
    sources come and go).
    """

    def __init__(
        self,
        config: ResilienceConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.config = config or ResilienceConfig()
        self.clock = clock or MonotonicClock()
        self.health = HealthRegistry()
        self.adaptive: AdaptiveTimeoutPolicy | None = (
            AdaptiveTimeoutPolicy(self.config.adaptive, health=self.health)
            if self.config.adaptive is not None
            else None
        )
        self._wrapped: dict[str, ResilientSource] = {}

    def enable_adaptive(
        self, config: AdaptiveTimeoutConfig | None = None
    ) -> AdaptiveTimeoutPolicy:
        """Switch adaptive per-source timeouts on (idempotent).

        Builds one shared policy over the manager's health registry;
        wrappers already built pick it up on their next :meth:`wrap`.
        """
        if self.adaptive is None:
            self.adaptive = AdaptiveTimeoutPolicy(
                config or AdaptiveTimeoutConfig(), health=self.health
            )
        return self.adaptive

    def wrap(self, source: Source) -> ResilientSource:
        wrapped = self._wrapped.get(source.name)
        if wrapped is None or wrapped.inner is not source:
            config = self.config
            wrapped = ResilientSource(
                source,
                policy=config.retry,
                breaker=CircuitBreaker(
                    failure_threshold=config.breaker_threshold,
                    cooldown=config.breaker_cooldown,
                    clock=self.clock,
                ),
                timeout=config.timeout,
                clock=self.clock,
                health=self.health,
                seed=config.seed ^ (zlib.crc32(source.name.encode()) & 0xFFFF),
                timeout_policy=self.adaptive,
            )
            self._wrapped[source.name] = wrapped
        elif wrapped.timeout_policy is not self.adaptive:
            # adaptive timeouts were toggled after this wrapper was
            # built (enable_adaptive on a live manager)
            wrapped.timeout_policy = self.adaptive
        return wrapped

    def breaker_for(self, name: str) -> CircuitBreaker | None:
        wrapped = self._wrapped.get(name)
        return wrapped.breaker if wrapped else None

    def describe(self) -> str:
        """One-paragraph policy summary for ``Mediator.explain``."""
        retry = self.config.retry
        timeout = (
            f"{self.config.timeout:g}s" if self.config.timeout else "none"
        )
        deadline = f"{retry.deadline:g}s" if retry.deadline else "none"
        jitter = (
            " full jitter," if retry.jitter_mode == "full" else ""
        )
        text = (
            f"retries: {retry.max_attempts - 1} (backoff"
            f" {retry.base_delay:g}s x{retry.multiplier:g},{jitter}"
            f" cap {retry.max_delay:g}s, deadline {deadline});"
            f" timeout: {timeout};"
            f" breaker: open after {self.config.breaker_threshold}"
            f" failure(s), cooldown {self.config.breaker_cooldown:g}s"
        )
        if self.adaptive is not None:
            text += f"; {self.adaptive.describe()}"
        return text

"""Resilient source access: timeout + retry + circuit breaker.

:class:`ResilientSource` decorates any :class:`Source` — a wrapper, a
fault injector, or a whole sub-mediator — with the full defensive
stack:

1. the per-source :class:`CircuitBreaker` is consulted before every
   attempt (open breaker ⇒ immediate :class:`SourceUnavailable`);
2. the call is made and timed on the injected clock; a call that took
   longer than ``timeout`` is discarded as a :class:`SourceTimeoutError`
   (a single-threaded engine cannot abort a call midway, so timeouts
   are enforced post-hoc — honest, and fully deterministic with a
   :class:`~repro.reliability.clock.ManualClock`);
3. the answer is validated — anything that is not a list of OEM objects
   is a :class:`MalformedResponseError`;
4. failures are retried per :class:`RetryPolicy` (seeded backoff
   jitter, per-query deadline budget), every event lands in the shared
   :class:`HealthRegistry`, and an exhausted budget raises
   :class:`SourceUnavailable` carrying the attempt count and last error.

:class:`ResilienceManager` builds one such wrapper per source from a
single :class:`ResilienceConfig` and is what the execution context
routes ``send_query`` through.
"""

from __future__ import annotations

import random
import threading
import zlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.msl.ast import Rule
from repro.oem.model import OEMObject
from repro.reliability.clock import Clock, MonotonicClock
from repro.reliability.health import HealthRegistry
from repro.reliability.policy import CircuitBreaker, RetryPolicy
from repro.wrappers.base import Source, SourceError

__all__ = [
    "SourceTimeoutError",
    "MalformedResponseError",
    "SourceUnavailable",
    "ResilientSource",
    "ResilienceConfig",
    "ResilienceManager",
]


class SourceTimeoutError(SourceError):
    """A source call exceeded its time budget; its answer is discarded."""


class MalformedResponseError(SourceError):
    """A source returned something that is not a list of OEM objects."""


class SourceUnavailable(SourceError):
    """All attempts against a source failed (or its breaker is open)."""

    def __init__(
        self, source: str, message: str, attempts: int = 0,
        cause: Exception | None = None,
    ) -> None:
        super().__init__(message)
        self.source = source
        self.attempts = attempts
        self.cause = cause


def validate_answer(source: str, result: object) -> list[OEMObject]:
    """Reject anything that is not a list of OEM objects."""
    if not isinstance(result, list) or not all(
        isinstance(item, OEMObject) for item in result
    ):
        raise MalformedResponseError(
            f"source {source!r} returned a malformed OEM answer:"
            f" {type(result).__name__}"
        )
    return result


class ResilientSource(Source):
    """``inner`` behind timeout detection, retries and a breaker."""

    def __init__(
        self,
        inner: Source,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        timeout: float | None = None,
        clock: Clock | None = None,
        health: HealthRegistry | None = None,
        seed: int = 0,
    ) -> None:
        self.inner = inner
        self.name = inner.name
        self.policy = policy or RetryPolicy()
        self.clock = clock or MonotonicClock()
        self.breaker = breaker or CircuitBreaker(clock=self.clock)
        self.timeout = timeout
        self.health = health or HealthRegistry()
        self.health.attach_breaker(self.name, self.breaker)
        self._rng = random.Random(seed)
        # per-call accounting: (attempts, elapsed) of the *latest* call
        # on this thread.  Thread-local so concurrent dispatcher workers
        # sharing one wrapper never read each other's figures — the
        # health registry only holds cross-call totals.
        self._local = threading.local()

    def last_call_stats(self) -> tuple[int, float]:
        """``(attempts, elapsed_seconds)`` of this thread's last call."""
        return getattr(self._local, "stats", (0, 0.0))

    @property
    def capability(self):
        return self.inner.capability

    @property
    def schema_facts(self):
        return self.inner.schema_facts

    # -- the defended call path --------------------------------------------

    def _call(self, produce: Callable[[], object]) -> list[OEMObject]:
        started = self.clock.now()
        last_error: SourceError | None = None
        attempts = 0
        try:
            for attempt in range(1, self.policy.max_attempts + 1):
                if not self.breaker.allow():
                    self.health.record_rejection(self.name)
                    raise SourceUnavailable(
                        self.name,
                        f"source {self.name!r} unavailable: circuit breaker"
                        f" is open (cooldown {self.breaker.cooldown}s)",
                        attempts=attempts,
                        cause=last_error,
                    )
                attempts = attempt
                self.health.record_attempt(self.name)
                attempt_started = self.clock.now()
                try:
                    result = produce()
                    elapsed = self.clock.now() - attempt_started
                    if self.timeout is not None and elapsed > self.timeout:
                        raise SourceTimeoutError(
                            f"source {self.name!r} answered in"
                            f" {elapsed:.3f}s, over the"
                            f" {self.timeout:.3f}s timeout"
                        )
                    result = validate_answer(self.name, result)
                except SourceUnavailable:
                    # a nested resilient layer already gave up; don't retry
                    self.breaker.record_failure()
                    raise
                except SourceError as exc:
                    elapsed = self.clock.now() - attempt_started
                    self.breaker.record_failure()
                    self.health.record_failure(self.name, str(exc), elapsed)
                    last_error = exc
                    if attempt >= self.policy.max_attempts:
                        break
                    delay = self.policy.delay(attempt, self._rng)
                    if not self.policy.within_deadline(
                        self.clock.now() - started, delay
                    ):
                        break
                    self.health.record_retry(self.name)
                    self.clock.sleep(delay)
                    continue
                self.breaker.record_success()
                self.health.record_success(
                    self.name, self.clock.now() - attempt_started
                )
                return result
            raise SourceUnavailable(
                self.name,
                f"source {self.name!r} unavailable after {attempts}"
                f" attempt(s): {last_error}",
                attempts=attempts,
                cause=last_error,
            ) from last_error
        finally:
            # every exit path publishes this call's figures for the
            # execution context (thread-local, so concurrent dispatcher
            # workers never see each other's calls)
            self._local.stats = (attempts, self.clock.now() - started)

    # -- the Source interface ----------------------------------------------

    def answer(self, query: Rule) -> list[OEMObject]:
        return self._call(lambda: self.inner.answer(query))

    def export(self) -> Sequence[OEMObject]:
        return self._call(lambda: list(self.inner.export()))

    def reset_counters(self) -> None:
        self.inner.reset_counters()

    def stats(self) -> dict[str, object]:
        stats = dict(self.inner.stats())
        status = self.health.status(self.name)
        stats.update(
            resilient_attempts=status.attempts,
            resilient_failures=status.failures,
            resilient_rejections=status.rejections,
            breaker_state=status.breaker_state,
        )
        return stats


@dataclass(frozen=True)
class ResilienceConfig:
    """One bundle of knobs for every source behind a mediator."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    timeout: float | None = None
    breaker_threshold: int = 5
    breaker_cooldown: float = 30.0
    seed: int = 0


class ResilienceManager:
    """Builds and caches one :class:`ResilientSource` per source name.

    All wrappers share the manager's clock and :class:`HealthRegistry`;
    each gets its own breaker and seeded jitter stream (derived from
    the config seed and the source name, so schedules stay stable as
    sources come and go).
    """

    def __init__(
        self,
        config: ResilienceConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.config = config or ResilienceConfig()
        self.clock = clock or MonotonicClock()
        self.health = HealthRegistry()
        self._wrapped: dict[str, ResilientSource] = {}

    def wrap(self, source: Source) -> ResilientSource:
        wrapped = self._wrapped.get(source.name)
        if wrapped is None or wrapped.inner is not source:
            config = self.config
            wrapped = ResilientSource(
                source,
                policy=config.retry,
                breaker=CircuitBreaker(
                    failure_threshold=config.breaker_threshold,
                    cooldown=config.breaker_cooldown,
                    clock=self.clock,
                ),
                timeout=config.timeout,
                clock=self.clock,
                health=self.health,
                seed=config.seed ^ (zlib.crc32(source.name.encode()) & 0xFFFF),
            )
            self._wrapped[source.name] = wrapped
        return wrapped

    def breaker_for(self, name: str) -> CircuitBreaker | None:
        wrapped = self._wrapped.get(name)
        return wrapped.breaker if wrapped else None

    def describe(self) -> str:
        """One-paragraph policy summary for ``Mediator.explain``."""
        retry = self.config.retry
        timeout = (
            f"{self.config.timeout:g}s" if self.config.timeout else "none"
        )
        deadline = f"{retry.deadline:g}s" if retry.deadline else "none"
        return (
            f"retries: {retry.max_attempts - 1} (backoff"
            f" {retry.base_delay:g}s x{retry.multiplier:g},"
            f" cap {retry.max_delay:g}s, deadline {deadline});"
            f" timeout: {timeout};"
            f" breaker: open after {self.config.breaker_threshold}"
            f" failure(s), cooldown {self.config.breaker_cooldown:g}s"
        )

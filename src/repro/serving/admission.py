"""Admission control: the gate in front of ``Mediator.query()``.

A mediator shared by many concurrent callers needs three protections
before it can front real traffic:

* a **bounded in-flight limit** — at most ``limit`` queries execute at
  once, where ``limit`` is adjusted by the
  :class:`~repro.serving.limiter.AdaptiveConcurrencyLimiter` (AIMD on
  observed service latency) between ``min_concurrent`` and
  ``max_concurrent``;
* a **bounded wait queue** — up to ``max_queue_depth`` queries wait for
  a slot, highest priority first (FIFO within a priority); everything
  beyond that is *shed immediately* with a structured
  :class:`QueryRejected` carrying the queue depth and a retry-after
  hint, instead of timing out invisibly inside the engine;
* **deadline-aware rejection** — a query whose own wall-clock budget
  cannot clear the *predicted* queue wait (queue position x EWMA
  service time / limit) is shed at arrival: it would only have burned
  a slot to miss its deadline anyway.  The wait a query actually spends
  queued is charged against its budget by the mediator, so "admitted"
  means "can still finish in time".

Per-tenant quotas bound how much of the mediator one tenant may occupy
(in-flight + queued), so a single noisy tenant cannot crowd out the
rest.  Every shed and every completion feeds the attached
:class:`~repro.serving.brownout.BrownoutController` a pressure sample,
so optional work is shed *before* queries are.

Accounting invariant (asserted by the chaos harness): once no query is
in flight or queued, ``submitted == admitted + rejected`` and
``admitted == completed``.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Mapping

from repro.reliability.clock import Clock, MonotonicClock
from repro.serving.brownout import BrownoutConfig, BrownoutController
from repro.serving.limiter import AdaptiveConcurrencyLimiter, FixedLimiter

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionTicket",
    "QueryRejected",
]

#: Weight of the newest completion in the service-time moving average.
_SERVICE_ALPHA = 0.3

#: Rejection reasons (the ``reason`` field of :class:`QueryRejected`).
REASONS = ("queue_full", "deadline", "tenant", "timeout", "closed")


class QueryRejected(RuntimeError):
    """The admission controller shed this query instead of running it.

    Structured for programmatic backpressure: ``reason`` is one of
    ``queue_full`` / ``deadline`` / ``tenant`` / ``timeout`` /
    ``closed``, ``queue_depth`` is the wait-queue length observed at
    rejection, and ``retry_after`` (seconds, possibly ``None``) is the
    controller's estimate of when capacity frees up — the value an
    HTTP front end would put in a ``Retry-After`` header.
    """

    def __init__(
        self,
        reason: str,
        message: str,
        queue_depth: int = 0,
        retry_after: float | None = None,
        tenant: str | None = None,
        priority: int = 0,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.queue_depth = queue_depth
        self.retry_after = retry_after
        self.tenant = tenant
        self.priority = priority

    def render(self) -> str:
        hint = (
            f"; retry after ~{self.retry_after:.3f}s"
            if self.retry_after is not None
            else ""
        )
        return f"rejected ({self.reason}): {self} [queue={self.queue_depth}{hint}]"


@dataclass(frozen=True)
class AdmissionConfig:
    """Shape of the admission gate.

    * ``max_concurrent`` — ceiling on concurrently executing queries
      (the adaptive limiter moves below it, never above);
    * ``max_queue_depth`` — queries allowed to wait for a slot (0 =
      admit-or-shed, no queueing);
    * ``queue_timeout`` — longest any query may wait before it is shed
      (None = bounded only by its own deadline);
    * ``tenant_quota`` — default per-tenant cap on in-flight + queued
      queries (None = no per-tenant limit);
    * ``tenant_quotas`` — per-tenant overrides of ``tenant_quota``;
    * ``adaptive`` — AIMD the in-flight limit between
      ``min_concurrent`` and ``max_concurrent`` (False pins it);
    * ``target_latency`` — explicit service-time target for the
      limiter (None derives one from the observed baseline);
    * ``brownout`` — attach a brownout ladder shedding optional work
      under queue pressure (see :mod:`repro.serving.brownout`).
    """

    max_concurrent: int = 8
    max_queue_depth: int = 32
    queue_timeout: float | None = None
    tenant_quota: int | None = None
    tenant_quotas: Mapping[str, int] = field(default_factory=dict)
    adaptive: bool = True
    min_concurrent: int = 1
    target_latency: float | None = None
    brownout: bool | BrownoutConfig = True

    def __post_init__(self) -> None:
        if not isinstance(self.max_concurrent, int) or self.max_concurrent < 1:
            raise ValueError(
                "max_concurrent must be a positive integer,"
                f" got {self.max_concurrent!r}"
            )
        if not isinstance(self.max_queue_depth, int) or self.max_queue_depth < 0:
            raise ValueError(
                "max_queue_depth must be a non-negative integer,"
                f" got {self.max_queue_depth!r}"
            )
        if self.queue_timeout is not None and self.queue_timeout <= 0:
            raise ValueError(
                f"queue_timeout must be positive, got {self.queue_timeout!r}"
            )
        if not isinstance(self.min_concurrent, int) or self.min_concurrent < 1:
            raise ValueError(
                "min_concurrent must be a positive integer,"
                f" got {self.min_concurrent!r}"
            )
        if self.min_concurrent > self.max_concurrent:
            raise ValueError(
                f"min_concurrent {self.min_concurrent} above"
                f" max_concurrent {self.max_concurrent}"
            )
        quotas = dict(self.tenant_quotas)
        for tenant, quota in [("*", self.tenant_quota)] + list(quotas.items()):
            if quota is not None and (not isinstance(quota, int) or quota < 1):
                raise ValueError(
                    f"tenant quota for {tenant!r} must be a positive"
                    f" integer, got {quota!r}"
                )
        if self.target_latency is not None and self.target_latency <= 0:
            raise ValueError(
                f"target_latency must be positive,"
                f" got {self.target_latency!r}"
            )


class _Waiter:
    __slots__ = ("priority", "tenant", "event", "admitted", "abandoned",
                 "enqueued")

    def __init__(self, priority: int, tenant: str | None, enqueued: float):
        self.priority = priority
        self.tenant = tenant
        self.event = threading.Event()
        self.admitted = False
        self.abandoned = False
        self.enqueued = enqueued


class AdmissionTicket:
    """Proof of admission; ``complete()`` returns the slot.

    ``waited`` is the queue time in seconds (0 for immediate
    admission) — the mediator charges it against the query's deadline
    budget so end-to-end latency, not just execution, honors the
    budget.
    """

    __slots__ = ("_controller", "tenant", "priority", "waited", "started",
                 "_done")

    def __init__(
        self,
        controller: "AdmissionController",
        tenant: str | None,
        priority: int,
        waited: float,
        started: float,
    ) -> None:
        self._controller = controller
        self.tenant = tenant
        self.priority = priority
        self.waited = waited
        self.started = started
        self._done = False

    def complete(self, ok: bool = True) -> None:
        """Release the slot (idempotent); feeds the limiter."""
        if self._done:
            return
        self._done = True
        self._controller._complete(self, ok)


class AdmissionController:
    """The concurrency gate: bounded queue, quotas, adaptive limit."""

    def __init__(
        self,
        config: AdmissionConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.config = config or AdmissionConfig()
        self.clock = clock or MonotonicClock()
        config = self.config
        if config.adaptive and config.max_concurrent > config.min_concurrent:
            self.limiter = AdaptiveConcurrencyLimiter(
                initial=config.max_concurrent,
                min_limit=config.min_concurrent,
                max_limit=config.max_concurrent,
                target_latency=config.target_latency,
                clock=self.clock,
            )
        else:
            self.limiter = FixedLimiter(config.max_concurrent)
        self.brownout: BrownoutController | None = None
        if config.brownout:
            self.brownout = BrownoutController(
                config.brownout
                if isinstance(config.brownout, BrownoutConfig)
                else None,
                clock=self.clock,
            )
        self._lock = threading.Lock()
        self._queue: list[tuple[int, int, _Waiter]] = []
        self._ticket_seq = itertools.count()
        self._inflight = 0
        self._tenant_load: dict[str | None, int] = {}
        self._service_ewma: float | None = None
        self._closed = False
        # counters (all under _lock)
        self.submitted = 0
        self.admitted = 0
        self.completed = 0
        self.rejected: dict[str, int] = {}
        self.queue_wait_total = 0.0
        self.queue_peak = 0

    # -- the gate ----------------------------------------------------------

    def admit(
        self,
        tenant: str | None = None,
        priority: int = 0,
        deadline: float | None = None,
    ) -> AdmissionTicket:
        """Block until a slot frees, or shed with :class:`QueryRejected`.

        ``deadline`` is the query's remaining wall-clock budget in
        seconds (None = unbounded): arrivals whose predicted queue wait
        exceeds it are shed immediately, and a queued query that
        reaches it is shed with reason ``timeout``.
        """
        now = self.clock.now()
        with self._lock:
            self.submitted += 1
            if self._closed:
                self._shed_locked("closed", tenant, priority,
                                  "mediator is closed")
            quota = self.config.tenant_quotas.get(
                tenant, self.config.tenant_quota
            ) if tenant is not None else self.config.tenant_quota
            if tenant is not None or self.config.tenant_quota is not None:
                load = self._tenant_load.get(tenant, 0)
                if quota is not None and load >= quota:
                    self._shed_locked(
                        "tenant", tenant, priority,
                        f"tenant {tenant!r} already has {load} quer(ies)"
                        f" in flight or queued (quota {quota})",
                        retry_after=self._service_ewma,
                    )
            limit = self.limiter.limit
            if self._inflight < limit and not self._queue:
                self._inflight += 1
                self._tenant_load[tenant] = (
                    self._tenant_load.get(tenant, 0) + 1
                )
                self.admitted += 1
                self._observe_pressure_locked()
                return AdmissionTicket(self, tenant, priority, 0.0, now)
            depth = self._queue_depth_locked()
            if depth >= self.config.max_queue_depth:
                self._shed_locked(
                    "queue_full", tenant, priority,
                    f"wait queue full ({depth} queued,"
                    f" {self._inflight} in flight)",
                    retry_after=self._predicted_wait_locked(depth),
                )
            predicted = self._predicted_wait_locked(depth)
            if deadline is not None and predicted > deadline:
                self._shed_locked(
                    "deadline", tenant, priority,
                    f"predicted queue wait {predicted:.3f}s exceeds the"
                    f" remaining deadline budget {deadline:.3f}s",
                    retry_after=predicted,
                )
            waiter = _Waiter(priority, tenant, now)
            heapq.heappush(
                self._queue, (-priority, next(self._ticket_seq), waiter)
            )
            self._tenant_load[tenant] = self._tenant_load.get(tenant, 0) + 1
            self.queue_peak = max(self.queue_peak, depth + 1)
            self._observe_pressure_locked()
        timeout = self.config.queue_timeout
        if deadline is not None:
            timeout = deadline if timeout is None else min(timeout, deadline)
        woken = waiter.event.wait(timeout)
        with self._lock:
            if waiter.admitted:
                waited = self.clock.now() - waiter.enqueued
                self.admitted += 1
                self.queue_wait_total += waited
                self._observe_pressure_locked()
                return AdmissionTicket(
                    self, tenant, priority, waited, waiter.enqueued
                )
            # timed out (or closed): leave the heap entry to be
            # skipped lazily, give the tenant slot back, and shed
            waiter.abandoned = True
            self._tenant_load[tenant] = self._tenant_load.get(tenant, 1) - 1
            if self._closed and not woken:
                reason, note = "closed", "mediator closed while queued"
            elif self._closed:
                reason, note = "closed", "mediator closed while queued"
            else:
                reason, note = "timeout", (
                    f"queued {self.clock.now() - waiter.enqueued:.3f}s"
                    " without a free slot"
                )
            self._shed_locked(
                reason, tenant, priority, note,
                retry_after=self._service_ewma,
            )
        raise AssertionError("unreachable")  # pragma: no cover

    def _complete(self, ticket: AdmissionTicket, ok: bool) -> None:
        duration = self.clock.now() - ticket.started - ticket.waited
        with self._lock:
            self._inflight -= 1
            self.completed += 1
            load = self._tenant_load.get(ticket.tenant, 1) - 1
            if load <= 0:
                self._tenant_load.pop(ticket.tenant, None)
            else:
                self._tenant_load[ticket.tenant] = load
            if duration >= 0.0:
                if self._service_ewma is None:
                    self._service_ewma = duration
                else:
                    self._service_ewma += _SERVICE_ALPHA * (
                        duration - self._service_ewma
                    )
            self.limiter.observe(max(duration, 0.0), ok)
            self._wake_waiters_locked()
            self._observe_pressure_locked()

    def close(self) -> None:
        """Reject new arrivals and wake every queued waiter as shed."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            while self._queue:
                _, _, waiter = heapq.heappop(self._queue)
                if not waiter.abandoned and not waiter.admitted:
                    waiter.event.set()

    # -- internals (all called under self._lock) ---------------------------

    def _queue_depth_locked(self) -> int:
        return sum(
            1
            for _, _, waiter in self._queue
            if not waiter.abandoned and not waiter.admitted
        )

    def _predicted_wait_locked(self, depth: int) -> float:
        """Expected queue wait for an arrival behind ``depth`` waiters."""
        service = self._service_ewma
        if service is None:
            return 0.0
        return (depth + 1) * service / max(self.limiter.limit, 1)

    def _wake_waiters_locked(self) -> None:
        limit = self.limiter.limit
        while self._inflight < limit and self._queue:
            _, _, waiter = heapq.heappop(self._queue)
            if waiter.abandoned or waiter.admitted:
                continue
            waiter.admitted = True
            self._inflight += 1
            waiter.event.set()

    def _observe_pressure_locked(self) -> None:
        if self.brownout is not None:
            self.brownout.observe(self._pressure_locked())

    def _pressure_locked(self) -> float:
        capacity = max(1, self.config.max_queue_depth)
        return min(1.0, self._queue_depth_locked() / capacity)

    def _shed_locked(
        self,
        reason: str,
        tenant: str | None,
        priority: int,
        message: str,
        retry_after: float | None = None,
    ) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        if self.brownout is not None:
            # every shed is the strongest possible pressure signal
            self.brownout.observe(1.0)
        raise QueryRejected(
            reason,
            message,
            queue_depth=self._queue_depth_locked(),
            retry_after=retry_after,
            tenant=tenant,
            priority=priority,
        )

    # -- introspection -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._queue_depth_locked()

    @property
    def shed(self) -> int:
        """Total queries rejected, over every reason."""
        with self._lock:
            return sum(self.rejected.values())

    def snapshot(self) -> dict[str, object]:
        """One dict for ``health_snapshot()['serving']``."""
        with self._lock:
            snapshot: dict[str, object] = {
                "limit": self.limiter.limit,
                "inflight": self._inflight,
                "queue_depth": self._queue_depth_locked(),
                "queue_peak": self.queue_peak,
                "submitted": self.submitted,
                "admitted": self.admitted,
                "completed": self.completed,
                "rejected": dict(self.rejected),
                "shed": sum(self.rejected.values()),
                "service_ewma_s": self._service_ewma,
                "queue_wait_total_s": round(self.queue_wait_total, 6),
                "closed": self._closed,
            }
        if self.brownout is not None:
            snapshot["brownout"] = self.brownout.stats()
        return snapshot

    def describe(self) -> str:
        """One-paragraph summary for ``Mediator.explain``."""
        with self._lock:
            shed = sum(self.rejected.values())
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.rejected.items())
            )
            lines = [
                f"admission: {self._inflight} in flight (limit"
                f" {self.limiter.limit} of {self.config.max_concurrent}),"
                f" {self._queue_depth_locked()} queued (max"
                f" {self.config.max_queue_depth}, peak {self.queue_peak})",
                f"traffic: {self.submitted} submitted, {self.admitted}"
                f" admitted, {self.completed} completed, {shed} shed"
                + (f" ({reasons})" if reasons else ""),
                f"limiter: {self.limiter.describe()}",
            ]
        if self.brownout is not None:
            lines.append(self.brownout.describe())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"AdmissionController(limit={self.limiter.limit},"
            f" inflight={self._inflight}, shed={self.shed})"
        )

"""Per-source bulkheads: one slow source cannot take every thread.

The dispatcher's worker pool is shared by every source and every
concurrent query.  Without isolation, one stalled source soaks up
workers until every stage of every query is blocked behind it — the
classic thread-pool starvation failure.  A bulkhead caps how many wire
calls may be in flight *per source*; a call that cannot get a permit
within ``max_wait`` seconds fails fast with
:class:`BulkheadSaturated` instead of parking a worker thread.

``BulkheadSaturated`` is a :class:`~repro.wrappers.base.SourceError`,
so the existing failure machinery applies unchanged: a degrade-mode
mediator substitutes an empty answer plus a structured warning, strict
mode surfaces the error.  Saturation is *load shedding at the source
tier* — it deliberately trades completeness for liveness, so bulkheads
are opt-in (``Mediator(bulkheads=...)``) and sized by the operator.

The registry is thread-safe; permits are plain semaphores, and stats
(acquired, saturations, peak concurrency per source) feed
``Mediator.explain`` and the metrics registry.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, Mapping

from repro.wrappers.base import SourceError

__all__ = ["BulkheadRegistry", "BulkheadSaturated"]


class BulkheadSaturated(SourceError):
    """No bulkhead permit for ``source`` within the configured wait."""

    def __init__(self, source: str, limit: int, max_wait: float) -> None:
        wait = f" within {max_wait:g}s" if max_wait > 0 else ""
        super().__init__(
            f"bulkhead for source {source!r} saturated:"
            f" {limit} call(s) already in flight{wait}"
        )
        self.source = source
        self.limit = limit
        self.max_wait = max_wait


class _Bulkhead:
    __slots__ = ("limit", "semaphore", "active", "peak", "acquired",
                 "saturations")

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.semaphore = threading.Semaphore(limit)
        self.active = 0
        self.peak = 0
        self.acquired = 0
        self.saturations = 0


class BulkheadRegistry:
    """Per-source in-flight caps with fail-fast acquisition."""

    def __init__(
        self,
        max_per_source: int = 2,
        max_wait: float = 0.0,
        limits: Mapping[str, int] | None = None,
    ) -> None:
        if not isinstance(max_per_source, int) or max_per_source < 1:
            raise ValueError(
                "max_per_source must be a positive integer,"
                f" got {max_per_source!r}"
            )
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait!r}")
        for name, limit in (limits or {}).items():
            if not isinstance(limit, int) or limit < 1:
                raise ValueError(
                    f"bulkhead limit for {name!r} must be a positive"
                    f" integer, got {limit!r}"
                )
        self.max_per_source = max_per_source
        self.max_wait = max_wait
        self.limits = dict(limits or {})
        self._bulkheads: dict[str, _Bulkhead] = {}
        self._lock = threading.Lock()

    def _bulkhead(self, source: str) -> _Bulkhead:
        with self._lock:
            bulkhead = self._bulkheads.get(source)
            if bulkhead is None:
                limit = self.limits.get(source, self.max_per_source)
                bulkhead = self._bulkheads[source] = _Bulkhead(limit)
            return bulkhead

    @contextlib.contextmanager
    def permit(self, source: str) -> Iterator[None]:
        """Hold one in-flight slot for ``source`` for the ``with`` body.

        Raises :class:`BulkheadSaturated` when the source's slots stay
        full past ``max_wait`` seconds (0 = fail immediately).
        """
        bulkhead = self._bulkhead(source)
        if self.max_wait > 0:
            ok = bulkhead.semaphore.acquire(timeout=self.max_wait)
        else:
            ok = bulkhead.semaphore.acquire(blocking=False)
        if not ok:
            with self._lock:
                bulkhead.saturations += 1
            raise BulkheadSaturated(
                source, bulkhead.limit, self.max_wait
            )
        with self._lock:
            bulkhead.acquired += 1
            bulkhead.active += 1
            bulkhead.peak = max(bulkhead.peak, bulkhead.active)
        try:
            yield
        finally:
            with self._lock:
                bulkhead.active -= 1
            bulkhead.semaphore.release()

    @property
    def total_saturations(self) -> int:
        with self._lock:
            return sum(b.saturations for b in self._bulkheads.values())

    def stats(self) -> dict[str, dict[str, int]]:
        with self._lock:
            return {
                source: {
                    "limit": b.limit,
                    "active": b.active,
                    "peak": b.peak,
                    "acquired": b.acquired,
                    "saturations": b.saturations,
                }
                for source, b in sorted(self._bulkheads.items())
            }

    def describe(self) -> str:
        stats = self.stats()
        if not stats:
            return (
                f"bulkheads: max {self.max_per_source}/source,"
                " no calls yet"
            )
        parts = [
            f"{source}: {s['active']}/{s['limit']} active"
            f" (peak {s['peak']}, {s['saturations']} saturation(s))"
            for source, s in stats.items()
        ]
        return "bulkheads: " + "; ".join(parts)

    def __repr__(self) -> str:
        return (
            f"BulkheadRegistry(max_per_source={self.max_per_source},"
            f" max_wait={self.max_wait})"
        )

"""Adaptive concurrency limiting: AIMD on observed service latency.

The admission controller needs one number — how many queries may run at
once — and the right value moves with load: when the machine (or the
sources behind the mediator) slow down, running *fewer* queries
concurrently raises goodput, because every admitted query finishes
inside its deadline instead of all of them thrashing together.

:class:`AdaptiveConcurrencyLimiter` is the classic additive-increase /
multiplicative-decrease loop over a latency signal:

* a **baseline** tracks the uncontended service time — it snaps down to
  every new minimum and drifts up slowly, so a regime change (sources
  genuinely got slower) is eventually accepted as the new normal;
* completions faster than ``tolerance x baseline`` (or an explicit
  ``target_latency``) *additively* raise the limit by ``1/limit`` —
  one extra slot per limit-many good completions, the TCP-style probe;
* completions slower than the target (or failed ones) *multiplicatively*
  cut the limit by ``backoff``, rate-limited to once per ``cooldown``
  seconds so one burst of already-in-flight stragglers cannot collapse
  the limit to the floor in a single wave.

The limiter never blocks and never sleeps; it only does arithmetic
under a small lock.  Time comes from the injectable
:class:`~repro.reliability.clock.Clock`, so tests drive the cooldown
with a :class:`~repro.reliability.clock.ManualClock`.
"""

from __future__ import annotations

import threading

from repro.reliability.clock import Clock, MonotonicClock

__all__ = ["AdaptiveConcurrencyLimiter"]

#: Fraction the baseline drifts toward a slower observation (per
#: observation) — lets the limiter accept a genuinely slower regime.
_BASELINE_DRIFT = 0.02


class AdaptiveConcurrencyLimiter:
    """AIMD concurrency limit driven by observed completion latency."""

    def __init__(
        self,
        initial: int,
        min_limit: int = 1,
        max_limit: int | None = None,
        target_latency: float | None = None,
        tolerance: float = 2.0,
        backoff: float = 0.7,
        increase: float = 1.0,
        cooldown: float = 0.1,
        clock: Clock | None = None,
    ) -> None:
        if not isinstance(initial, int) or initial < 1:
            raise ValueError(
                f"initial limit must be a positive integer, got {initial!r}"
            )
        if not isinstance(min_limit, int) or min_limit < 1:
            raise ValueError(
                f"min_limit must be a positive integer, got {min_limit!r}"
            )
        if max_limit is not None and max_limit < min_limit:
            raise ValueError(
                f"max_limit {max_limit!r} below min_limit {min_limit!r}"
            )
        if min_limit > initial:
            raise ValueError(
                f"min_limit {min_limit!r} above initial limit {initial!r}"
            )
        if max_limit is not None and initial > max_limit:
            raise ValueError(
                f"initial limit {initial!r} above max_limit {max_limit!r}"
            )
        if not 0.0 < backoff < 1.0:
            raise ValueError(f"backoff must be in (0, 1), got {backoff!r}")
        if tolerance < 1.0:
            raise ValueError(
                f"tolerance must be at least 1.0, got {tolerance!r}"
            )
        if target_latency is not None and target_latency <= 0:
            raise ValueError(
                f"target_latency must be positive, got {target_latency!r}"
            )
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.target_latency = target_latency
        self.tolerance = tolerance
        self.backoff = backoff
        self.increase = increase
        self.cooldown = cooldown
        self.clock = clock or MonotonicClock()
        self._limit = float(initial)
        self._baseline: float | None = None
        self._last_decrease: float | None = None
        self._lock = threading.Lock()
        self.observations = 0
        self.increases = 0
        self.decreases = 0

    @property
    def limit(self) -> int:
        """The current in-flight ceiling (always >= ``min_limit``)."""
        return max(self.min_limit, int(self._limit))

    @property
    def baseline(self) -> float | None:
        """The tracked uncontended service time (None before data)."""
        return self._baseline

    def observe(self, latency: float, ok: bool = True) -> int:
        """Feed one completed query's service time; returns the limit."""
        with self._lock:
            self.observations += 1
            if ok and latency >= 0.0:
                if self._baseline is None or latency < self._baseline:
                    self._baseline = latency
                else:
                    self._baseline += _BASELINE_DRIFT * (
                        latency - self._baseline
                    )
            target = self.target_latency
            if target is None:
                target = (
                    self._baseline * self.tolerance
                    if self._baseline is not None
                    else None
                )
            slow = (not ok) or (target is not None and latency > target)
            if slow:
                now = self.clock.now()
                if (
                    self._last_decrease is None
                    or now - self._last_decrease >= self.cooldown
                ):
                    self._last_decrease = now
                    self._limit = max(
                        float(self.min_limit), self._limit * self.backoff
                    )
                    self.decreases += 1
            else:
                ceiling = (
                    float(self.max_limit)
                    if self.max_limit is not None
                    else self._limit + self.increase
                )
                if self._limit < ceiling:
                    self._limit = min(
                        ceiling,
                        self._limit + self.increase / max(self._limit, 1.0),
                    )
                    self.increases += 1
            return self.limit

    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "limit": self.limit,
                "raw_limit": round(self._limit, 3),
                "baseline_s": self._baseline,
                "observations": self.observations,
                "increases": self.increases,
                "decreases": self.decreases,
            }

    def describe(self) -> str:
        baseline = (
            f"{self._baseline * 1e3:.1f}ms"
            if self._baseline is not None
            else "unknown"
        )
        bounds = f"[{self.min_limit}, {self.max_limit or 'inf'}]"
        return (
            f"limit={self.limit} {bounds}; baseline={baseline};"
            f" +{self.increases}/-{self.decreases} adjustments"
            f" over {self.observations} completion(s)"
        )

    def __repr__(self) -> str:
        return (
            f"AdaptiveConcurrencyLimiter(limit={self.limit},"
            f" min={self.min_limit}, max={self.max_limit})"
        )


class FixedLimiter:
    """A non-adaptive stand-in sharing the limiter interface."""

    def __init__(self, limit: int) -> None:
        if not isinstance(limit, int) or limit < 1:
            raise ValueError(
                f"limit must be a positive integer, got {limit!r}"
            )
        self._limit = limit
        self.observations = 0

    @property
    def limit(self) -> int:
        return self._limit

    @property
    def baseline(self) -> float | None:
        return None

    def observe(self, latency: float, ok: bool = True) -> int:
        self.observations += 1
        return self._limit

    def stats(self) -> dict[str, object]:
        return {"limit": self._limit, "observations": self.observations}

    def describe(self) -> str:
        return f"limit={self._limit} (fixed)"

    def __repr__(self) -> str:
        return f"FixedLimiter(limit={self._limit})"

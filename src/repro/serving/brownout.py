"""Brownout: shed *optional* work under pressure, restore it after.

When the admission queue starts backing up, rejecting queries is the
last resort — first the mediator can stop doing work that improves
quality-of-service but is not needed for correctness.  The
:class:`BrownoutController` walks a fixed ladder of such features, one
rung per escalation:

1. ``hedging`` — speculative duplicate source calls double wire load
   precisely when the system can least afford it;
2. ``tracing`` — span trees are pure observability; metrics stay on;
3. ``parallelism`` — per-query fan-out threads compete with *other
   queries* for the pool; browned-out queries run their stages inline
   (caching and single-flight stay on);
4. ``strict-budgets`` — budget violations clip answers (truncate mode)
   instead of aborting queries that already consumed resources.

Escalation is fast and recovery is slow (classic hysteresis): one rung
up per pressure observation at or above ``high_water``, one rung down
only after the pressure has stayed at or below ``low_water`` for
``hold`` seconds of continuous calm.  Pressure is a [0, 1] signal the
admission controller derives from its queue (queue depth over capacity,
with any shed event counting as full pressure).

The controller is passive: it never spawns threads or timers.  The
admission controller feeds it observations at admit/complete time, and
the mediator consults :meth:`allows` when assembling each query's
execution context.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.reliability.clock import Clock, MonotonicClock

__all__ = ["BrownoutConfig", "BrownoutController", "DEFAULT_LADDER"]

#: The shedding ladder, cheapest sacrifice first.
DEFAULT_LADDER: tuple[str, ...] = (
    "hedging",
    "tracing",
    "parallelism",
    "strict-budgets",
)


@dataclass(frozen=True)
class BrownoutConfig:
    """Thresholds and ladder for the brownout controller.

    * ``high_water`` — pressure at or above this escalates one rung;
    * ``low_water`` — pressure at or below this counts as calm;
    * ``hold`` — seconds of continuous calm before stepping down one
      rung (recovery is deliberately slower than escalation);
    * ``ladder`` — the features shed in order; level N disables the
      first N entries.
    """

    high_water: float = 0.75
    low_water: float = 0.25
    hold: float = 1.0
    ladder: tuple[str, ...] = field(default=DEFAULT_LADDER)

    def __post_init__(self) -> None:
        if not 0.0 < self.high_water <= 1.0:
            raise ValueError(
                f"high_water must be in (0, 1], got {self.high_water!r}"
            )
        if not 0.0 <= self.low_water < self.high_water:
            raise ValueError(
                "low_water must be in [0, high_water),"
                f" got {self.low_water!r}"
            )
        if self.hold < 0:
            raise ValueError(f"hold must be >= 0, got {self.hold!r}")
        if not self.ladder:
            raise ValueError("the brownout ladder needs at least one rung")


class BrownoutController:
    """Hysteretic ladder walker over a [0, 1] pressure signal."""

    def __init__(
        self,
        config: BrownoutConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.config = config or BrownoutConfig()
        self.clock = clock or MonotonicClock()
        self._level = 0
        self._calm_since: float | None = None
        self._lock = threading.Lock()
        self.escalations = 0
        self.recoveries = 0
        self.max_level = 0

    @property
    def level(self) -> int:
        """The current rung: 0 = full service, N = first N features shed."""
        return self._level

    @property
    def active(self) -> bool:
        return self._level > 0

    def observe(self, pressure: float) -> int:
        """Feed one pressure sample; returns the (possibly new) level."""
        config = self.config
        with self._lock:
            if pressure >= config.high_water:
                self._calm_since = None
                if self._level < len(config.ladder):
                    self._level += 1
                    self.escalations += 1
                    self.max_level = max(self.max_level, self._level)
            elif pressure <= config.low_water:
                now = self.clock.now()
                if self._calm_since is None:
                    self._calm_since = now
                elif (
                    self._level > 0
                    and now - self._calm_since >= config.hold
                ):
                    self._level -= 1
                    self.recoveries += 1
                    self._calm_since = now
            else:
                self._calm_since = None
            return self._level

    def allows(self, feature: str) -> bool:
        """Is ``feature`` still on?  Unknown features are always on."""
        level = self._level
        if level == 0:
            return True
        ladder = self.config.ladder
        return feature not in ladder[:level]

    def shed_features(self) -> tuple[str, ...]:
        """The features currently shed, cheapest first."""
        return self.config.ladder[: self._level]

    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "level": self._level,
                "max_level": self.max_level,
                "shed": list(self.shed_features()),
                "escalations": self.escalations,
                "recoveries": self.recoveries,
            }

    def describe(self) -> str:
        shed = ", ".join(self.shed_features()) or "none"
        return (
            f"brownout level {self._level}/{len(self.config.ladder)}"
            f" (shed: {shed}); {self.escalations} escalation(s),"
            f" {self.recoveries} recover(ies)"
        )

    def __repr__(self) -> str:
        return f"BrownoutController(level={self._level})"

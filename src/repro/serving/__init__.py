"""Overload resilience for concurrent multi-query serving.

This package is the layer between "one query is resilient" (retries,
budgets, deadlines, hedging — :mod:`repro.reliability`,
:mod:`repro.governor`) and "the *system* is resilient when hundreds of
queries arrive at once":

* :class:`AdmissionController` — bounded wait queue, per-tenant and
  priority quotas, deadline-aware shedding with structured
  :class:`QueryRejected`;
* :class:`AdaptiveConcurrencyLimiter` — AIMD in-flight limit driven by
  observed service latency;
* :class:`BulkheadRegistry` — per-source in-flight caps so one slow
  source cannot starve every other source's stages;
* :class:`BrownoutController` — hysteretic ladder shedding optional
  work (hedging, tracing, parallelism, strict budgets) under queue
  pressure and restoring it when load recedes.

Wire-up lives in :class:`repro.mediator.Mediator` via the
``admission=`` and ``bulkheads=`` keyword arguments.
"""

from repro.serving.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionTicket,
    QueryRejected,
)
from repro.serving.brownout import (
    DEFAULT_LADDER,
    BrownoutConfig,
    BrownoutController,
)
from repro.serving.bulkhead import BulkheadRegistry, BulkheadSaturated
from repro.serving.limiter import AdaptiveConcurrencyLimiter, FixedLimiter

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionTicket",
    "QueryRejected",
    "AdaptiveConcurrencyLimiter",
    "FixedLimiter",
    "BrownoutConfig",
    "BrownoutController",
    "DEFAULT_LADDER",
    "BulkheadRegistry",
    "BulkheadSaturated",
]

"""The Object Exchange Model (OEM) substrate.

Public surface of the OEM layer: the object model, oid machinery,
builders, structural comparison, traversal, and the textual
parser/printer used throughout the paper's figures.
"""

from repro.oem.model import (
    ATOMIC_TYPES,
    Atom,
    OEMError,
    OEMObject,
    OEMTypeError,
    SET_TYPE,
    infer_type,
)
from repro.oem.oid import Oid, OidGenerator, SemanticOid, fresh_oid
from repro.oem.builders import atom, from_python, obj, to_python
from repro.oem.compare import (
    eliminate_duplicates,
    is_subobject_set,
    key_computations,
    structural_hash,
    structural_key,
    structurally_equal,
)
from repro.oem.parser import OEMParseError, parse_oem, parse_one
from repro.oem.printer import format_forest, to_inline, to_text
from repro.oem.traverse import (
    count_objects,
    depth,
    descendants,
    find_all,
    find_by_label,
    paths_to,
    walk,
)

__all__ = [
    "ATOMIC_TYPES",
    "Atom",
    "OEMError",
    "OEMObject",
    "OEMParseError",
    "OEMTypeError",
    "Oid",
    "OidGenerator",
    "SET_TYPE",
    "SemanticOid",
    "atom",
    "count_objects",
    "depth",
    "descendants",
    "eliminate_duplicates",
    "find_all",
    "find_by_label",
    "format_forest",
    "fresh_oid",
    "from_python",
    "infer_type",
    "is_subobject_set",
    "key_computations",
    "obj",
    "parse_oem",
    "parse_one",
    "paths_to",
    "structural_hash",
    "structural_key",
    "structurally_equal",
    "to_inline",
    "to_python",
    "to_text",
    "walk",
]

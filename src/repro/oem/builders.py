"""Ergonomic constructors for OEM objects.

The raw :class:`~repro.oem.model.OEMObject` constructor is explicit but
verbose.  These helpers cover the common cases:

* :func:`atom` — one atomic object;
* :func:`obj` — one set object from keyword/positional sub-objects;
* :func:`from_python` — convert nested dicts/lists/atoms wholesale;
* :func:`to_python` — the inverse, for client-side consumption.

>>> person = obj('person', atom('name', 'Joe Chung'), atom('dept', 'CS'))
>>> person.get('dept')
'CS'
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.oem.model import Atom, OEMObject, SET_TYPE
from repro.oem.oid import Oid

__all__ = ["atom", "obj", "from_python", "to_python"]


def atom(
    label: str, value: Atom, type_: str | None = None, oid: str | None = None
) -> OEMObject:
    """Create one atomic OEM object.

    >>> atom('year', 3)
    <..., year, integer, 3>
    """
    return OEMObject(label, value, type_, oid)


def obj(
    label: str,
    *children: OEMObject,
    oid: str | Oid | None = None,
) -> OEMObject:
    """Create one set-valued OEM object from its sub-objects."""
    return OEMObject(label, children, SET_TYPE, oid)


def from_python(label: str, value: object) -> OEMObject:
    """Convert a nested Python structure into an OEM object.

    * ``Mapping`` becomes a set object with one sub-object per key;
    * ``list``/``tuple`` becomes a set object whose members all carry the
      singular-ish label ``item`` unless they are ``(label, value)`` pairs;
    * atoms become atomic objects.

    >>> o = from_python('person', {'name': 'Ann', 'year': 2})
    >>> sorted(c.label for c in o.children)
    ['name', 'year']
    """
    if isinstance(value, Mapping):
        children = [from_python(str(key), sub) for key, sub in value.items()]
        return OEMObject(label, children, SET_TYPE)
    if isinstance(value, (list, tuple, set, frozenset)):
        children = []
        for member in value:
            if (
                isinstance(member, tuple)
                and len(member) == 2
                and isinstance(member[0], str)
            ):
                children.append(from_python(member[0], member[1]))
            else:
                children.append(from_python("item", member))
        return OEMObject(label, children, SET_TYPE)
    if isinstance(value, OEMObject):
        return value.with_label(label)
    return OEMObject(label, value)


def to_python(obj_: OEMObject) -> object:
    """Convert an OEM object back into plain Python data.

    Set objects become dicts keyed by label; when several sub-objects
    share a label their values are collected in a list (OEM allows it).
    """
    if obj_.is_atomic:
        return obj_.value
    result: dict[str, object] = {}
    for child in obj_.children:
        converted = to_python(child)
        if child.label in result:
            existing = result[child.label]
            if isinstance(existing, list):
                existing.append(converted)
            else:
                result[child.label] = [existing, converted]
        else:
            result[child.label] = converted
    return result


def _labels(children: Iterable[OEMObject]) -> list[str]:
    return [c.label for c in children]

"""Serialization of OEM objects back into the paper's textual notation.

Two styles are provided:

* :func:`to_text` — the *reference* style of the paper's figures: every
  object on its own line, set values listing sub-object oids, sub-objects
  indented under their parent, groups terminated by ``;``.
* :func:`to_inline` — a compact single-expression style with sub-objects
  written inside the braces (handy in tests and logs).

Round-trip property: ``parse_oem(to_text(objs))`` is structurally equal
to ``objs`` (exercised by the property-based tests).
"""

from __future__ import annotations

from typing import Iterable

from repro.oem.model import OEMObject

__all__ = ["to_text", "to_inline", "render_value", "format_forest"]


def render_value(obj: OEMObject) -> str:
    """Render an atomic value the way the paper writes it."""
    value = obj.value
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "null"
    return str(value)


def _object_line(obj: OEMObject) -> str:
    if obj.is_set:
        refs = ",".join(str(child.oid) for child in obj.children)
        return f"<{obj.oid}, {obj.label}, set, {{{refs}}}>"
    return f"<{obj.oid}, {obj.label}, {obj.type}, {render_value(obj)}>"


def to_text(roots: Iterable[OEMObject], indent: str = "  ") -> str:
    """Serialize a forest in the paper's indented reference style.

    A *shared* sub-object (two parents referencing the same oid — OEM
    structures are DAGs, not trees) is defined once, at its first
    occurrence; later parents just reference its oid, keeping the text
    reparseable.

    >>> from repro.oem.builders import atom, obj
    >>> print(to_text([obj('p', atom('n', 'Joe', oid='&n'), oid='&p')]))
    <&p, p, set, {&n}>
      <&n, n, string, 'Joe'>
    ;
    """
    lines: list[str] = []
    defined: set[str] = set()

    def emit(obj_: OEMObject, level: int) -> None:
        if obj_.oid.text in defined:
            return  # already defined above; the parent's {&ref} suffices
        defined.add(obj_.oid.text)
        lines.append(indent * level + _object_line(obj_))
        for child in obj_.children:
            emit(child, level + 1)

    for root in roots:
        emit(root, 0)
        lines.append(";")
    return "\n".join(lines)


def to_inline(obj: OEMObject, with_oid: bool = False) -> str:
    """Serialize one object as a single nested expression."""
    prefix = f"{obj.oid}, " if with_oid else ""
    if obj.is_set:
        inner = " ".join(to_inline(c, with_oid) for c in obj.children)
        return f"<{prefix}{obj.label} {{{inner}}}>"
    return f"<{prefix}{obj.label} {render_value(obj)}>"


def format_forest(roots: Iterable[OEMObject]) -> str:
    """A human-oriented display of a forest: inline style, one per line."""
    return "\n".join(to_inline(root) for root in roots)

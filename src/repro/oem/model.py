"""The Object Exchange Model (OEM).

OEM is the self-describing data model of the TSIMMIS project
(Papakonstantinou, Garcia-Molina, Widom, ICDE 1995) on which MedMaker
operates.  Every piece of data is an *object* with four components:

``<object-id, label, type, value>``

* the **object-id** links objects to their sub-objects and gives object
  identity (it may also be a *semantic* object-id, see
  :mod:`repro.oem.oid`);
* the **label** is a string that explains the object's meaning to the
  application or end user;
* the **type** is either an atomic type (``string``, ``integer``, ...) or
  ``set``;
* the **value** is an atom of the stated type, or — for ``set`` objects — a
  collection of sub-objects.

OEM deliberately forces *no* regularity on data: two sibling objects with
the same label may have entirely different sub-object structures.  This is
what lets MedMaker integrate semi-structured and schema-evolving sources.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from repro.oem.oid import Oid, fresh_oid

__all__ = [
    "OEMObject",
    "Atom",
    "ATOMIC_TYPES",
    "SET_TYPE",
    "infer_type",
    "OEMError",
    "OEMTypeError",
]

#: Python values allowed in the value slot of an atomic OEM object.
Atom = Union[str, int, float, bool, bytes, None]

#: The atomic types recognised by this implementation.  The paper leaves
#: the exact list open ("values may be of an atomic type"); we provide the
#: types that its examples use plus the obvious extras.
ATOMIC_TYPES = frozenset(
    {"string", "integer", "real", "boolean", "bytes", "null"}
)

#: The single structured type: a set of sub-objects.
SET_TYPE = "set"


class OEMError(Exception):
    """Base class for all OEM-layer errors."""


class OEMTypeError(OEMError):
    """A value does not agree with its declared OEM type."""


def infer_type(value: object) -> str:
    """Return the OEM type name for a Python ``value``.

    ``bool`` must be tested before ``int`` because ``bool`` is a subclass
    of ``int`` in Python.

    >>> infer_type('CS')
    'string'
    >>> infer_type(3)
    'integer'
    """
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, str):
        return "string"
    if isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "real"
    if isinstance(value, bytes):
        return "bytes"
    if value is None:
        return "null"
    if isinstance(value, (list, tuple, set, frozenset)):
        return SET_TYPE
    raise OEMTypeError(f"no OEM type for Python value {value!r}")


def _check_atom(type_: str, value: object) -> Atom:
    """Validate that ``value`` is an atom of OEM type ``type_``."""
    expected: dict[str, type | tuple[type, ...]] = {
        "string": str,
        "integer": int,
        "real": (int, float),
        "boolean": bool,
        "bytes": bytes,
    }
    if type_ == "null":
        if value is not None:
            raise OEMTypeError(f"null object must carry None, got {value!r}")
        return None
    pytype = expected.get(type_)
    if pytype is None:
        raise OEMTypeError(f"unknown atomic OEM type {type_!r}")
    if type_ == "boolean" and not isinstance(value, bool):
        raise OEMTypeError(f"boolean object must carry bool, got {value!r}")
    if type_ == "integer" and isinstance(value, bool):
        raise OEMTypeError("integer object may not carry bool")
    if not isinstance(value, pytype):
        raise OEMTypeError(
            f"value {value!r} is not of OEM type {type_!r}"
        )
    if type_ == "real":
        return float(value)
    return value  # type: ignore[return-value]


class OEMObject:
    """One OEM object ``<oid, label, type, value>``.

    Instances are immutable: the value of a ``set`` object is stored as a
    tuple of child :class:`OEMObject` instances (order is preserved for
    deterministic printing, but comparisons treat it as a set; see
    :mod:`repro.oem.compare`).

    Parameters
    ----------
    label:
        descriptive label, e.g. ``'person'``.
    value:
        an atom, or an iterable of :class:`OEMObject` for ``set`` objects.
    type_:
        OEM type name; inferred from ``value`` when omitted.
    oid:
        object-id; a fresh synthetic id is allocated when omitted (the
        paper: "any arbitrary unique strings can be used").
    """

    __slots__ = ("oid", "label", "type", "value", "_hash", "_skey")

    oid: Oid
    label: str
    type: str
    value: Union[Atom, tuple["OEMObject", ...]]

    def __init__(
        self,
        label: str,
        value: object,
        type_: str | None = None,
        oid: Oid | str | None = None,
    ) -> None:
        if not isinstance(label, str) or not label:
            raise OEMError(f"label must be a non-empty string, got {label!r}")
        if type_ is None:
            type_ = infer_type(value)
        if type_ == SET_TYPE:
            # try/tuple instead of isinstance(value, Iterable): the ABC
            # check routes through typing.__subclasscheck__ and shows up
            # on profiles of construction-heavy plans.
            if isinstance(value, (str, bytes)):
                raise OEMTypeError(
                    f"set object value must be iterable of OEMObject,"
                    f" got {value!r}"
                )
            try:
                children = tuple(value)
            except TypeError:
                raise OEMTypeError(
                    f"set object value must be iterable of OEMObject,"
                    f" got {value!r}"
                ) from None
            for child in children:
                if not isinstance(child, OEMObject):
                    raise OEMTypeError(
                        f"set member {child!r} is not an OEMObject"
                    )
            checked: Union[Atom, tuple[OEMObject, ...]] = children
        else:
            checked = _check_atom(type_, value)
        if oid is None:
            oid = fresh_oid()
        elif isinstance(oid, str):
            oid = Oid(oid)
        object.__setattr__(self, "oid", oid)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "type", type_)
        object.__setattr__(self, "value", checked)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_skey", None)

    # -- immutability -------------------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("OEMObject is immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("OEMObject is immutable")

    # -- structure accessors -------------------------------------------

    @property
    def is_set(self) -> bool:
        """True when this object's value is a set of sub-objects."""
        return self.type == SET_TYPE

    @property
    def is_atomic(self) -> bool:
        """True when this object's value is an atom."""
        return self.type != SET_TYPE

    @property
    def children(self) -> tuple["OEMObject", ...]:
        """Sub-objects of a ``set`` object; empty tuple for atoms."""
        if self.is_set:
            return self.value  # type: ignore[return-value]
        return ()

    def subobjects(self, label: str | None = None) -> tuple["OEMObject", ...]:
        """Direct sub-objects, optionally restricted to ``label``.

        >>> person = OEMObject('person', [OEMObject('name', 'Joe Chung')])
        >>> [o.value for o in person.subobjects('name')]
        ['Joe Chung']
        """
        kids = self.children
        if label is None:
            return kids
        return tuple(child for child in kids if child.label == label)

    def first(self, label: str) -> "OEMObject | None":
        """First direct sub-object with ``label``, or ``None``."""
        for child in self.children:
            if child.label == label:
                return child
        return None

    def get(self, label: str, default: object = None) -> object:
        """Value of the first sub-object labelled ``label``.

        Mirrors ``dict.get`` for the common case of record-like objects.
        """
        child = self.first(label)
        if child is None:
            return default
        return child.value

    def __iter__(self) -> Iterator["OEMObject"]:
        return iter(self.children)

    def __len__(self) -> int:
        return len(self.children)

    # -- derived objects ------------------------------------------------

    def with_children(self, children: Iterable["OEMObject"]) -> "OEMObject":
        """A copy of this set object with a different set of sub-objects."""
        if not self.is_set:
            raise OEMTypeError("with_children requires a set object")
        return OEMObject(self.label, tuple(children), SET_TYPE, self.oid)

    def with_label(self, label: str) -> "OEMObject":
        """A copy of this object carrying a different label."""
        return OEMObject(label, self.value, self.type, self.oid)

    def with_oid(self, oid: Oid | str) -> "OEMObject":
        """A copy of this object carrying a different object-id."""
        return OEMObject(self.label, self.value, self.type, oid)

    # -- equality is structural, ignoring oids --------------------------
    # Object identity (oid) is deliberately excluded: the paper's mediator
    # semantics compares and deduplicates objects by structure, and the
    # object-ids of view objects are "arbitrary unique strings".

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OEMObject):
            return NotImplemented
        from repro.oem.compare import structurally_equal

        return structurally_equal(self, other)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            from repro.oem.compare import structural_hash

            cached = structural_hash(self)
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        if self.is_set:
            inner = ", ".join(repr(c) for c in self.children)
            return f"<{self.oid}, {self.label}, set, {{{inner}}}>"
        return f"<{self.oid}, {self.label}, {self.type}, {self.value!r}>"

"""Object identifiers for OEM objects.

The paper treats object-ids "as arbitrary strings that are used to link
objects to their subobjects", and notes that a mediator may use "any
arbitrary unique strings" for the objects it creates.  Two kinds exist:

* :class:`Oid` — a plain opaque identifier (``&12``, ``&p1``, ``x032`` ...).
* :class:`SemanticOid` — a *semantic object-id* (Section 2, "Other
  Features"): a functor applied to values, e.g. ``person('Joe Chung')``,
  which "semantically identifies an exported object" and has "meaning
  beyond the mediator call that yielded it".  Semantic oids are the
  mechanism behind object fusion (:mod:`repro.mediator.fusion`): two rules
  producing objects with the same semantic oid contribute sub-objects to a
  single fused object.
"""

from __future__ import annotations

import itertools
import threading
from typing import Iterable

__all__ = ["Oid", "SemanticOid", "fresh_oid", "OidGenerator"]


class Oid:
    """An opaque object identifier.

    Oids compare by their text, so that a parsed ``&p1`` is the same
    identifier wherever it occurs.
    """

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        if not isinstance(text, str) or not text:
            raise ValueError(f"oid text must be a non-empty string: {text!r}")
        object.__setattr__(self, "text", text)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Oid is immutable")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SemanticOid):
            return False
        if isinstance(other, Oid):
            return self.text == other.text
        if isinstance(other, str):
            return self.text == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.text)

    def __str__(self) -> str:
        return self.text

    def __repr__(self) -> str:
        return f"Oid({self.text!r})"


class SemanticOid(Oid):
    """A semantic object-id: ``functor(arg1, ..., argn)``.

    Arguments are atoms (or nested oids).  Equality is by functor and
    arguments, which is exactly what makes fusion work: every rule that
    derives a sub-object for ``person('Joe Chung')`` targets the *same*
    view object.
    """

    __slots__ = ("functor", "args")

    def __init__(self, functor: str, args: Iterable[object]) -> None:
        if not functor:
            raise ValueError("semantic oid functor must be non-empty")
        args = tuple(args)
        text = f"{functor}({', '.join(_render(a) for a in args)})"
        super().__init__(text)
        object.__setattr__(self, "functor", functor)
        object.__setattr__(self, "args", args)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SemanticOid):
            return self.functor == other.functor and self.args == other.args
        return False

    def __hash__(self) -> int:
        return hash((self.functor, self.args))

    def __repr__(self) -> str:
        return f"SemanticOid({self.functor!r}, {self.args!r})"


def _render(arg: object) -> str:
    if isinstance(arg, str):
        return f"'{arg}'"
    return str(arg)


class OidGenerator:
    """Thread-safe generator of unique synthetic oids.

    Each generator owns a prefix so that ids from different components
    (sources, the mediator's memory, view objects) are visibly distinct,
    as in the paper's figures (``&12``, ``x032``, ``&cp1``).
    """

    def __init__(self, prefix: str = "&") -> None:
        self.prefix = prefix
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    def __call__(self) -> Oid:
        with self._lock:
            number = next(self._counter)
        return Oid(f"{self.prefix}{number}")

    def reset(self) -> None:
        """Restart numbering (used by tests for reproducible output)."""
        with self._lock:
            self._counter = itertools.count(1)


#: The process-wide default generator used when an object is created
#: without an explicit oid.
_default_generator = OidGenerator("&_")


def fresh_oid() -> Oid:
    """Allocate a process-unique synthetic object-id."""
    return _default_generator()

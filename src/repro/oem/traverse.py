"""Traversal utilities over OEM object forests.

Supports the MSL *wildcard* feature (Section 2, "Other Features"):
"searches for objects at any level in the object structure of the source,
without need to specify the entire path to the desired object".  The
descendant iterators here are what the matcher uses for such searches.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Iterator

from repro.oem.model import OEMObject

__all__ = [
    "walk",
    "descendants",
    "find_all",
    "find_by_label",
    "paths_to",
    "depth",
    "count_objects",
]


def walk(roots: Iterable[OEMObject]) -> Iterator[OEMObject]:
    """Yield every object in the forest, roots first (pre-order, BFS).

    Breadth-first order matches the intuition that clients "query object
    structures starting, by default, from the top-level objects": shallow
    matches are produced before deep ones.
    """
    queue = deque(roots)
    while queue:
        node = queue.popleft()
        yield node
        queue.extend(node.children)


def descendants(obj: OEMObject) -> Iterator[OEMObject]:
    """Yield every proper descendant of ``obj`` (BFS)."""
    queue = deque(obj.children)
    while queue:
        node = queue.popleft()
        yield node
        queue.extend(node.children)


def find_all(
    roots: Iterable[OEMObject],
    predicate: Callable[[OEMObject], bool],
) -> list[OEMObject]:
    """All objects anywhere in the forest satisfying ``predicate``."""
    return [node for node in walk(roots) if predicate(node)]


def find_by_label(roots: Iterable[OEMObject], label: str) -> list[OEMObject]:
    """All objects anywhere in the forest carrying ``label``.

    This is the wildcard search ``{.. <label ...>}`` in our MSL syntax.
    """
    return find_all(roots, lambda node: node.label == label)


def paths_to(
    root: OEMObject, predicate: Callable[[OEMObject], bool]
) -> list[tuple[OEMObject, ...]]:
    """Root-to-object label paths for every match under ``root``.

    Each path is a tuple of objects from ``root`` (inclusive) down to a
    matching object (inclusive).  Useful for explaining where a wildcard
    search found its matches.
    """
    results: list[tuple[OEMObject, ...]] = []
    stack: list[tuple[OEMObject, tuple[OEMObject, ...]]] = [(root, (root,))]
    while stack:
        node, path = stack.pop()
        if predicate(node):
            results.append(path)
        for child in reversed(node.children):
            stack.append((child, path + (child,)))
    return results


def depth(obj: OEMObject) -> int:
    """Nesting depth of ``obj``: an atom has depth 1.

    Iterative to cope with very deep synthetic structures used in the
    wildcard benchmarks.
    """
    best = 1
    stack: list[tuple[OEMObject, int]] = [(obj, 1)]
    while stack:
        node, d = stack.pop()
        if d > best:
            best = d
        for child in node.children:
            stack.append((child, d + 1))
    return best


def count_objects(roots: Iterable[OEMObject]) -> int:
    """Total number of objects in the forest (roots + all descendants)."""
    return sum(1 for _ in walk(roots))

"""Parser for the paper's textual OEM notation.

The paper writes OEM data as one object per line,

.. code-block:: text

    <&p1, person, set, {&n1, &d1, &rel1, &elm1}>
      <&n1, name, string, 'Joe Chung'>
      <&d1, dept, string, 'CS'>
      <&rel1, relation, string, 'employee'>
      <&elm1, e_mail, string, 'chung@cs'>
    ;

where a ``set`` value lists the object-ids of the sub-objects, which are
defined on their own (indented) lines, and top-level objects are the ones
not referenced from any set.  We accept that reference style, an inline
style where sub-objects are written directly inside the braces, and any
mixture of the two.  Types may be omitted (``<&d1, dept, 'CS'>``) and are
then inferred from the value.  A ``;`` terminates a top-level group and is
otherwise ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.oem.model import OEMObject, OEMError, SET_TYPE, infer_type
from repro.oem.oid import Oid

__all__ = ["parse_oem", "parse_one", "OEMParseError"]


class OEMParseError(OEMError):
    """Raised when OEM text cannot be parsed."""

    def __init__(self, message: str, position: int = -1) -> None:
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


# ---------------------------------------------------------------------------
# tokenizer
# ---------------------------------------------------------------------------

_PUNCT = {"<", ">", "{", "}", ",", ";"}


def _is_digit(ch: str) -> bool:
    """ASCII digits only (str.isdigit admits characters int() rejects)."""
    return "0" <= ch <= "9"


@dataclass
class _Token:
    kind: str  # 'punct' | 'string' | 'number' | 'word' | 'oid'
    text: str
    value: object
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(_Token("punct", ch, ch, i))
            i += 1
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            parts: list[str] = []
            while j < n:
                cj = text[j]
                if cj == "\\" and j + 1 < n:
                    parts.append(text[j + 1])
                    j += 2
                    continue
                if cj == quote:
                    break
                parts.append(cj)
                j += 1
            else:
                raise OEMParseError("unterminated string literal", i)
            tokens.append(_Token("string", text[i : j + 1], "".join(parts), i))
            i = j + 1
            continue
        if ch == "&":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "_."):
                j += 1
            if j == i + 1:
                raise OEMParseError("bare '&' is not an oid", i)
            tokens.append(_Token("oid", text[i:j], text[i:j], i))
            i = j
            continue
        if _is_digit(ch) or (
            ch in "+-" and i + 1 < n and _is_digit(text[i + 1])
        ):
            j = i + 1
            seen_dot = seen_exp = False
            while j < n:
                cj = text[j]
                if _is_digit(cj):
                    j += 1
                elif cj == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif (
                    cj in "eE"
                    and not seen_exp
                    and j + 1 < n
                    and (
                        _is_digit(text[j + 1])
                        or (
                            text[j + 1] in "+-"
                            and j + 2 < n
                            and _is_digit(text[j + 2])
                        )
                    )
                ):
                    seen_exp = True
                    j += 2 if text[j + 1] in "+-" else 1
                else:
                    break
            raw = text[i:j]
            value: object = (
                float(raw) if seen_dot or seen_exp else int(raw)
            )
            tokens.append(_Token("number", raw, value, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "_-"):
                j += 1
            tokens.append(_Token("word", text[i:j], text[i:j], i))
            i = j
            continue
        raise OEMParseError(f"unexpected character {ch!r}", i)
    return tokens


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


@dataclass
class _RawObject:
    """An object as parsed, before oid references are resolved."""

    oid: str | None
    label: str
    type_: str | None
    value: object  # atom, list of refs/raw objects
    is_set: bool = False
    members: list["str | _RawObject"] = field(default_factory=list)


class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> _Token | None:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def next(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise OEMParseError("unexpected end of input")
        self.pos += 1
        return tok

    def expect(self, text: str) -> _Token:
        tok = self.next()
        if tok.text != text:
            raise OEMParseError(
                f"expected {text!r}, found {tok.text!r}", tok.pos
            )
        return tok

    def skip_commas(self) -> None:
        while (tok := self.peek()) is not None and tok.text == ",":
            self.pos += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    # -- grammar -------------------------------------------------------

    def parse_document(self) -> list[_RawObject]:
        objects: list[_RawObject] = []
        while not self.at_end():
            tok = self.peek()
            assert tok is not None
            if tok.text == ";":
                self.pos += 1
                continue
            objects.append(self.parse_object())
        return objects

    def parse_object(self) -> _RawObject:
        self.expect("<")
        fields: list[_Token | _RawObject | list] = []
        while True:
            tok = self.peek()
            if tok is None:
                raise OEMParseError("unterminated object (missing '>')")
            if tok.text == ">":
                self.pos += 1
                break
            if tok.text == ",":
                self.pos += 1
                continue
            if tok.text == "{":
                fields.append(self.parse_set())
                continue
            fields.append(self.next())
        return self._assemble(fields)

    def parse_set(self) -> list:
        """Parse ``{ ... }`` — a list of oid references or inline objects."""
        self.expect("{")
        members: list = []
        while True:
            tok = self.peek()
            if tok is None:
                raise OEMParseError("unterminated set (missing '}')")
            if tok.text == "}":
                self.pos += 1
                break
            if tok.text == ",":
                self.pos += 1
                continue
            if tok.text == "<":
                members.append(self.parse_object())
            elif tok.kind == "oid":
                members.append(self.next().text)
            else:
                raise OEMParseError(
                    f"set members must be oids or objects, found"
                    f" {tok.text!r}",
                    tok.pos,
                )
        return members

    def _assemble(self, fields: list) -> _RawObject:
        """Apply the paper's field-elision rules.

        Four fields: ``<oid label type value>``.  Three: type dropped.
        Two: type and oid dropped.
        """
        if len(fields) not in (2, 3, 4):
            raise OEMParseError(
                f"an OEM object has 2-4 fields, found {len(fields)}"
            )
        oid: str | None = None
        type_: str | None = None
        if len(fields) == 4:
            oid_tok, label_tok, type_tok, value_field = fields
            oid = _as_oid(oid_tok)
            type_ = _as_word(type_tok, "type")
        elif len(fields) == 3:
            oid_tok, label_tok, value_field = fields
            oid = _as_oid(oid_tok)
        else:
            label_tok, value_field = fields
        label = _as_word(label_tok, "label")

        if isinstance(value_field, list):
            if type_ not in (None, SET_TYPE):
                raise OEMParseError(
                    f"braced value requires type 'set', not {type_!r}"
                )
            return _RawObject(
                oid, label, SET_TYPE, None, is_set=True, members=value_field
            )
        value = _as_value(value_field)
        return _RawObject(oid, label, type_, value)


def _as_oid(tok: object) -> str:
    if isinstance(tok, _Token) and tok.kind == "oid":
        return tok.text
    raise OEMParseError(f"expected an oid (&...), found {tok!r}")


def _as_word(tok: object, what: str) -> str:
    if isinstance(tok, _Token) and tok.kind in ("word", "string"):
        return str(tok.value)
    raise OEMParseError(f"expected a {what}, found {tok!r}")


def _as_value(tok: object) -> object:
    if isinstance(tok, _Token):
        if tok.kind in ("string", "number"):
            return tok.value
        if tok.kind == "word":
            lowered = tok.text.lower()
            if lowered == "true":
                return True
            if lowered == "false":
                return False
            if lowered == "null":
                return None
            # bare words are treated as strings, matching the paper's
            # habit of writing unquoted atoms in some figures
            return tok.text
        if tok.kind == "oid":
            raise OEMParseError(
                f"an oid reference {tok.text} may appear only inside a set",
                tok.pos,
            )
    raise OEMParseError(f"cannot interpret value {tok!r}")


# ---------------------------------------------------------------------------
# reference resolution
# ---------------------------------------------------------------------------


def _resolve(raw_objects: list[_RawObject]) -> list[OEMObject]:
    """Turn raw parses into OEMObjects; return only top-level objects."""
    by_oid: dict[str, _RawObject] = {}
    for raw in raw_objects:
        if raw.oid is not None:
            if raw.oid in by_oid:
                raise OEMParseError(f"duplicate object-id {raw.oid}")
            by_oid[raw.oid] = raw

    referenced: set[int] = set()  # ids of _RawObject used as sub-objects
    built: dict[int, OEMObject] = {}
    building: set[int] = set()

    def build(raw: _RawObject) -> OEMObject:
        key = id(raw)
        if key in built:
            return built[key]
        if key in building:
            raise OEMParseError(
                f"cyclic object-id reference through {raw.oid or raw.label}"
            )
        building.add(key)
        if raw.is_set:
            children = []
            for member in raw.members:
                if isinstance(member, str):
                    target = by_oid.get(member)
                    if target is None:
                        raise OEMParseError(
                            f"reference to undefined object-id {member}"
                        )
                    referenced.add(id(target))
                    children.append(build(target))
                else:
                    referenced.add(id(member))
                    children.append(build(member))
            obj = OEMObject(
                raw.label,
                children,
                SET_TYPE,
                Oid(raw.oid) if raw.oid else None,
            )
        else:
            type_ = raw.type_ or infer_type(raw.value)
            obj = OEMObject(
                raw.label,
                raw.value,
                type_,
                Oid(raw.oid) if raw.oid else None,
            )
        building.discard(key)
        built[key] = obj
        return obj

    all_built = [(raw, build(raw)) for raw in raw_objects]
    return [obj for raw, obj in all_built if id(raw) not in referenced]


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def parse_oem(text: str) -> list[OEMObject]:
    """Parse OEM text into its top-level objects.

    >>> objs = parse_oem("<&d, dept, string, 'CS'>")
    >>> objs[0].label, objs[0].value
    ('dept', 'CS')
    """
    tokens = _tokenize(text)
    raw = _Parser(tokens).parse_document()
    return _resolve(raw)


def parse_one(text: str) -> OEMObject:
    """Parse text that must contain exactly one top-level object."""
    objects = parse_oem(text)
    if len(objects) != 1:
        raise OEMParseError(
            f"expected exactly one top-level object, found {len(objects)}"
        )
    return objects[0]

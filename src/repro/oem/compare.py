"""Structural comparison, hashing, and duplicate elimination for OEM.

The MSL semantics call for duplicate elimination of view objects "in the
OEM context" (the paper's footnote 9 admits their engine lacked the
feature; we provide it).  Two OEM objects are *structurally equal* when
they have the same label, the same type, and — recursively — the same
value, where set values compare as **bags turned into sets**: order is
irrelevant and duplicated members collapse.  Object-ids are ignored,
because the ids of view objects are arbitrary.
"""

from __future__ import annotations

from typing import Iterable, Hashable

from repro.oem.model import OEMObject

__all__ = [
    "structural_key",
    "structural_hash",
    "structurally_equal",
    "eliminate_duplicates",
    "is_subobject_set",
    "key_computations",
]

#: Number of structural keys actually computed (cache misses).  Joins,
#: dedup, and cache canonicalization over an already-keyed forest should
#: leave this counter unchanged; tests assert exactly that.
_key_computations = 0


def key_computations() -> int:
    """Total structural-key computations so far (memoization misses)."""
    return _key_computations


def structural_key(obj: OEMObject) -> Hashable:
    """A hashable key capturing the structure of ``obj`` (oids ignored).

    Set values are canonicalised as a frozenset of the children's keys,
    so the key is insensitive to sub-object order and to duplicate
    sub-objects.  Objects are immutable, so the key is computed once and
    memoized on the object itself — repeated joins/dedup/cache lookups
    over the same forest never re-walk the tree.
    """
    cached = obj._skey
    if cached is not None:
        return cached
    global _key_computations
    _key_computations += 1
    if obj.is_set:
        child_keys = frozenset(structural_key(c) for c in obj.children)
        key: Hashable = (obj.label, "set", child_keys)
    else:
        key = (obj.label, obj.type, obj.value)
    object.__setattr__(obj, "_skey", key)
    return key


def structural_hash(obj: OEMObject) -> int:
    """Hash consistent with :func:`structurally_equal`."""
    return hash(structural_key(obj))


def structurally_equal(a: OEMObject, b: OEMObject) -> bool:
    """True when ``a`` and ``b`` have identical structure (oids ignored)."""
    if a is b:
        return True
    if a.label != b.label or a.type != b.type:
        return False
    if a.is_set:
        return structural_key(a) == structural_key(b)
    return a.value == b.value


def eliminate_duplicates(objects: Iterable[OEMObject]) -> list[OEMObject]:
    """Drop structurally duplicated objects, keeping first occurrences.

    This implements the duplicate elimination that the MSL semantics
    prescribe for the objects a mediator (or query) generates.
    """
    seen: set[Hashable] = set()
    unique: list[OEMObject] = []
    for obj in objects:
        key = structural_key(obj)
        if key not in seen:
            seen.add(key)
            unique.append(obj)
    return unique


def is_subobject_set(
    smaller: Iterable[OEMObject], larger: Iterable[OEMObject]
) -> bool:
    """True when every object in ``smaller`` structurally occurs in ``larger``.

    Used by tests and by view-expansion containment checks.
    """
    larger_keys = {structural_key(o) for o in larger}
    return all(structural_key(o) in larger_keys for o in smaller)

"""Command-line interface: run a mediator from files.

Usage::

    python -m repro --spec med.msl --mediator med \\
        --source whois=whois.oem --source cs=cs.oem \\
        --query "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med"

* ``--spec`` — an MSL specification file (rules + EXT declarations);
* ``--source NAME=FILE`` — an OEM data file served as source ``NAME``
  (repeatable); add ``:facts`` after the file to export schema facts;
* ``--query`` — an MSL query (repeatable); with no ``--query``, queries
  are read from stdin, one per line;
* ``--explain`` — print the logical program and physical plan instead
  of executing;
* ``--explain-analyze`` — execute each query while recording per-node
  estimated vs actual cardinality, then print the annotated plan tree
  (answers go to stdout first); ``--analyze-out FILE`` additionally
  writes one structured-JSON report per query as JSON lines;
* ``--stats-out FILE`` / ``--stats-in FILE`` — persist the adaptive
  statistics database (observed cardinalities, q-errors, source cost
  weights) to JSON after the run / warm-start it before the run;
* ``--export`` — materialize and print the whole view;
* ``--format`` — ``text`` (the paper's reference style, default),
  ``inline`` (one object per line), or ``python`` (dicts);
* ``--retries`` / ``--source-timeout`` — wrap every source access in
  the reliability layer (retry with backoff, per-source circuit
  breaker, post-hoc timeout detection);
* ``--adaptive-timeouts`` / ``--hedge`` / ``--hedge-delay`` —
  tail-latency resilience: latency-derived per-source timeouts with
  deadline slicing, and speculative duplicate calls for stragglers;
* ``--degrade`` — a source that stays unavailable contributes an empty
  answer instead of failing the query; warnings go to stderr;
* ``--deadline`` / ``--max-rows`` / ``--max-total-rows`` /
  ``--max-result-objects`` — per-query resource budgets, enforced by
  the query governor; ``--budget-mode truncate`` clips instead of
  aborting (warnings to stderr);
* ``--quarantine-malformed`` — drop malformed sub-objects from source
  answers instead of failing the query;
* ``--parallelism N`` — fan independent source queries out across N
  worker threads (default 1: sequential execution);
* ``--shard NAME=N:LABEL`` — re-register source ``NAME`` as N hash
  shards partitioned on direct-child ``LABEL``; the optimizer prunes
  shards from pushed-down constants and bind joins ship one batched
  semi-join filter per surviving shard;
* ``--no-semijoin`` / ``--bloom-threshold N`` — fall back to per-tuple
  probes, or ship filters above N distinct values as Bloom digests;
* ``--cache N`` / ``--cache-ttl SECONDS`` — memoize up to N source
  answers (LRU), optionally expiring entries after SECONDS;
* ``--no-compile`` — evaluate patterns with the interpretive reference
  matcher instead of the compiled closure backend (default: compiled);
* ``--no-fuse`` — execute one plan node per operator instead of fusing
  straight-line segments into pipeline nodes (default: fused);
* ``--trace-out FILE`` / ``--metrics-out FILE`` — enable the telemetry
  subsystem and write, after the queries ran, the span trees as JSON
  lines and/or the metrics registry in Prometheus text format;
* ``--trace-sample-rate R`` — keep the span tree of each query with
  probability R (default 1.0; head-based, seeded);
* ``--slow-query-ms MS`` — always retain (and report on stderr) root
  spans of queries at least MS milliseconds long, sampled or not;
* ``--max-concurrent N`` / ``--queue-depth N`` — admission control:
  at most N queries execute at once (AIMD-adapted downward under
  latency pressure) with a bounded wait queue; excess load is shed
  with a structured rejection carrying a retry-after hint;
* ``--tenant NAME`` / ``--priority N`` — attribute this process's
  queries to a tenant quota and admit higher priorities first.

The CLI registers only OEM-file sources; programmatic users wanting
relational or custom wrappers use the library API directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.client.result import ResultSet
from repro.exec.cache import AnswerCache
from repro.external.registry import default_registry
from repro.governor.budget import QueryBudget
from repro.mediator.mediator import Mediator
from repro.obs.exporters import JsonLinesExporter, PrometheusTextExporter
from repro.oem.parser import parse_oem
from repro.reliability.hedging import HedgePolicy
from repro.reliability.policy import RetryPolicy
from repro.reliability.resilient import ResilienceConfig
from repro.serving.admission import AdmissionConfig, QueryRejected
from repro.wrappers.capability import BATCH_CAPABILITY
from repro.wrappers.oem_wrapper import OEMStoreWrapper
from repro.wrappers.registry import SourceRegistry
from repro.wrappers.sharding import (
    HashPartition,
    ShardedSource,
    partition_forest,
    shard_name,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "MedMaker: answer MSL queries over OEM sources through a"
            " declaratively specified mediator"
        ),
    )
    parser.add_argument(
        "--spec",
        required=True,
        help="MSL mediator specification file",
    )
    parser.add_argument(
        "--mediator",
        default="med",
        help="name of the mediator (default: med)",
    )
    parser.add_argument(
        "--source",
        action="append",
        default=[],
        metavar="NAME=FILE[:facts]",
        help=(
            "OEM data file registered as source NAME; ':facts' exports"
            " schema facts for rule pruning (repeatable)"
        ),
    )
    parser.add_argument(
        "--query",
        action="append",
        default=[],
        help="MSL query to answer (repeatable; default: read stdin)",
    )
    parser.add_argument(
        "--export",
        action="store_true",
        help="materialize and print the whole view",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the logical program and plan instead of executing",
    )
    parser.add_argument(
        "--explain-analyze",
        action="store_true",
        help=(
            "execute each query and print the annotated plan tree with"
            " estimated vs actual cardinality per node"
        ),
    )
    parser.add_argument(
        "--analyze-out",
        default=None,
        metavar="FILE",
        help=(
            "write one structured-JSON EXPLAIN ANALYZE report per"
            " query to FILE as JSON lines (needs --explain-analyze)"
        ),
    )
    parser.add_argument(
        "--misestimate-factor",
        type=float,
        default=4.0,
        metavar="F",
        help=(
            "flag a plan stage whose actual cardinality exceeds its"
            " estimate by more than F and re-rank not-yet-dispatched"
            " stages (default: 4.0; 0 disables)"
        ),
    )
    parser.add_argument(
        "--stats-out",
        default=None,
        metavar="FILE",
        help=(
            "write the adaptive statistics snapshot (observed"
            " cardinalities, q-errors, source cost weights) to FILE"
            " as JSON after the queries ran"
        ),
    )
    parser.add_argument(
        "--stats-in",
        default=None,
        metavar="FILE",
        help=(
            "warm-start the optimizer from a statistics snapshot"
            " previously written with --stats-out"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "inline", "python"),
        default="text",
        help="output format for result objects",
    )
    parser.add_argument(
        "--push-mode",
        choices=("complete", "needed"),
        default="complete",
        help="pushdown enumeration mode (see docs/msl_reference.md)",
    )
    parser.add_argument(
        "--strategy",
        choices=("heuristic", "statistics", "exhaustive", "fetch_all"),
        default="heuristic",
        help="plan strategy",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry failed source calls up to N times with backoff",
    )
    parser.add_argument(
        "--source-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="treat source calls slower than SECONDS as failures",
    )
    parser.add_argument(
        "--adaptive-timeouts",
        action="store_true",
        help=(
            "derive per-source timeouts from observed latency"
            " percentiles (static --source-timeout is the cold-start"
            " fallback) and slice --deadline across plan stages"
        ),
    )
    parser.add_argument(
        "--hedge",
        action="store_true",
        help=(
            "issue a speculative duplicate source call when the first"
            " one straggles past its observed p95; first result wins"
        ),
    )
    parser.add_argument(
        "--hedge-delay",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "hedge after SECONDS instead of the adaptive p95-based"
            " delay (needs --hedge)"
        ),
    )
    parser.add_argument(
        "--degrade",
        action="store_true",
        help=(
            "answer with the remaining sources (plus warnings on"
            " stderr) when a source stays unavailable"
        ),
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for each query run",
    )
    parser.add_argument(
        "--max-rows",
        type=int,
        default=None,
        metavar="N",
        help="cap each intermediate binding table at N rows",
    )
    parser.add_argument(
        "--max-total-rows",
        type=int,
        default=None,
        metavar="N",
        help="cap total intermediate rows across a run at N",
    )
    parser.add_argument(
        "--max-result-objects",
        type=int,
        default=None,
        metavar="N",
        help="cap the number of result objects at N",
    )
    parser.add_argument(
        "--budget-mode",
        choices=("strict", "truncate"),
        default="strict",
        help=(
            "strict: abort when a budget is exceeded; truncate: clip"
            " and finish with warnings (default: strict)"
        ),
    )
    parser.add_argument(
        "--quarantine-malformed",
        action="store_true",
        help=(
            "drop malformed sub-objects from source answers (with"
            " warnings on stderr) instead of failing the query"
        ),
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run independent source queries across N worker threads"
            " (default: 1, sequential)"
        ),
    )
    parser.add_argument(
        "--shard",
        action="append",
        default=[],
        metavar="NAME=N:LABEL",
        help=(
            "re-register source NAME as N hash shards partitioned on"
            " direct-child LABEL (repeatable); shard scans run in"
            " parallel and bind joins ship batched semi-join filters"
        ),
    )
    parser.add_argument(
        "--no-semijoin",
        action="store_true",
        help=(
            "ship one probe per tuple instead of batched semi-join"
            " filters to batch-capable sources"
        ),
    )
    parser.add_argument(
        "--bloom-threshold",
        type=int,
        default=64,
        metavar="N",
        help=(
            "ship semi-join filters with more than N values as Bloom"
            " digests instead of explicit sets (default: 64)"
        ),
    )
    parser.add_argument(
        "--cache",
        type=int,
        default=None,
        metavar="N",
        help="memoize up to N source answers (LRU)",
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="expire cached source answers after SECONDS (needs --cache)",
    )
    parser.add_argument(
        "--no-compile",
        action="store_true",
        help=(
            "use the interpretive reference matcher instead of the"
            " compiled pattern backend"
        ),
    )
    parser.add_argument(
        "--no-fuse",
        action="store_true",
        help=(
            "run the unfused reference plan (one node per operator)"
            " instead of fusing straight-line segments"
        ),
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help=(
            "enable telemetry and write all spans as JSON lines to"
            " FILE after the queries ran"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help=(
            "enable telemetry and write the metrics registry in"
            " Prometheus text format to FILE after the queries ran"
        ),
    )
    parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=1.0,
        metavar="R",
        help=(
            "keep each query's span tree with probability R in [0, 1]"
            " (default: 1.0)"
        ),
    )
    parser.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "always retain queries at least MS milliseconds long and"
            " report them on stderr (enables telemetry)"
        ),
    )
    parser.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        metavar="N",
        help=(
            "admit at most N concurrently executing queries; excess"
            " queries queue (see --queue-depth) or are shed with a"
            " structured rejection"
        ),
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        metavar="N",
        help=(
            "let up to N queries wait for an execution slot (needs"
            " --max-concurrent; default 32, 0 = shed immediately)"
        ),
    )
    parser.add_argument(
        "--tenant",
        default=None,
        metavar="NAME",
        help="attribute queries to tenant NAME for admission quotas",
    )
    parser.add_argument(
        "--priority",
        type=int,
        default=0,
        metavar="N",
        help=(
            "admission priority for this process's queries (higher"
            " admits first; default 0)"
        ),
    )
    return parser


def _load_sources(
    specs: Sequence[str],
    registry: SourceRegistry,
    stderr,
    compile: bool = True,
) -> bool:
    for entry in specs:
        name, sep, path = entry.partition("=")
        if not sep or not name or not path:
            print(
                f"error: --source expects NAME=FILE[:facts], got {entry!r}",
                file=stderr,
            )
            return False
        export_facts = False
        if path.endswith(":facts"):
            export_facts = True
            path = path[: -len(":facts")]
        try:
            with open(path) as handle:
                objects = parse_oem(handle.read())
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=stderr)
            return False
        except Exception as exc:
            print(f"error: cannot parse {path}: {exc}", file=stderr)
            return False
        registry.register(
            OEMStoreWrapper(
                name,
                objects,
                export_facts=export_facts,
                compile=compile,
            )
        )
    return True


def _apply_shards(
    shard_specs, registry, stderr, compile: bool = True
) -> bool:
    """Replace loaded sources with hash-sharded versions (``--shard``)."""
    for entry in shard_specs:
        name, sep, rest = entry.partition("=")
        count_text, sep2, label = rest.partition(":")
        if (
            not sep
            or not sep2
            or not name
            or not label
            or not count_text.isdigit()
            or int(count_text) < 1
        ):
            print(
                f"error: --shard expects NAME=N:LABEL, got {entry!r}",
                file=stderr,
            )
            return False
        if name not in registry:
            print(
                f"error: --shard names unloaded source {name!r}"
                " (load it with --source first)",
                file=stderr,
            )
            return False
        base = registry.resolve(name)
        partition = HashPartition(label, int(count_text))
        forests = partition_forest(base.export(), partition)
        registry.deregister(name)
        shards = [
            OEMStoreWrapper(
                shard_name(name, index),
                forest,
                capability=BATCH_CAPABILITY,
                compile=compile,
            )
            for index, forest in enumerate(forests)
        ]
        registry.register(ShardedSource(name, shards, partition))
    return True


def _emit(objects, format_: str, stdout) -> None:
    results = (
        objects if isinstance(objects, ResultSet) else ResultSet(objects)
    )
    if format_ == "text":
        print(results.dump(), file=stdout)
    elif format_ == "inline":
        print(results.pretty(), file=stdout)
    else:
        for value in results.to_python():
            print(value, file=stdout)


def _iter_stdin_queries(stdin):
    """Queries from stdin: each non-empty line is one query."""
    for line in stdin:
        text = line.strip()
        if text:
            yield text


def main(
    argv: Sequence[str] | None = None,
    stdout=None,
    stderr=None,
    stdin=None,
) -> int:
    stdout = stdout or sys.stdout
    stderr = stderr or sys.stderr
    stdin = stdin if stdin is not None else sys.stdin
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        with open(args.spec) as handle:
            spec_text = handle.read()
    except OSError as exc:
        print(f"error: cannot read {args.spec}: {exc}", file=stderr)
        return 2

    registry = SourceRegistry()
    if not _load_sources(
        args.source, registry, stderr, compile=not args.no_compile
    ):
        return 2
    if args.bloom_threshold < 0:
        print("error: --bloom-threshold must be non-negative", file=stderr)
        return 2
    if not _apply_shards(
        args.shard, registry, stderr, compile=not args.no_compile
    ):
        return 2

    if args.retries < 0:
        print("error: --retries must be non-negative", file=stderr)
        return 2
    if args.source_timeout is not None and args.source_timeout <= 0:
        print("error: --source-timeout must be positive", file=stderr)
        return 2
    resilience = None
    if (
        args.retries
        or args.source_timeout is not None
        or args.adaptive_timeouts
    ):
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=args.retries + 1),
            timeout=args.source_timeout,
        )
    if args.hedge_delay is not None:
        if not args.hedge:
            print("error: --hedge-delay needs --hedge", file=stderr)
            return 2
        if args.hedge_delay <= 0:
            print("error: --hedge-delay must be positive", file=stderr)
            return 2
    hedge: "HedgePolicy | bool" = args.hedge
    if args.hedge and args.hedge_delay is not None:
        hedge = HedgePolicy(delay=args.hedge_delay)

    if args.deadline is not None and args.deadline <= 0:
        print("error: --deadline must be positive", file=stderr)
        return 2
    for flag, value in (
        ("--max-rows", args.max_rows),
        ("--max-total-rows", args.max_total_rows),
        ("--max-result-objects", args.max_result_objects),
    ):
        if value is not None and value <= 0:
            print(f"error: {flag} must be positive", file=stderr)
            return 2
    budget = None
    if (
        args.deadline is not None
        or args.max_rows is not None
        or args.max_total_rows is not None
        or args.max_result_objects is not None
    ):
        budget = QueryBudget(
            deadline=args.deadline,
            max_rows_per_table=args.max_rows,
            max_total_rows=args.max_total_rows,
            max_result_objects=args.max_result_objects,
        )

    if args.parallelism < 1:
        print("error: --parallelism must be at least 1", file=stderr)
        return 2
    if args.cache is not None and args.cache <= 0:
        print("error: --cache must be positive", file=stderr)
        return 2
    if args.cache_ttl is not None:
        if args.cache is None:
            print("error: --cache-ttl needs --cache", file=stderr)
            return 2
        if args.cache_ttl <= 0:
            print("error: --cache-ttl must be positive", file=stderr)
            return 2
    cache = None
    if args.cache is not None:
        cache = AnswerCache(max_entries=args.cache, ttl=args.cache_ttl)

    if args.explain and args.explain_analyze:
        print(
            "error: --explain-analyze conflicts with --explain"
            " (analyze executes the query; explain does not)",
            file=stderr,
        )
        return 2
    if args.analyze_out is not None and not args.explain_analyze:
        print("error: --analyze-out needs --explain-analyze", file=stderr)
        return 2
    stats_snapshot = None
    if args.stats_in is not None:
        try:
            with open(args.stats_in) as handle:
                stats_snapshot = json.load(handle)
        except OSError as exc:
            print(f"error: cannot read {args.stats_in}: {exc}", file=stderr)
            return 2
        except ValueError as exc:
            print(
                f"error: cannot parse {args.stats_in}: {exc}", file=stderr
            )
            return 2

    if not 0.0 <= args.trace_sample_rate <= 1.0:
        print("error: --trace-sample-rate must be in [0, 1]", file=stderr)
        return 2
    if args.slow_query_ms is not None and args.slow_query_ms < 0:
        print("error: --slow-query-ms must be non-negative", file=stderr)
        return 2
    # any observability flag switches the telemetry subsystem on
    telemetry = bool(
        args.trace_out is not None
        or args.metrics_out is not None
        or args.slow_query_ms is not None
    )

    if args.max_concurrent is not None and args.max_concurrent < 1:
        print("error: --max-concurrent must be at least 1", file=stderr)
        return 2
    if args.queue_depth is not None:
        if args.max_concurrent is None:
            print("error: --queue-depth needs --max-concurrent", file=stderr)
            return 2
        if args.queue_depth < 0:
            print("error: --queue-depth must be non-negative", file=stderr)
            return 2
    if args.tenant is not None and not args.tenant.strip():
        print("error: --tenant must not be empty", file=stderr)
        return 2
    admission = None
    if args.max_concurrent is not None:
        admission = AdmissionConfig(
            max_concurrent=args.max_concurrent,
            max_queue_depth=(
                args.queue_depth if args.queue_depth is not None else 32
            ),
        )

    try:
        mediator = Mediator(
            args.mediator,
            spec_text,
            registry,
            default_registry(),
            push_mode=args.push_mode,
            strategy=args.strategy,
            on_source_failure="degrade" if args.degrade else "fail",
            resilience=resilience,
            budget=budget,
            budget_mode=args.budget_mode,
            on_malformed_answer=(
                "quarantine" if args.quarantine_malformed else "error"
            ),
            parallelism=args.parallelism,
            semijoin=not args.no_semijoin,
            bloom_threshold=args.bloom_threshold,
            cache=cache,
            hedge=hedge,
            adaptive_timeouts=args.adaptive_timeouts,
            compile=not args.no_compile,
            fuse=not args.no_fuse,
            misestimate_factor=args.misestimate_factor,
            telemetry=telemetry,
            trace_sample_rate=args.trace_sample_rate,
            slow_query_ms=args.slow_query_ms,
            admission=admission,
        )
    except Exception as exc:
        print(f"error: bad specification: {exc}", file=stderr)
        return 2

    if stats_snapshot is not None:
        try:
            mediator.restore_statistics(stats_snapshot)
        except Exception as exc:
            print(f"error: {args.stats_in}: {exc}", file=stderr)
            mediator.close()
            return 2

    def emit_warnings(results: ResultSet) -> None:
        for warning in results.warnings:
            print(f"warning: {warning.render()}", file=stderr)

    analyze_reports = []
    status = 0
    try:
        if args.export:
            results = ResultSet(mediator.export(), mediator.last_warnings)
            _emit(results, args.format, stdout)
            emit_warnings(results)

        queries = list(args.query)
        if not queries and not args.export:
            queries = list(_iter_stdin_queries(stdin))

        for query in queries:
            try:
                if args.explain:
                    print(mediator.explain(query), file=stdout)
                elif args.explain_analyze:
                    report = mediator.explain_analyze(
                        query, tenant=args.tenant, priority=args.priority
                    )
                    results = ResultSet(report.objects, report.warnings)
                    _emit(results, args.format, stdout)
                    print(report.render(), file=stdout)
                    emit_warnings(results)
                    analyze_reports.append(report)
                else:
                    results = mediator.query(
                        query, tenant=args.tenant, priority=args.priority
                    )
                    _emit(results, args.format, stdout)
                    emit_warnings(results)
            except QueryRejected as exc:
                print(f"error: {query!r}: {exc.render()}", file=stderr)
                status = 1
            except Exception as exc:
                print(f"error: {query!r}: {exc}", file=stderr)
                status = 1
    finally:
        # deterministic shutdown: no worker or hedge thread outlives
        # the invocation (telemetry export below needs no pool)
        mediator.close()

    if args.analyze_out is not None:
        try:
            with open(args.analyze_out, "w") as handle:
                for report in analyze_reports:
                    handle.write(
                        json.dumps(report.to_dict(), sort_keys=True) + "\n"
                    )
        except OSError as exc:
            print(
                f"error: cannot write {args.analyze_out}: {exc}", file=stderr
            )
            return 2
    if args.stats_out is not None:
        try:
            with open(args.stats_out, "w") as handle:
                json.dump(
                    mediator.statistics_snapshot(),
                    handle,
                    indent=2,
                    sort_keys=True,
                )
                handle.write("\n")
        except OSError as exc:
            print(
                f"error: cannot write {args.stats_out}: {exc}", file=stderr
            )
            return 2
    if args.slow_query_ms is not None:
        for span in mediator.telemetry.tracer.slow_queries:
            print(
                f"slow query ({span.duration * 1000.0:.1f}ms):"
                f" {span.name}",
                file=stderr,
            )
    if args.trace_out is not None:
        try:
            JsonLinesExporter().export_path(
                args.trace_out, tracer=mediator.telemetry.tracer
            )
        except OSError as exc:
            print(
                f"error: cannot write {args.trace_out}: {exc}", file=stderr
            )
            return 2
    if args.metrics_out is not None:
        try:
            PrometheusTextExporter().export_path(
                args.metrics_out, mediator.telemetry.metrics
            )
        except OSError as exc:
            print(
                f"error: cannot write {args.metrics_out}: {exc}", file=stderr
            )
            return 2
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

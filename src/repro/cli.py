"""Command-line interface: run a mediator from files.

Usage::

    python -m repro --spec med.msl --mediator med \\
        --source whois=whois.oem --source cs=cs.oem \\
        --query "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med"

* ``--spec`` — an MSL specification file (rules + EXT declarations);
* ``--source NAME=FILE`` — an OEM data file served as source ``NAME``
  (repeatable); add ``:facts`` after the file to export schema facts;
* ``--query`` — an MSL query (repeatable); with no ``--query``, queries
  are read from stdin, one per line;
* ``--explain`` — print the logical program and physical plan instead
  of executing;
* ``--export`` — materialize and print the whole view;
* ``--format`` — ``text`` (the paper's reference style, default),
  ``inline`` (one object per line), or ``python`` (dicts).

The CLI registers only OEM-file sources; programmatic users wanting
relational or custom wrappers use the library API directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.client.result import ResultSet
from repro.external.registry import default_registry
from repro.mediator.mediator import Mediator
from repro.oem.parser import parse_oem
from repro.wrappers.oem_wrapper import OEMStoreWrapper
from repro.wrappers.registry import SourceRegistry

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "MedMaker: answer MSL queries over OEM sources through a"
            " declaratively specified mediator"
        ),
    )
    parser.add_argument(
        "--spec",
        required=True,
        help="MSL mediator specification file",
    )
    parser.add_argument(
        "--mediator",
        default="med",
        help="name of the mediator (default: med)",
    )
    parser.add_argument(
        "--source",
        action="append",
        default=[],
        metavar="NAME=FILE[:facts]",
        help=(
            "OEM data file registered as source NAME; ':facts' exports"
            " schema facts for rule pruning (repeatable)"
        ),
    )
    parser.add_argument(
        "--query",
        action="append",
        default=[],
        help="MSL query to answer (repeatable; default: read stdin)",
    )
    parser.add_argument(
        "--export",
        action="store_true",
        help="materialize and print the whole view",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the logical program and plan instead of executing",
    )
    parser.add_argument(
        "--format",
        choices=("text", "inline", "python"),
        default="text",
        help="output format for result objects",
    )
    parser.add_argument(
        "--push-mode",
        choices=("complete", "needed"),
        default="complete",
        help="pushdown enumeration mode (see docs/msl_reference.md)",
    )
    parser.add_argument(
        "--strategy",
        choices=("heuristic", "statistics", "exhaustive", "fetch_all"),
        default="heuristic",
        help="plan strategy",
    )
    return parser


def _load_sources(
    specs: Sequence[str], registry: SourceRegistry, stderr
) -> bool:
    for entry in specs:
        name, sep, path = entry.partition("=")
        if not sep or not name or not path:
            print(
                f"error: --source expects NAME=FILE[:facts], got {entry!r}",
                file=stderr,
            )
            return False
        export_facts = False
        if path.endswith(":facts"):
            export_facts = True
            path = path[: -len(":facts")]
        try:
            with open(path) as handle:
                objects = parse_oem(handle.read())
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=stderr)
            return False
        except Exception as exc:
            print(f"error: cannot parse {path}: {exc}", file=stderr)
            return False
        registry.register(
            OEMStoreWrapper(name, objects, export_facts=export_facts)
        )
    return True


def _emit(objects, format_: str, stdout) -> None:
    results = ResultSet(objects)
    if format_ == "text":
        print(results.dump(), file=stdout)
    elif format_ == "inline":
        print(results.pretty(), file=stdout)
    else:
        for value in results.to_python():
            print(value, file=stdout)


def _iter_stdin_queries(stdin):
    """Queries from stdin: each non-empty line is one query."""
    for line in stdin:
        text = line.strip()
        if text:
            yield text


def main(
    argv: Sequence[str] | None = None,
    stdout=None,
    stderr=None,
    stdin=None,
) -> int:
    stdout = stdout or sys.stdout
    stderr = stderr or sys.stderr
    stdin = stdin if stdin is not None else sys.stdin
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        with open(args.spec) as handle:
            spec_text = handle.read()
    except OSError as exc:
        print(f"error: cannot read {args.spec}: {exc}", file=stderr)
        return 2

    registry = SourceRegistry()
    if not _load_sources(args.source, registry, stderr):
        return 2

    try:
        mediator = Mediator(
            args.mediator,
            spec_text,
            registry,
            default_registry(),
            push_mode=args.push_mode,
            strategy=args.strategy,
        )
    except Exception as exc:
        print(f"error: bad specification: {exc}", file=stderr)
        return 2

    status = 0
    if args.export:
        _emit(mediator.export(), args.format, stdout)

    queries = list(args.query)
    if not queries and not args.export:
        queries = list(_iter_stdin_queries(stdin))

    for query in queries:
        try:
            if args.explain:
                print(mediator.explain(query), file=stdout)
            else:
                _emit(mediator.answer(query), args.format, stdout)
        except Exception as exc:
            print(f"error: {query!r}: {exc}", file=stderr)
            status = 1
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

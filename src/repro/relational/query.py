"""Select/project evaluation over tables.

The wrapper translates MSL queries into these primitive relational
operations, so this module is the "query capability" of a relational
source: conjunctive equality/comparison selections plus projection.
Deliberately small — a 1996 wrapper would push SQL to a real DBMS; the
interface here is what matters to the mediation layers above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.relational.schema import SchemaError
from repro.relational.table import Table

__all__ = ["Selection", "select", "project", "OPS"]


def _ne(a: object, b: object) -> bool:
    return a != b


def _eq(a: object, b: object) -> bool:
    return a == b


def _comparable(a: object, b: object) -> bool:
    if a is None or b is None:
        return False
    if isinstance(a, bool) or isinstance(b, bool):
        return False
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return True
    return type(a) is type(b)


OPS = {
    "=": _eq,
    "!=": _ne,
    "<": lambda a, b: _comparable(a, b) and a < b,
    "<=": lambda a, b: _comparable(a, b) and a <= b,
    ">": lambda a, b: _comparable(a, b) and a > b,
    ">=": lambda a, b: _comparable(a, b) and a >= b,
}


@dataclass(frozen=True, slots=True)
class Selection:
    """One selection condition ``attribute op constant``."""

    attribute: str
    op: str
    constant: object

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise SchemaError(f"unknown selection operator {self.op!r}")

    def holds(self, value: object) -> bool:
        if self.op == "=":
            return value == self.constant and not (
                isinstance(value, bool) != isinstance(self.constant, bool)
            )
        return OPS[self.op](value, self.constant)

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.constant!r}"


def select(
    table: Table, conditions: list[Selection] | tuple[Selection, ...] = ()
) -> Iterator[tuple]:
    """Tuples of ``table`` satisfying all ``conditions`` (a scan).

    >>> from repro.relational.schema import RelationSchema
    >>> t = Table(RelationSchema('r', ['a']))
    >>> _ = t.insert('x'); _ = t.insert('y')
    >>> list(select(t, [Selection('a', '=', 'x')]))
    [('x',)]
    """
    positions = [
        (table.schema.position(c.attribute), c) for c in conditions
    ]
    for row in table:
        if all(c.holds(row[pos]) for pos, c in positions):
            yield row


def project(
    table: Table, attributes: list[str], rows: Iterator[tuple] | None = None
) -> Iterator[tuple]:
    """Project ``rows`` (default: whole table) onto ``attributes``."""
    positions = [table.schema.position(a) for a in attributes]
    source = table if rows is None else rows
    for row in source:
        yield tuple(row[p] for p in positions)

"""Tables: tuple storage for the mini relational engine.

A :class:`Table` owns a schema and a list of tuples, enforces the schema
and key constraints on insert, and supports schema evolution in place —
the paper's motivating scenario where "an attribute 'birthday' may appear
in either of the two sources, or the 'e_mail' attribute may be dropped",
often "without notification to the mediator implementor".
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from repro.relational.schema import Attribute, RelationSchema, SchemaError

__all__ = ["Table", "IntegrityError"]


class IntegrityError(SchemaError):
    """A key constraint was violated."""


class Table:
    """One relation instance: schema + tuples."""

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        self._rows: list[tuple] = []
        self._key_index: dict[tuple, int] = {}

    # -- basic accessors ------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def rows(self) -> list[tuple]:
        """A snapshot copy of all tuples."""
        return list(self._rows)

    def row_dicts(self) -> Iterator[dict[str, object]]:
        """Tuples as attribute-name dictionaries."""
        names = self.schema.attribute_names
        for row in self._rows:
            yield dict(zip(names, row))

    # -- mutation -----------------------------------------------------------

    def _key_of(self, row: tuple) -> tuple | None:
        if not self.schema.key:
            return None
        return tuple(row[self.schema.position(k)] for k in self.schema.key)

    def insert(self, *values: object, **named: object) -> tuple:
        """Insert one tuple, given positionally or by attribute name.

        >>> from repro.relational.schema import RelationSchema
        >>> t = Table(RelationSchema('r', ['a', 'b']))
        >>> t.insert('x', 'y'); t.insert(b='q', a='p'); len(t)
        ('x', 'y')
        ('p', 'q')
        2
        """
        if values and named:
            raise SchemaError(
                "insert takes positional or named values, not both"
            )
        if named:
            row_list: list[object] = [None] * self.schema.arity
            for name, value in named.items():
                row_list[self.schema.position(name)] = value
            row = tuple(row_list)
        else:
            row = tuple(values)
        self.schema.validate_tuple(row)
        key = self._key_of(row)
        if key is not None:
            if key in self._key_index:
                raise IntegrityError(
                    f"duplicate key {key!r} in relation {self.name!r}"
                )
            self._key_index[key] = len(self._rows)
        self._rows.append(row)
        return row

    def insert_many(self, rows: Iterable[tuple]) -> int:
        """Insert many positional tuples; returns the count inserted."""
        count = 0
        for row in rows:
            self.insert(*row)
            count += 1
        return count

    def delete_where(self, predicate: Callable[[Mapping[str, object]], bool]) -> int:
        """Delete tuples whose dict form satisfies ``predicate``."""
        names = self.schema.attribute_names
        keep: list[tuple] = []
        removed = 0
        for row in self._rows:
            if predicate(dict(zip(names, row))):
                removed += 1
            else:
                keep.append(row)
        if removed:
            self._rows = keep
            self._rebuild_key_index()
        return removed

    def _rebuild_key_index(self) -> None:
        self._key_index.clear()
        for index, row in enumerate(self._rows):
            key = self._key_of(row)
            if key is not None:
                self._key_index[key] = index

    # -- schema evolution ----------------------------------------------------

    def add_attribute(
        self, attribute: Attribute | str, default: object = None
    ) -> None:
        """Append an attribute, padding existing tuples with ``default``.

        This is the "birthday appears" scenario: existing mediator
        specifications written with Rest variables pick the new attribute
        up automatically.
        """
        self.schema = self.schema.with_attribute(attribute)
        new_attr = self.schema.attributes[-1]
        if not new_attr.admits(default):
            raise SchemaError(
                f"default {default!r} does not fit new attribute"
                f" {new_attr.name!r}"
            )
        self._rows = [row + (default,) for row in self._rows]

    def drop_attribute(self, attribute: str) -> None:
        """Remove an attribute and its column from every tuple."""
        position = self.schema.position(attribute)
        self.schema = self.schema.without_attribute(attribute)
        self._rows = [
            row[:position] + row[position + 1 :] for row in self._rows
        ]
        self._rebuild_key_index()

    def __repr__(self) -> str:
        return (
            f"Table({self.name}"
            f"({', '.join(self.schema.attribute_names)}), {len(self)} rows)"
        )

"""Relation schemas for the mini relational engine.

The paper's ``cs`` source is "a relational database containing two tables
with schemas ``employee(first_name, last_name, title, reports_to)`` and
``student(first_name, last_name, year)``".  This module gives those
schemas a first-class representation: named, typed attributes with
optional key designation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Attribute", "RelationSchema", "SchemaError", "SQL_TYPES"]

#: Attribute types understood by the engine, with their Python carriers.
SQL_TYPES: dict[str, tuple[type, ...]] = {
    "string": (str,),
    "integer": (int,),
    "real": (int, float),
    "boolean": (bool,),
}


class SchemaError(Exception):
    """A schema is malformed or a tuple violates it."""


@dataclass(frozen=True, slots=True)
class Attribute:
    """One column: a name and a type from :data:`SQL_TYPES`."""

    name: str
    type: str = "string"

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid attribute name {self.name!r}")
        if self.type not in SQL_TYPES:
            raise SchemaError(
                f"unknown attribute type {self.type!r} for {self.name!r}"
            )

    def admits(self, value: object) -> bool:
        """Does ``value`` fit this attribute (NULL always fits)?"""
        if value is None:
            return True
        if self.type != "boolean" and isinstance(value, bool):
            return False
        return isinstance(value, SQL_TYPES[self.type])


@dataclass(frozen=True)
class RelationSchema:
    """A relation name plus its ordered attributes.

    >>> employee = RelationSchema('employee',
    ...     [Attribute('first_name'), Attribute('last_name')])
    >>> employee.position('last_name')
    1
    """

    name: str
    attributes: tuple[Attribute, ...]
    key: tuple[str, ...] = ()
    _positions: dict[str, int] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __init__(
        self,
        name: str,
        attributes: "list[Attribute | str] | tuple[Attribute | str, ...]",
        key: tuple[str, ...] | list[str] = (),
    ) -> None:
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid relation name {name!r}")
        normalised = tuple(
            attr if isinstance(attr, Attribute) else Attribute(attr)
            for attr in attributes
        )
        if not normalised:
            raise SchemaError(f"relation {name!r} has no attributes")
        names = [attr.name for attr in normalised]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {name!r}")
        key = tuple(key)
        for key_attr in key:
            if key_attr not in names:
                raise SchemaError(
                    f"key attribute {key_attr!r} not in relation {name!r}"
                )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", normalised)
        object.__setattr__(self, "key", key)
        object.__setattr__(
            self, "_positions", {n: i for i, n in enumerate(names)}
        )

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(attr.name for attr in self.attributes)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def position(self, attribute: str) -> int:
        """Column index of ``attribute`` (raises on unknown names)."""
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from None

    def has_attribute(self, attribute: str) -> bool:
        return attribute in self._positions

    def validate_tuple(self, values: tuple) -> None:
        """Raise unless ``values`` fits this schema."""
        if len(values) != self.arity:
            raise SchemaError(
                f"tuple of arity {len(values)} does not fit"
                f" {self.name}({', '.join(self.attribute_names)})"
            )
        for attr, value in zip(self.attributes, values):
            if not attr.admits(value):
                raise SchemaError(
                    f"value {value!r} does not fit attribute"
                    f" {self.name}.{attr.name}:{attr.type}"
                )

    def with_attribute(self, attribute: Attribute | str) -> "RelationSchema":
        """A new schema with one attribute appended (schema evolution)."""
        attr = (
            attribute
            if isinstance(attribute, Attribute)
            else Attribute(attribute)
        )
        return RelationSchema(
            self.name, list(self.attributes) + [attr], self.key
        )

    def without_attribute(self, attribute: str) -> "RelationSchema":
        """A new schema with one attribute dropped (schema evolution)."""
        self.position(attribute)  # raises if unknown
        remaining = [a for a in self.attributes if a.name != attribute]
        key = tuple(k for k in self.key if k != attribute)
        return RelationSchema(self.name, remaining, key)

"""A mini relational engine: the substrate behind relational wrappers."""

from repro.relational.database import Database
from repro.relational.query import OPS, Selection, project, select
from repro.relational.schema import (
    Attribute,
    RelationSchema,
    SchemaError,
    SQL_TYPES,
)
from repro.relational.table import IntegrityError, Table

__all__ = [
    "Attribute",
    "Database",
    "IntegrityError",
    "OPS",
    "RelationSchema",
    "SQL_TYPES",
    "SchemaError",
    "Selection",
    "Table",
    "project",
    "select",
]

"""The database catalog of the mini relational engine."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.relational.schema import RelationSchema, SchemaError
from repro.relational.table import Table

__all__ = ["Database"]


class Database:
    """A named collection of tables.

    >>> db = Database('cs')
    >>> t = db.create_table(RelationSchema('employee',
    ...     ['first_name', 'last_name', 'title', 'reports_to']))
    >>> _ = t.insert('Joe', 'Chung', 'professor', 'John Hennessy')
    >>> db.table('employee').rows()[0][0]
    'Joe'
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._tables: dict[str, Table] = {}

    def create_table(self, schema: RelationSchema) -> Table:
        """Create an empty table; raises if the name is taken."""
        if schema.name in self._tables:
            raise SchemaError(
                f"table {schema.name!r} already exists in {self.name!r}"
            )
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise SchemaError(f"no table {name!r} in database {self.name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        table = self._tables.get(name)
        if table is None:
            raise SchemaError(f"no table {name!r} in database {self.name!r}")
        return table

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def tables(self) -> Iterator[Table]:
        for name in self.table_names():
            yield self._tables[name]

    def load(self, name: str, rows: Iterable[tuple]) -> int:
        """Bulk-insert positional tuples into table ``name``."""
        return self.table(name).insert_many(rows)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{t.name}[{len(t)}]" for t in self.tables()
        )
        return f"Database({self.name!r}: {inner})"

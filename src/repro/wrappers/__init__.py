"""Wrappers: the per-source translation layer of the TSIMMIS architecture."""

from repro.wrappers.base import Source, SourceError, Wrapper
from repro.wrappers.capability import (
    BATCH_CAPABILITY,
    Capability,
    CapabilityViolation,
    FULL_CAPABILITY,
)
from repro.wrappers.facts import SchemaFacts, pattern_satisfiable
from repro.wrappers.oem_wrapper import OEMStoreWrapper
from repro.wrappers.registry import SourceRegistry
from repro.wrappers.relational_wrapper import RelationalWrapper
from repro.wrappers.sharding import (
    BloomFilter,
    HashPartition,
    RangePartition,
    SemiJoinFilter,
    SemiJoinQuery,
    ShardedSource,
    partition_forest,
    shard_name,
)
from repro.wrappers.sqlite_wrapper import SQLiteOEMStoreWrapper

__all__ = [
    "BATCH_CAPABILITY",
    "BloomFilter",
    "Capability",
    "CapabilityViolation",
    "FULL_CAPABILITY",
    "HashPartition",
    "OEMStoreWrapper",
    "RangePartition",
    "RelationalWrapper",
    "SQLiteOEMStoreWrapper",
    "SchemaFacts",
    "SemiJoinFilter",
    "SemiJoinQuery",
    "ShardedSource",
    "Source",
    "SourceError",
    "SourceRegistry",
    "partition_forest",
    "pattern_satisfiable",
    "shard_name",
    "Wrapper",
]

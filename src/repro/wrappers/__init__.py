"""Wrappers: the per-source translation layer of the TSIMMIS architecture."""

from repro.wrappers.base import Source, SourceError, Wrapper
from repro.wrappers.capability import (
    Capability,
    CapabilityViolation,
    FULL_CAPABILITY,
)
from repro.wrappers.facts import SchemaFacts, pattern_satisfiable
from repro.wrappers.oem_wrapper import OEMStoreWrapper
from repro.wrappers.registry import SourceRegistry
from repro.wrappers.relational_wrapper import RelationalWrapper

__all__ = [
    "Capability",
    "CapabilityViolation",
    "FULL_CAPABILITY",
    "OEMStoreWrapper",
    "RelationalWrapper",
    "SchemaFacts",
    "Source",
    "SourceError",
    "SourceRegistry",
    "pattern_satisfiable",
    "Wrapper",
]

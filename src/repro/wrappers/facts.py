"""Schema facts: structural knowledge a source may export.

Footnote 1 of the paper: after relational data is translated to OEM "we
have lost knowledge that objects at this source *must* have a regular
structure.  If this information is important to the applications, it
could be exported as additional facts about this source."

:class:`SchemaFacts` is that export: the possible top-level labels and,
per top-level label, the possible direct sub-object labels.  A *closed*
fact set is exhaustive — an object with a label outside it can never
exist at the source — which licenses the optimizer to **prune** logical
datamerge rules that require impossible structure (e.g. a condition on
``office`` pushed toward a relational source whose tables have no such
column) before any query is shipped.

Semi-structured sources simply don't export facts (``None``), keeping
the open-world behaviour that makes OEM suitable for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.msl.ast import Const, Pattern, SetPattern, VarItem

__all__ = ["SchemaFacts", "pattern_satisfiable"]


@dataclass(frozen=True)
class SchemaFacts:
    """Possible top-level labels and their direct child labels."""

    children: Mapping[str, frozenset[str]]
    closed: bool = True

    def __init__(
        self,
        children: Mapping[str, Iterable[str]],
        closed: bool = True,
    ) -> None:
        object.__setattr__(
            self,
            "children",
            {label: frozenset(kids) for label, kids in children.items()},
        )
        object.__setattr__(self, "closed", closed)

    @property
    def top_labels(self) -> frozenset[str]:
        return frozenset(self.children)

    def may_have_top(self, label: str) -> bool:
        """Could a top-level object carry ``label`` at this source?"""
        if not self.closed:
            return True
        return label in self.children

    def may_have_child(self, top_label: str | None, child_label: str) -> bool:
        """Could an object (under ``top_label``) have a ``child_label``
        sub-object?  ``top_label=None`` means "any top-level label"."""
        if not self.closed:
            return True
        if top_label is None:
            return any(
                child_label in kids for kids in self.children.values()
            )
        kids = self.children.get(top_label)
        if kids is None:
            return False
        return child_label in kids

    def tops_with_children(self, required: Iterable[str]) -> list[str]:
        """Top-level labels whose child set covers all of ``required``."""
        required = set(required)
        return [
            label
            for label, kids in self.children.items()
            if required <= kids
        ]


def pattern_satisfiable(pattern: Pattern, facts: SchemaFacts | None) -> bool:
    """Could ``pattern`` ever match an object at a source with ``facts``?

    Conservative: only the top-level label and *direct* constant-labelled
    items (including rest conditions) are checked; descendant items and
    variable labels at the child level never cause pruning.  Returns
    ``True`` when ``facts`` is ``None`` (nothing is known).
    """
    if facts is None or not facts.closed:
        return True

    required_children: set[str] = set()
    value = pattern.value
    if isinstance(value, SetPattern):
        for item in value.items:
            if isinstance(item, VarItem) or item.descendant:
                continue
            if isinstance(item.pattern.label, Const):
                required_children.add(str(item.pattern.label.value))
        if value.rest is not None:
            for condition in value.rest.conditions:
                if isinstance(condition.label, Const):
                    required_children.add(str(condition.label.value))

    if isinstance(pattern.label, Const):
        top = str(pattern.label.value)
        if not facts.may_have_top(top):
            return False
        return all(
            facts.may_have_child(top, child) for child in required_children
        )
    # variable top label: some top label must cover everything required
    if not required_children:
        return True
    return bool(facts.tops_with_children(required_children))

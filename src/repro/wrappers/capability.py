"""Query-capability descriptions for sources.

Section 3.5: "the limited query capabilities of the underlying sources
may prohibit even simple algebraic optimizations ... For example, the
source whois may not be able to evaluate the condition on 'year'".  This
module models that: each wrapper advertises a :class:`Capability`, and
the optimizer consults it to decide which conditions can be pushed into
the source query and which must be *compensated* at the mediator (the
capabilities-based rewriting of [PGH], in miniature).

:meth:`Capability.split` takes a pattern destined for the source and
returns ``(relaxed_pattern, residual_conditions)``: the relaxed pattern
is guaranteed acceptable to the source; the residual conditions are
comparisons the mediator must apply to the returned bindings.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.msl.ast import (
    Comparison,
    Const,
    Pattern,
    PatternItem,
    RestSpec,
    SetPattern,
    Term,
    Var,
    VarItem,
)

__all__ = [
    "Capability",
    "FULL_CAPABILITY",
    "BATCH_CAPABILITY",
    "CapabilityViolation",
]


class CapabilityViolation(Exception):
    """A source received a query it advertises it cannot evaluate."""


@dataclass(frozen=True)
class Capability:
    """What value-filters a source can evaluate.

    Attributes
    ----------
    filterable_labels:
        when not ``None``, the source can only apply constant/comparison
        filters to sub-objects carrying these labels; filters on other
        labels must be compensated at the mediator.
    supports_wildcards:
        whether descendant (``..``) items may be shipped ("some sources
        may not support them", Section 2).
    supports_comparisons:
        whether non-equality rest-condition comparisons can be shipped.
    supports_batch_filters:
        whether the source accepts batched ``IN``-style / Bloom value
        filters (:class:`~repro.wrappers.sharding.SemiJoinQuery`);
        when set, the parameterized-query path ships one semi-join
        batch per shard instead of one probe per input tuple.
    name:
        a display name for plans and error messages.
    """

    filterable_labels: frozenset[str] | None = None
    supports_wildcards: bool = True
    supports_comparisons: bool = True
    supports_batch_filters: bool = False
    name: str = "capability"

    # -- checks -----------------------------------------------------------

    def can_filter(self, label: object) -> bool:
        if self.filterable_labels is None:
            return True
        return isinstance(label, str) and label in self.filterable_labels

    def accepts(self, pattern: Pattern) -> bool:
        """Would the source accept ``pattern`` as-is?"""
        relaxed, residual = self.split(pattern)
        return not residual and relaxed == pattern

    def check(self, pattern: Pattern) -> None:
        """Raise :class:`CapabilityViolation` unless acceptable."""
        if not self.accepts(pattern):
            raise CapabilityViolation(
                f"source capability {self.name!r} rejects pattern {pattern}"
            )

    # -- rewriting -----------------------------------------------------------

    def split(
        self, pattern: Pattern
    ) -> tuple[Pattern, list[Comparison]]:
        """Relax ``pattern`` to what the source accepts + residual filters.

        Constant values on unfilterable sub-object labels are replaced by
        fresh variables and returned as equality comparisons for the
        mediator to apply.  Descendant items on a wildcard-less source
        are *not* relaxable (there is no variable trick that recovers
        them) and raise :class:`CapabilityViolation`.
        """
        counter = itertools.count(1)
        residual: list[Comparison] = []

        def fresh_var() -> Var:
            return Var(f"_Cap{next(counter)}")

        def relax_pattern(p: Pattern, depth: int) -> Pattern:
            value = p.value
            # a constant value slot at depth>=1 is a filter on this label
            if (
                depth >= 1
                and isinstance(value, Const)
                and not self.can_filter(_label_text(p.label))
            ):
                var = fresh_var()
                residual.append(Comparison(var, "=", value))
                return Pattern(
                    label=p.label,
                    value=var,
                    type=p.type,
                    oid=p.oid,
                    object_var=p.object_var,
                )
            if isinstance(value, SetPattern):
                return Pattern(
                    label=p.label,
                    value=relax_set(value, depth),
                    type=p.type,
                    oid=p.oid,
                    object_var=p.object_var,
                )
            return p

        def relax_set(sp: SetPattern, depth: int) -> SetPattern:
            items: list[PatternItem | VarItem] = []
            for item in sp.items:
                if isinstance(item, VarItem):
                    items.append(item)
                    continue
                if item.descendant and not self.supports_wildcards:
                    raise CapabilityViolation(
                        f"source capability {self.name!r} does not support"
                        f" descendant ('..') patterns: {item.pattern}"
                    )
                items.append(
                    PatternItem(
                        relax_pattern(item.pattern, depth + 1),
                        item.descendant,
                    )
                )
            rest = sp.rest
            if rest is not None and rest.conditions:
                new_conditions = tuple(
                    relax_pattern(c, depth + 1) for c in rest.conditions
                )
                rest = RestSpec(rest.var, new_conditions)
            return SetPattern(tuple(items), rest)

        relaxed = relax_pattern(pattern, 0)
        return relaxed, residual


def _label_text(label: Term) -> object:
    if isinstance(label, Const):
        return label.value
    return label


#: The capability of a fully-capable source (a conventional DBMS wrapper).
FULL_CAPABILITY = Capability(name="full")

#: Full capability plus batched semi-join filters — what the shard-ready
#: store wrappers advertise.  Kept out of :data:`FULL_CAPABILITY` so
#: existing sources keep their per-tuple probe wire traffic unless they
#: opt in.
BATCH_CAPABILITY = Capability(
    supports_batch_filters=True, name="full+batch"
)

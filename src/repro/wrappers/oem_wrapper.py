"""A wrapper over an in-memory OEM store (semi-structured sources).

This is the ``whois`` kind of source: objects with no regular schema,
some fields present on some objects only.  The store holds top-level OEM
objects directly; an optional inverted index over (child label, atomic
value) pairs narrows candidate top-level objects for queries with
constant sub-object filters — standing in for whatever native access
paths a real source would have.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.external.registry import ExternalRegistry
from repro.msl.ast import (
    Const,
    Pattern,
    PatternCondition,
    PatternItem,
    Rule,
    SetPattern,
)
from repro.oem.model import OEMObject
from repro.wrappers.base import Wrapper
from repro.wrappers.capability import Capability

__all__ = ["OEMStoreWrapper"]


class OEMStoreWrapper(Wrapper):
    """Wrapper exporting a mutable collection of OEM objects.

    >>> from repro.oem import parse_oem
    >>> from repro.msl.parser import parse_rule
    >>> w = OEMStoreWrapper('whois', parse_oem(
    ...     "<&1, person, set, {&2}> <&2, name, string, 'Ann'>"))
    >>> [o.value for o in w.answer(parse_rule('<n N> :- <person {<name N>}>'))]
    ['Ann']
    """

    def __init__(
        self,
        name: str,
        objects: Iterable[OEMObject] = (),
        capability: Capability | None = None,
        registry: ExternalRegistry | None = None,
        indexed: bool = True,
        export_facts: bool = False,
        compile: bool = True,
    ) -> None:
        super().__init__(name, capability, registry, compile=compile)
        self._objects: list[OEMObject] = list(objects)
        self._indexed = indexed
        self._index: dict[tuple[str, object], set[int]] | None = None
        self._label_index: dict[str, set[int]] | None = None
        self._export_facts = export_facts
        self._facts_cache = None

    # -- store mutation -----------------------------------------------------

    def add(self, *objects: OEMObject) -> None:
        """Add top-level objects to the store."""
        self._objects.extend(objects)
        self._invalidate()

    def remove_where(self, label: str) -> int:
        """Remove all top-level objects carrying ``label``."""
        before = len(self._objects)
        self._objects = [o for o in self._objects if o.label != label]
        self._invalidate()
        return before - len(self._objects)

    def clear(self) -> None:
        self._objects.clear()
        self._invalidate()

    def __len__(self) -> int:
        return len(self._objects)

    def _invalidate(self) -> None:
        self._index = None
        self._label_index = None
        self._facts_cache = None

    @property
    def schema_facts(self):
        """Facts derived from the *current* store contents, when the
        store opted in (``export_facts=True``).  A store that keeps
        accepting arbitrary new shapes should not opt in — derived facts
        are closed-world and would wrongly prune future shapes."""
        if not self._export_facts:
            return None
        if self._facts_cache is None:
            from collections import defaultdict

            from repro.wrappers.facts import SchemaFacts

            children: dict[str, set[str]] = defaultdict(set)
            for obj in self._objects:
                kids = children[obj.label]
                for child in obj.children:
                    kids.add(child.label)
            self._facts_cache = SchemaFacts(children)
        return self._facts_cache

    # -- the Wrapper surface ---------------------------------------------------

    def export(self) -> Sequence[OEMObject]:
        return self._objects

    def candidates(self, query: Rule) -> Sequence[OEMObject]:
        """Narrow the export using the store's inverted index.

        Only the query's *first* top-level pattern guides the narrowing
        (further patterns re-match anyway); the index covers top-level
        label plus (direct child label, atomic value) filters.
        """
        if not self._indexed or not self._objects:
            return self._objects
        first: Pattern | None = None
        for condition in query.tail:
            if isinstance(condition, PatternCondition):
                first = condition.pattern
                break
        if first is None:
            return self._objects

        self._ensure_index()
        assert self._index is not None and self._label_index is not None
        candidate_ids: set[int] | None = None

        if isinstance(first.label, Const):
            candidate_ids = set(
                self._label_index.get(str(first.label.value), set())
            )

        value = first.value
        if isinstance(value, SetPattern):
            for item in value.items:
                if not isinstance(item, PatternItem) or item.descendant:
                    continue
                p = item.pattern
                if isinstance(p.label, Const) and isinstance(p.value, Const):
                    matched = self._index.get(
                        (str(p.label.value), p.value.value), set()
                    )
                    candidate_ids = (
                        set(matched)
                        if candidate_ids is None
                        else candidate_ids & matched
                    )
        if candidate_ids is None:
            return self._objects
        return [self._objects[i] for i in sorted(candidate_ids)]

    def semijoin_candidates(self, query) -> Sequence[OEMObject]:
        """Indexed batch narrowing: one index union per filter value.

        An explicit value set resolves through the inverted index (the
        union over its values, intersected across filters); a Bloom
        filter falls back to membership-testing the label-narrowed
        candidates.  Candidates come back in store position order —
        the same order the per-tuple probe path sees, which is what
        keeps semi-join shipping bit-for-bit equivalent.
        """
        if not self._indexed or not self._objects:
            return super().semijoin_candidates(query)
        self._ensure_index()
        assert self._index is not None and self._label_index is not None
        candidate_ids: set[int] | None = None
        first: Pattern | None = None
        for condition in query.rule.tail:
            if isinstance(condition, PatternCondition):
                first = condition.pattern
                break
        if first is not None and isinstance(first.label, Const):
            candidate_ids = set(
                self._label_index.get(str(first.label.value), set())
            )
        bloom_filters = []
        for shipped in query.filters:
            if shipped.values is not None:
                matched: set[int] = set()
                for value in shipped.values:
                    try:
                        matched |= self._index.get(
                            (shipped.label, value), set()
                        )
                    except TypeError:  # unhashable value: matches nothing
                        continue
                candidate_ids = (
                    matched
                    if candidate_ids is None
                    else candidate_ids & matched
                )
            else:
                bloom_filters.append(shipped)
        if candidate_ids is None:
            forest: Sequence[OEMObject] = self._objects
        else:
            forest = [self._objects[i] for i in sorted(candidate_ids)]
        for shipped in bloom_filters:
            forest = [
                obj for obj in forest if shipped.admits_object(obj)
            ]
        return forest

    def _ensure_index(self) -> None:
        if self._index is not None:
            return
        index: dict[tuple[str, object], set[int]] = defaultdict(set)
        label_index: dict[str, set[int]] = defaultdict(set)
        for position, obj in enumerate(self._objects):
            label_index[obj.label].add(position)
            for child in obj.children:
                if child.is_atomic and not isinstance(child.value, bytes):
                    try:
                        index[(child.label, child.value)].add(position)
                    except TypeError:  # unhashable — skip silently
                        continue
        self._index = dict(index)
        self._label_index = dict(label_index)

"""The source interface: what mediators see.

Figure 1.1: wrappers "convert data from each source into a common model"
and "provide a common query language for extracting information".  In
this codebase every queryable component — wrapper or mediator — is a
:class:`Source`: it has a name, answers MSL queries with OEM objects,
and advertises a :class:`~repro.wrappers.capability.Capability`.
Mediators compose because they are Sources themselves.

:class:`Wrapper` adds the bookkeeping shared by concrete wrappers:
query counting (for the statistics module), capability enforcement, and
the default answer path through the naive MSL evaluator.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.external.registry import ExternalRegistry
from repro.msl.analysis import check_rule
from repro.msl.ast import Comparison, PatternCondition, Rule
from repro.msl.compile import CompileCache
from repro.msl.errors import MSLSemanticError
from repro.msl.evaluate import evaluate_rule
from repro.oem.model import OEMObject
from repro.oem.oid import OidGenerator
from repro.wrappers.capability import (
    Capability,
    CapabilityViolation,
    FULL_CAPABILITY,
)

__all__ = ["Source", "Wrapper", "SourceError", "MalformedAnswerError"]


class SourceError(Exception):
    """A query could not be served by a source."""


class MalformedAnswerError(SourceError):
    """A source's answer contained structurally invalid OEM.

    Raised by the governor's strict-mode
    :class:`~repro.governor.sanitizer.AnswerSanitizer` when an answer
    carries a non-OEM item, a corrupt label or atom type, a cycle, or
    exceeds the nesting-depth / answer-size budget.  It is a
    :class:`SourceError`, so a degrade-mode mediator treats a
    malformed source exactly like an unavailable one.
    """

    def __init__(self, source: str, issues: Sequence[str]) -> None:
        preview = "; ".join(issues[:3])
        more = f" (+{len(issues) - 3} more)" if len(issues) > 3 else ""
        super().__init__(
            f"source {source!r} returned malformed OEM: {preview}{more}"
        )
        self.source = source
        self.issues = list(issues)


class Source(abc.ABC):
    """Anything that answers MSL queries with OEM objects."""

    name: str

    @abc.abstractmethod
    def answer(self, query: Rule) -> list[OEMObject]:
        """Evaluate ``query`` and return the materialized result objects."""

    @abc.abstractmethod
    def export(self) -> Sequence[OEMObject]:
        """The source's full OEM view (its top-level objects).

        For a mediator this materializes the view — potentially
        expensive, which is exactly why MSI pushes conditions instead.
        """

    @property
    def capability(self) -> Capability:
        """What the source can filter; full capability by default."""
        return FULL_CAPABILITY

    @property
    def schema_facts(self):
        """Structural facts the source exports (footnote 1), or ``None``.

        ``None`` means nothing is known — the open-world default for
        semi-structured sources.  See :mod:`repro.wrappers.facts`.
        """
        return None

    def stats(self) -> dict[str, object]:
        """Operational counters for registry-level snapshots.

        Sources without bookkeeping report nothing; :class:`Wrapper`
        and the reliability decorators add theirs.
        """
        return {}

    def reset_counters(self) -> None:
        """Zero any operational counters (benchmark harness hook)."""


class Wrapper(Source):
    """Base class for concrete wrappers.

    Subclasses implement :meth:`export` (the source's OEM view) and may
    override :meth:`candidates` to exploit native access paths (indexes,
    relational selections) for a given query.
    """

    def __init__(
        self,
        name: str,
        capability: Capability | None = None,
        registry: ExternalRegistry | None = None,
        compile: bool = True,
    ) -> None:
        if not name or not name.isidentifier():
            raise SourceError(f"invalid source name {name!r}")
        self.name = name
        self._capability = capability or FULL_CAPABILITY
        self._registry = registry
        self._oidgen = OidGenerator(f"&{name}_")
        # repeated (parameterized) queries compile once; compile=False
        # keeps the interpretive reference evaluator
        self._compile_cache = (
            CompileCache(registry) if compile else None
        )
        self.queries_answered = 0
        self.objects_returned = 0

    @property
    def capability(self) -> Capability:
        return self._capability

    # -- subclass surface ---------------------------------------------------

    @abc.abstractmethod
    def export(self) -> Sequence[OEMObject]:
        """The source's full OEM view (its top-level objects)."""

    def candidates(self, query: Rule) -> Sequence[OEMObject]:
        """Top-level objects that might satisfy ``query``.

        The default is the full export; subclasses with native access
        paths narrow this (and that narrowing is exactly the "pushed
        down" work the mediator saves by shipping conditions here).
        """
        return self.export()

    # -- the Source interface -------------------------------------------------

    def answer(self, query: Rule) -> list[OEMObject]:
        """Answer one MSL query against this source.

        The query's tail patterns must all be addressed to this source
        (``@name``) or carry no source annotation.  Patterns are checked
        against the advertised capability first — a real autonomous
        source would reject what it cannot evaluate, and so do we.
        """
        check_rule(query)
        for condition in query.tail:
            if isinstance(condition, PatternCondition):
                if condition.source not in (None, self.name):
                    raise SourceError(
                        f"query for source {condition.source!r} sent to"
                        f" {self.name!r}"
                    )
                try:
                    self._capability.check(condition.pattern)
                except CapabilityViolation as exc:
                    raise SourceError(str(exc)) from exc
            elif isinstance(condition, Comparison):
                # a source may advertise the ability to evaluate
                # comparisons locally (capability-based rewriting then
                # ships them instead of compensating at the mediator)
                if not self._capability.supports_comparisons:
                    raise SourceError(
                        f"source {self.name!r} cannot evaluate comparison"
                        f" {condition}"
                    )
            else:
                # external calls are mediator-side business
                raise SourceError(
                    f"source {self.name!r} cannot evaluate non-pattern"
                    f" condition {condition}"
                )

        forest = self.candidates(query)
        try:
            if self._compile_cache is not None:
                result = self._compile_cache.rule(query).evaluate(
                    {None: forest, self.name: forest},
                    self._registry,
                    self._oidgen,
                    check=False,
                )
            else:
                result = evaluate_rule(
                    query,
                    {None: forest, self.name: forest},
                    self._registry,
                    self._oidgen,
                    check=False,
                )
        except MSLSemanticError as exc:
            raise SourceError(f"{self.name}: {exc}") from exc
        self.queries_answered += 1
        self.objects_returned += len(result)
        return result

    def reset_counters(self) -> None:
        """Zero the query/object counters (benchmarks use this)."""
        self.queries_answered = 0
        self.objects_returned = 0

    def stats(self) -> dict[str, object]:
        return {
            "queries_answered": self.queries_answered,
            "objects_returned": self.objects_returned,
        }

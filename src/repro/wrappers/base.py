"""The source interface: what mediators see.

Figure 1.1: wrappers "convert data from each source into a common model"
and "provide a common query language for extracting information".  In
this codebase every queryable component — wrapper or mediator — is a
:class:`Source`: it has a name, answers MSL queries with OEM objects,
and advertises a :class:`~repro.wrappers.capability.Capability`.
Mediators compose because they are Sources themselves.

:class:`Wrapper` adds the bookkeeping shared by concrete wrappers:
query counting (for the statistics module), capability enforcement, and
the default answer path through the naive MSL evaluator.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.external.registry import ExternalRegistry
from repro.msl.analysis import check_rule
from repro.msl.ast import Comparison, PatternCondition, Rule
from repro.msl.compile import CompileCache
from repro.msl.errors import MSLSemanticError
from repro.msl.evaluate import evaluate_rule
from repro.oem.model import OEMObject
from repro.oem.oid import OidGenerator
from repro.wrappers.capability import (
    Capability,
    CapabilityViolation,
    FULL_CAPABILITY,
)

__all__ = ["Source", "Wrapper", "SourceError", "MalformedAnswerError"]


def _valid_source_name(name: str) -> bool:
    """Identifiers, plus the shard-qualified form ``logical#<index>``.

    Shards of a :class:`~repro.wrappers.sharding.ShardedSource` carry
    their qualified name directly so that cache keys, breakers,
    bulkheads, health records, and warnings all key per shard.
    """
    if not name:
        return False
    base, sep, index = name.partition("#")
    if not base.isidentifier():
        return False
    return not sep or index.isdigit()


class SourceError(Exception):
    """A query could not be served by a source."""


class MalformedAnswerError(SourceError):
    """A source's answer contained structurally invalid OEM.

    Raised by the governor's strict-mode
    :class:`~repro.governor.sanitizer.AnswerSanitizer` when an answer
    carries a non-OEM item, a corrupt label or atom type, a cycle, or
    exceeds the nesting-depth / answer-size budget.  It is a
    :class:`SourceError`, so a degrade-mode mediator treats a
    malformed source exactly like an unavailable one.
    """

    def __init__(self, source: str, issues: Sequence[str]) -> None:
        preview = "; ".join(issues[:3])
        more = f" (+{len(issues) - 3} more)" if len(issues) > 3 else ""
        super().__init__(
            f"source {source!r} returned malformed OEM: {preview}{more}"
        )
        self.source = source
        self.issues = list(issues)


class Source(abc.ABC):
    """Anything that answers MSL queries with OEM objects."""

    name: str

    @abc.abstractmethod
    def answer(self, query: Rule) -> list[OEMObject]:
        """Evaluate ``query`` and return the materialized result objects."""

    @abc.abstractmethod
    def export(self) -> Sequence[OEMObject]:
        """The source's full OEM view (its top-level objects).

        For a mediator this materializes the view — potentially
        expensive, which is exactly why MSI pushes conditions instead.
        """

    @property
    def capability(self) -> Capability:
        """What the source can filter; full capability by default."""
        return FULL_CAPABILITY

    @property
    def schema_facts(self):
        """Structural facts the source exports (footnote 1), or ``None``.

        ``None`` means nothing is known — the open-world default for
        semi-structured sources.  See :mod:`repro.wrappers.facts`.
        """
        return None

    def stats(self) -> dict[str, object]:
        """Operational counters for registry-level snapshots.

        Sources without bookkeeping report nothing; :class:`Wrapper`
        and the reliability decorators add theirs.
        """
        return {}

    def reset_counters(self) -> None:
        """Zero any operational counters (benchmark harness hook)."""


class Wrapper(Source):
    """Base class for concrete wrappers.

    Subclasses implement :meth:`export` (the source's OEM view) and may
    override :meth:`candidates` to exploit native access paths (indexes,
    relational selections) for a given query.
    """

    def __init__(
        self,
        name: str,
        capability: Capability | None = None,
        registry: ExternalRegistry | None = None,
        compile: bool = True,
    ) -> None:
        if not _valid_source_name(name):
            raise SourceError(f"invalid source name {name!r}")
        self.name = name
        self._capability = capability or FULL_CAPABILITY
        self._registry = registry
        self._oidgen = OidGenerator(f"&{name}_")
        # repeated (parameterized) queries compile once; compile=False
        # keeps the interpretive reference evaluator
        self._compile_cache = (
            CompileCache(registry) if compile else None
        )
        self.queries_answered = 0
        self.objects_returned = 0

    @property
    def capability(self) -> Capability:
        return self._capability

    # -- subclass surface ---------------------------------------------------

    @abc.abstractmethod
    def export(self) -> Sequence[OEMObject]:
        """The source's full OEM view (its top-level objects)."""

    def candidates(self, query: Rule) -> Sequence[OEMObject]:
        """Top-level objects that might satisfy ``query``.

        The default is the full export; subclasses with native access
        paths narrow this (and that narrowing is exactly the "pushed
        down" work the mediator saves by shipping conditions here).
        """
        return self.export()

    # -- the Source interface -------------------------------------------------

    def answer(self, query: Rule) -> list[OEMObject]:
        """Answer one MSL query against this source.

        The query's tail patterns must all be addressed to this source
        (``@name``) or carry no source annotation.  Patterns are checked
        against the advertised capability first — a real autonomous
        source would reject what it cannot evaluate, and so do we.

        A :class:`~repro.wrappers.sharding.SemiJoinQuery` (a projection
        query plus batched value filters) is accepted when the
        capability advertises ``supports_batch_filters`` — recognized
        structurally to keep this module import-free of the sharding
        layer.
        """
        if getattr(query, "is_semijoin", False):
            return self.answer_semijoin(query)
        self._check_query(query)
        forest = self.candidates(query)
        return self._evaluate(query, forest)

    def answer_semijoin(self, query) -> list[OEMObject]:
        """Evaluate one batched semi-join probe.

        The shipped rule is the full-variable projection query; the
        filters restrict candidates to objects whose direct children
        pass every value filter (a Bloom filter admits a superset — the
        mediator re-checks exactly).  One call replaces one wire probe
        per distinct parameter tuple.
        """
        if not self._capability.supports_batch_filters:
            raise SourceError(
                f"source {self.name!r} does not accept batched semi-join"
                f" filters (capability {self._capability.name!r})"
            )
        self._check_query(query.rule)
        forest = self.semijoin_candidates(query)
        return self._evaluate(query.rule, forest)

    def semijoin_candidates(self, query) -> Sequence[OEMObject]:
        """Candidates passing the batch's value filters.

        The default filters :meth:`candidates` objects one by one;
        subclasses with native access paths (inverted indexes, SQL)
        override this with an indexed union over the filter values.
        """
        forest = self.candidates(query.rule)
        for shipped in query.filters:
            forest = [
                obj for obj in forest if shipped.admits_object(obj)
            ]
        return forest

    def _check_query(self, query: Rule) -> None:
        check_rule(query)
        # a shard wrapper ("big#2") also answers queries addressed to
        # its logical source ("big"): the sharded entry fans logical
        # queries to shards without rewriting their source annotations
        logical = self.name.partition("#")[0]
        accepted = (None, self.name, logical)
        for condition in query.tail:
            if isinstance(condition, PatternCondition):
                if condition.source not in accepted:
                    raise SourceError(
                        f"query for source {condition.source!r} sent to"
                        f" {self.name!r}"
                    )
                try:
                    self._capability.check(condition.pattern)
                except CapabilityViolation as exc:
                    raise SourceError(str(exc)) from exc
            elif isinstance(condition, Comparison):
                # a source may advertise the ability to evaluate
                # comparisons locally (capability-based rewriting then
                # ships them instead of compensating at the mediator)
                if not self._capability.supports_comparisons:
                    raise SourceError(
                        f"source {self.name!r} cannot evaluate comparison"
                        f" {condition}"
                    )
            else:
                # external calls are mediator-side business
                raise SourceError(
                    f"source {self.name!r} cannot evaluate non-pattern"
                    f" condition {condition}"
                )

    def _evaluate(
        self, query: Rule, forest: Sequence[OEMObject]
    ) -> list[OEMObject]:
        # the logical alias mirrors _check_query: a shard evaluates
        # queries still annotated with its logical source name
        forests = {
            None: forest,
            self.name: forest,
            self.name.partition("#")[0]: forest,
        }
        try:
            if self._compile_cache is not None:
                result = self._compile_cache.rule(query).evaluate(
                    forests,
                    self._registry,
                    self._oidgen,
                    check=False,
                )
            else:
                result = evaluate_rule(
                    query,
                    forests,
                    self._registry,
                    self._oidgen,
                    check=False,
                )
        except MSLSemanticError as exc:
            raise SourceError(f"{self.name}: {exc}") from exc
        self.queries_answered += 1
        self.objects_returned += len(result)
        return result

    def reset_counters(self) -> None:
        """Zero the query/object counters (benchmarks use this)."""
        self.queries_answered = 0
        self.objects_returned = 0

    def stats(self) -> dict[str, object]:
        return {
            "queries_answered": self.queries_answered,
            "objects_returned": self.objects_returned,
        }

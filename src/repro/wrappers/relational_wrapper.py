"""A wrapper exporting a relational database as OEM objects.

Figure 2.2 of the paper: the ``cs`` wrapper turns each tuple of

.. code-block:: text

    employee(first_name, last_name, title, reports_to)
    student(first_name, last_name, year)

into a top-level OEM object labelled with the **relation name**, with one
sub-object per attribute — "notice how the schema information has now
been incorporated into the individual OEM objects".  That relocation of
schema into data is what lets MSL variables range over relation names
(the schematic-discrepancy resolution of the running example).

NULL attributes are simply omitted from the exported object: relational
missing values become OEM irregularity, which MSL handles natively.
"""

from __future__ import annotations

from typing import Sequence

from repro.external.registry import ExternalRegistry
from repro.msl.ast import (
    Const,
    Pattern,
    PatternCondition,
    PatternItem,
    Rule,
    SetPattern,
)
from repro.oem.model import OEMObject, SET_TYPE
from repro.oem.oid import Oid
from repro.relational.database import Database
from repro.relational.query import Selection, select
from repro.relational.table import Table
from repro.wrappers.base import Wrapper
from repro.wrappers.capability import Capability

__all__ = ["RelationalWrapper"]


class RelationalWrapper(Wrapper):
    """Wrapper over a :class:`~repro.relational.database.Database`.

    >>> from repro.relational.schema import RelationSchema
    >>> db = Database('cs')
    >>> t = db.create_table(RelationSchema('student',
    ...     ['first_name', 'last_name', 'year']))
    >>> _ = t.insert('Nick', 'Naive', 3)
    >>> w = RelationalWrapper('cs', db)
    >>> w.export()[0].label
    'student'
    """

    def __init__(
        self,
        name: str,
        database: Database,
        capability: Capability | None = None,
        registry: ExternalRegistry | None = None,
        compile: bool = True,
    ) -> None:
        super().__init__(name, capability, registry, compile=compile)
        self.database = database

    @property
    def schema_facts(self):
        """The catalog as schema facts (footnote 1): table names are the
        only possible top-level labels, attribute names the only possible
        sub-object labels.  Recomputed per call, so live schema evolution
        (ALTER TABLE) is reflected immediately."""
        from repro.wrappers.facts import SchemaFacts

        return SchemaFacts(
            {
                table.name: table.schema.attribute_names
                for table in self.database.tables()
            }
        )

    # -- OEM translation -----------------------------------------------------

    def _tuple_to_oem(
        self, table: Table, row_number: int, row: tuple
    ) -> OEMObject:
        """One relational tuple as an OEM object (Figure 2.2's shape)."""
        children = []
        for attr, value in zip(table.schema.attributes, row):
            if value is None:
                continue  # NULL: the sub-object is simply absent
            oid = Oid(f"&{self.name}_{table.name}{row_number}_{attr.name}")
            children.append(OEMObject(attr.name, value, None, oid))
        return OEMObject(
            table.name,
            children,
            SET_TYPE,
            Oid(f"&{self.name}_{table.name}{row_number}"),
        )

    def _export_table(
        self, table: Table, rows: list[tuple] | None = None
    ) -> list[OEMObject]:
        source_rows = table.rows() if rows is None else rows
        all_rows = table.rows()
        # row numbers are positions in the table, so oids are stable
        # across repeated exports of unchanged data
        numbering = {id(row): i + 1 for i, row in enumerate(all_rows)}
        result = []
        for row in source_rows:
            number = numbering.get(id(row))
            if number is None:
                try:
                    number = all_rows.index(row) + 1
                except ValueError:
                    number = 0
            result.append(self._tuple_to_oem(table, number, row))
        return result

    def export(self) -> Sequence[OEMObject]:
        objects: list[OEMObject] = []
        for table in self.database.tables():
            objects.extend(self._export_table(table))
        return objects

    # -- native access path ------------------------------------------------

    def candidates(self, query: Rule) -> Sequence[OEMObject]:
        """Translate the query's first pattern into relational selections.

        * a constant top-level label names the relation to scan;
        * constant-valued direct sub-object patterns whose labels are
          attributes become equality selections;
        * a pattern naming an attribute the relation lacks yields no rows
          from that relation (it can never match).

        Anything subtler falls back to matching over the translated
        objects — the wrapper stays correct, just less selective.
        """
        first: Pattern | None = None
        for condition in query.tail:
            if isinstance(condition, PatternCondition):
                first = condition.pattern
                break
        if first is None:
            return self.export()

        if isinstance(first.label, Const):
            relation = str(first.label.value)
            if not self.database.has_table(relation):
                return []
            tables = [self.database.table(relation)]
        else:
            tables = list(self.database.tables())

        required, selections = _pattern_filters(first)
        objects: list[OEMObject] = []
        for table in tables:
            schema = table.schema
            if any(not schema.has_attribute(attr) for attr in required):
                continue
            applicable = [
                s for s in selections if schema.has_attribute(s.attribute)
            ]
            rows = list(select(table, applicable))
            objects.extend(self._export_table(table, rows))
        return objects


def _pattern_filters(
    pattern: Pattern,
) -> tuple[set[str], list[Selection]]:
    """Required attribute names and equality selections from a pattern."""
    required: set[str] = set()
    selections: list[Selection] = []
    value = pattern.value
    if not isinstance(value, SetPattern):
        return required, selections
    items = list(value.items)
    rest_conditions = (
        list(value.rest.conditions) if value.rest is not None else []
    )
    for item in items:
        if not isinstance(item, PatternItem) or item.descendant:
            continue
        _collect(item.pattern, required, selections)
    for condition in rest_conditions:
        _collect(condition, required, selections)
    return required, selections


def _collect(
    pattern: Pattern, required: set[str], selections: list[Selection]
) -> None:
    if not isinstance(pattern.label, Const):
        return
    attribute = str(pattern.label.value)
    required.add(attribute)
    if isinstance(pattern.value, Const):
        selections.append(Selection(attribute, "=", pattern.value.value))

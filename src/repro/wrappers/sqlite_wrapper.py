"""A disk-backed OEM store wrapper on stdlib :mod:`sqlite3`.

The in-memory :class:`~repro.wrappers.oem_wrapper.OEMStoreWrapper` holds
its whole forest (plus an inverted index) in Python objects — fine for
tens of thousands of records, hopeless for the million-object scenarios
the shard benchmarks run in CI.  This wrapper persists the forest in one
adjacency-encoded table and answers the same two narrowing calls —
:meth:`candidates` and :meth:`semijoin_candidates` — with indexed SQL,
reconstructing only the matching top-level objects.

Layout: one row per OEM node, keyed ``(root, node)`` where ``node`` is
the preorder ordinal inside its top-level object (the root itself is
node 0, so ``parent = 0`` selects exactly the direct children — the
level both the value index and semi-join filters address).  Atomic
values are stored twice: ``raw`` round-trips the Python value by OEM
type, and ``enc`` holds the canonical
:func:`~repro.wrappers.sharding.encode_value` bytes so numeric equality
(``1 == 1.0``) matches in SQL exactly as it does in the in-memory
matcher and the partition hash.

By default the wrapper advertises
:data:`~repro.wrappers.capability.BATCH_CAPABILITY`: a disk-backed
store is precisely the source where shipping one ``IN`` filter beats a
thousand per-tuple probes.
"""

from __future__ import annotations

import itertools
import sqlite3
import threading
from typing import Iterable, Sequence

from repro.external.registry import ExternalRegistry
from repro.msl.ast import (
    Const,
    Pattern,
    PatternCondition,
    PatternItem,
    Rule,
    SetPattern,
)
from repro.oem.model import OEMObject, SET_TYPE
from repro.wrappers.base import SourceError, Wrapper
from repro.wrappers.capability import BATCH_CAPABILITY, Capability
from repro.wrappers.sharding import encode_value

__all__ = ["SQLiteOEMStoreWrapper"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS nodes (
    root   INTEGER NOT NULL,
    node   INTEGER NOT NULL,
    parent INTEGER,
    label  TEXT NOT NULL,
    kind   TEXT NOT NULL,
    raw    TEXT,
    enc    BLOB,
    oid    TEXT,
    PRIMARY KEY (root, node)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS nodes_top_label
    ON nodes(label, root) WHERE parent IS NULL;
CREATE INDEX IF NOT EXISTS nodes_child_value
    ON nodes(label, enc, root) WHERE parent = 0;
"""

#: Rows per executemany batch during bulk loads.
_LOAD_BATCH = 20_000

#: Values per SQL ``IN`` list (well under SQLite's bound-variable cap).
_IN_CHUNK = 500


def _encode_raw(kind: str, value: object) -> str | None:
    """Round-trippable text form of an atomic value, by OEM type."""
    if kind == "string":
        return value  # type: ignore[return-value]
    if kind == "bytes":
        return value.hex()  # type: ignore[union-attr]
    if kind == "boolean":
        return "1" if value else "0"
    if kind == "null":
        return None
    return repr(value)  # integer / real


def _decode_raw(kind: str, raw: str | None) -> object:
    if kind == "string":
        return raw
    if kind == "bytes":
        return bytes.fromhex(raw or "")
    if kind == "boolean":
        return raw == "1"
    if kind == "null":
        return None
    if kind == "integer":
        return int(raw)  # type: ignore[arg-type]
    try:  # "real" admits ints; repr round-trips either
        return int(raw)  # type: ignore[arg-type]
    except ValueError:
        return float(raw)  # type: ignore[arg-type]


class SQLiteOEMStoreWrapper(Wrapper):
    """Wrapper over an adjacency-encoded OEM forest in SQLite.

    >>> from repro.oem.builders import atom, obj
    >>> w = SQLiteOEMStoreWrapper('store')
    >>> w.add(obj('person', atom('name', 'Ann'), atom('year', 2)))
    >>> from repro.msl.parser import parse_rule
    >>> [o.value for o in w.answer(parse_rule('<n N> :- <person {<name N>}>'))]
    ['Ann']
    """

    def __init__(
        self,
        name: str,
        path: str = ":memory:",
        objects: Iterable[OEMObject] = (),
        capability: Capability | None = None,
        registry: ExternalRegistry | None = None,
        compile: bool = True,
    ) -> None:
        super().__init__(
            name, capability or BATCH_CAPABILITY, registry, compile=compile
        )
        # shard probes arrive on dispatcher pool threads; one connection
        # guarded by a lock serializes this shard while shards still
        # overlap with each other (each has its own connection)
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.Lock()
        with self._lock:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT COALESCE(MAX(root), -1) FROM nodes"
            ).fetchone()
        self._next_root = int(row[0]) + 1
        if objects:
            self.add(*objects)

    def close(self) -> None:
        self._conn.close()

    # -- store mutation -----------------------------------------------------

    def add(self, *objects: OEMObject) -> None:
        """Insert top-level objects, preserving arrival order."""
        rows: list[tuple] = []
        for obj in objects:
            rows.extend(self._rows_for(self._next_root, obj))
            self._next_root += 1
        with self._lock:
            self._conn.executemany(
                "INSERT INTO nodes VALUES (?,?,?,?,?,?,?,?)", rows
            )
            self._conn.commit()

    def load_records(
        self,
        label: str,
        records: Iterable[Sequence[tuple[str, object]]],
    ) -> int:
        """Stream flat ``(field, value)`` records in without building OEM.

        The bulk-load fast path for generated datasets: each record
        becomes one ``<label {...atoms...}>`` top-level object.  Objects
        are materialized only when a query later selects them, so a
        million-record load never holds a million :class:`OEMObject`
        trees.  Returns the number of records loaded.
        """
        batch: list[tuple] = []
        loaded = 0
        for fields in records:
            root = self._next_root
            self._next_root += 1
            loaded += 1
            batch.append(
                (root, 0, None, label, SET_TYPE, None, None, f"&{label}{root}")
            )
            for position, (field, value) in enumerate(fields, start=1):
                kind = _infer_kind(value)
                batch.append(
                    (
                        root,
                        position,
                        0,
                        field,
                        kind,
                        _encode_raw(kind, value),
                        encode_value(value),
                        f"&{label}{root}.{position}",
                    )
                )
            if len(batch) >= _LOAD_BATCH:
                self._flush(batch)
                batch = []
        if batch:
            self._flush(batch)
        return loaded

    def _flush(self, rows: list[tuple]) -> None:
        with self._lock:
            self._conn.executemany(
                "INSERT INTO nodes VALUES (?,?,?,?,?,?,?,?)", rows
            )
            self._conn.commit()

    def _rows_for(self, root: int, obj: OEMObject) -> list[tuple]:
        rows: list[tuple] = []
        counter = itertools.count()

        def walk(o: OEMObject, parent: int | None) -> None:
            node = next(counter)
            if o.is_set:
                rows.append(
                    (root, node, parent, o.label, SET_TYPE, None, None,
                     str(o.oid))
                )
                for child in o.children:
                    walk(child, node)
            else:
                rows.append(
                    (
                        root,
                        node,
                        parent,
                        o.label,
                        o.type,
                        _encode_raw(o.type, o.value),
                        encode_value(o.value),
                        str(o.oid),
                    )
                )

        walk(obj, None)
        return rows

    def __len__(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM nodes WHERE parent IS NULL"
            ).fetchone()
        return int(row[0])

    # -- the Wrapper surface -------------------------------------------------

    def export(self) -> Sequence[OEMObject]:
        with self._lock:
            roots = [
                r[0]
                for r in self._conn.execute(
                    "SELECT root FROM nodes WHERE parent IS NULL"
                    " ORDER BY root"
                )
            ]
        return self._reconstruct(roots)

    def candidates(self, query: Rule) -> Sequence[OEMObject]:
        """Indexed narrowing mirroring the in-memory wrapper's.

        The first pattern's constant top label and constant direct-child
        values each narrow via an index scan; results come back in root
        (insertion) order, matching the in-memory store-position order.
        """
        first = _first_pattern(query)
        if first is None:
            return self.export()
        roots = self._narrow(first)
        if roots is None:
            return self.export()
        return self._reconstruct(sorted(roots))

    def semijoin_candidates(self, query) -> Sequence[OEMObject]:
        """Batch narrowing: one indexed ``IN`` scan per shipped filter.

        Selective value filters run first; the top-label requirement is
        then checked only against their survivors, so a probe batch
        never materializes the (potentially store-sized) full label
        extent.
        """
        roots: set[int] | None = None
        bloom_filters = []
        for shipped in query.filters:
            if shipped.values is None:
                bloom_filters.append(shipped)
                continue
            matched: set[int] = set()
            encoded = [encode_value(v) for v in shipped.values]
            with self._lock:
                for chunk in _chunks(encoded, _IN_CHUNK):
                    marks = ",".join("?" * len(chunk))
                    matched.update(
                        r[0]
                        for r in self._conn.execute(
                            f"SELECT root FROM nodes WHERE parent = 0"
                            f" AND label = ? AND enc IN ({marks})",
                            [shipped.label, *chunk],
                        )
                    )
            roots = matched if roots is None else roots & matched
        if bloom_filters:
            roots = self._apply_blooms(roots, bloom_filters)
        first = _first_pattern(query.rule)
        label = (
            str(first.label.value)
            if first is not None and isinstance(first.label, Const)
            else None
        )
        if label is not None:
            if roots is None:
                roots = self._label_extent(label)
            else:
                roots = self._label_check(roots, label)
        if roots is None:
            return self.export()
        return self._reconstruct(sorted(roots))

    def _apply_blooms(
        self, roots: set[int] | None, bloom_filters: list
    ) -> set[int]:
        """Membership-test direct-child values against each Bloom filter."""
        for shipped in bloom_filters:
            matched: set[int] = set()
            with self._lock:
                candidate_rows = self._conn.execute(
                    "SELECT root, kind, raw FROM nodes WHERE parent = 0"
                    " AND label = ?",
                    (shipped.label,),
                ).fetchall()
            for root, kind, raw in candidate_rows:
                if roots is not None and root not in roots:
                    continue
                if _decode_raw(kind, raw) in shipped.bloom:
                    matched.add(root)
            roots = matched
        assert roots is not None
        return roots

    def _narrow(self, first: Pattern) -> set[int] | None:
        """Root ids matching the pattern's indexable constants, or
        ``None`` when nothing narrows (caller falls back to the export).

        Constant direct-child values narrow first (they are the
        selective index scans); the constant top label is then verified
        only for their survivors — fetching the whole label extent is
        the last resort, taken only when no value constant exists.
        """
        roots: set[int] | None = None
        value = first.value
        if isinstance(value, SetPattern):
            for item in value.items:
                if not isinstance(item, PatternItem) or item.descendant:
                    continue
                p = item.pattern
                if isinstance(p.label, Const) and isinstance(p.value, Const):
                    with self._lock:
                        matched = {
                            r[0]
                            for r in self._conn.execute(
                                "SELECT root FROM nodes WHERE parent = 0"
                                " AND label = ? AND enc = ?",
                                (
                                    str(p.label.value),
                                    encode_value(p.value.value),
                                ),
                            )
                        }
                    roots = matched if roots is None else roots & matched
        if isinstance(first.label, Const):
            label = str(first.label.value)
            if roots is None:
                roots = self._label_extent(label)
            else:
                roots = self._label_check(roots, label)
        return roots

    def _label_extent(self, label: str) -> set[int]:
        """Every root whose top-level label is ``label``."""
        with self._lock:
            return {
                r[0]
                for r in self._conn.execute(
                    "SELECT root FROM nodes WHERE parent IS NULL"
                    " AND label = ?",
                    (label,),
                )
            }

    def _label_check(self, roots: set[int], label: str) -> set[int]:
        """The subset of ``roots`` whose top-level label is ``label``."""
        checked: set[int] = set()
        with self._lock:
            for chunk in _chunks(sorted(roots), _IN_CHUNK):
                marks = ",".join("?" * len(chunk))
                checked.update(
                    r[0]
                    for r in self._conn.execute(
                        f"SELECT root FROM nodes WHERE parent IS NULL"
                        f" AND label = ? AND root IN ({marks})",
                        [label, *chunk],
                    )
                )
        return checked

    def _reconstruct(self, roots: Sequence[int]) -> list[OEMObject]:
        """Materialize the top-level objects for ``roots``, in order."""
        if not roots:
            return []
        rows: list[tuple] = []
        with self._lock:
            for chunk in _chunks(list(roots), _IN_CHUNK):
                marks = ",".join("?" * len(chunk))
                rows.extend(
                    self._conn.execute(
                        f"SELECT root, node, parent, label, kind, raw, oid"
                        f" FROM nodes WHERE root IN ({marks})"
                        f" ORDER BY root, node",
                        chunk,
                    )
                )
        by_root: dict[int, dict[int, tuple]] = {}
        children: dict[int, dict[int, list[int]]] = {}
        for row in rows:
            root, node, parent = row[0], row[1], row[2]
            by_root.setdefault(root, {})[node] = row
            if parent is not None:
                children.setdefault(root, {}).setdefault(parent, []).append(
                    node
                )

        def build(root: int, node: int) -> OEMObject:
            _, _, _, label, kind, raw, oid = by_root[root][node]
            if kind == SET_TYPE:
                kids = [
                    build(root, child)
                    for child in children.get(root, {}).get(node, [])
                ]
                return OEMObject(label, kids, SET_TYPE, oid)
            return OEMObject(label, _decode_raw(kind, raw), kind, oid)

        out = []
        for root in roots:
            if root not in by_root:
                raise SourceError(
                    f"source {self.name!r}: no object with root id {root}"
                )
            out.append(build(root, 0))
        return out


def _first_pattern(query: Rule) -> Pattern | None:
    for condition in query.tail:
        if isinstance(condition, PatternCondition):
            return condition.pattern
    return None


def _infer_kind(value: object) -> str:
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "real"
    if isinstance(value, bytes):
        return "bytes"
    if value is None:
        return "null"
    return "string"


def _chunks(items: list, size: int):
    for start in range(0, len(items), size):
        yield items[start : start + size]

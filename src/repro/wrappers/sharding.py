"""Sharded source tier: partitioned wrappers and semi-join shipping.

A :class:`ShardedSource` registry entry presents N shard wrappers as one
logical source.  The partition scheme (hash or range on a key label)
is declared up front, so the optimizer can *prune* shards from
pushed-down constants on the partition label, and the parameterized-
query path can switch from one probe per input tuple to **semi-join
shipping**: one batched ``IN``-style filter (:class:`SemiJoinFilter`)
per surviving shard — or a :class:`BloomFilter` above a size threshold,
with an exact mediator-side re-check of the returned superset.

Everything here is deterministic: partition routing and Bloom hashing
use :func:`encode_value` + BLAKE2 digests, never Python's seeded
``hash()``, so shard assignment is stable across processes and runs.

Naming convention: the shards of logical source ``big`` are addressed
as ``big#0`` … ``big#N-1``.  The qualified name is used *everywhere* —
wrapper name, registry resolution, answer-cache keys, circuit-breaker
and bulkhead keys, health records, and degrade warnings — so a dead
shard surfaces exactly like any other dead source.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from hashlib import blake2b
from typing import Callable, Iterable, Sequence

from repro.msl.ast import (
    Const,
    Pattern,
    PatternCondition,
    PatternItem,
    Rule,
    SetPattern,
)
from repro.oem.model import OEMObject
from repro.wrappers.base import Source, SourceError
from repro.wrappers.capability import Capability, FULL_CAPABILITY

__all__ = [
    "encode_value",
    "HashPartition",
    "RangePartition",
    "BloomFilter",
    "SemiJoinFilter",
    "SemiJoinQuery",
    "ShardedSource",
    "shard_name",
    "partition_forest",
]


def encode_value(value: object) -> bytes:
    """A canonical byte encoding of an atomic OEM value.

    Values that compare equal must encode equal — numerics are the trap
    (``1 == 1.0`` but ``repr`` differs), so every int/float exactly
    representable as a float encodes through ``float.hex()``.  Used by
    hash partitioning and Bloom membership on both the mediator and the
    wrapper side, so the two must never disagree.
    """
    if isinstance(value, bool):
        return b"b:1" if value else b"b:0"
    if isinstance(value, (int, float)):
        try:
            as_float = float(value)
        except OverflowError:
            return f"i:{value!r}".encode()
        if as_float == value:
            return f"n:{as_float.hex()}".encode()
        return f"i:{value!r}".encode()
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8", "surrogatepass")
    if isinstance(value, bytes):
        return b"y:" + value
    return f"o:{type(value).__name__}:{value!r}".encode()


def _stable_hash(value: object) -> int:
    return int.from_bytes(
        blake2b(encode_value(value), digest_size=8).digest(), "big"
    )


def shard_name(logical: str, index: int) -> str:
    """The qualified name of shard ``index`` of logical source ``logical``."""
    return f"{logical}#{index}"


@dataclass(frozen=True)
class HashPartition:
    """Route by a stable hash of the key-label value."""

    label: str
    shards: int

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("a partition needs at least one shard")

    def shard_of(self, value: object) -> int | None:
        """The shard owning ``value``; ``None`` = cannot route (broadcast)."""
        try:
            return _stable_hash(value) % self.shards
        except Exception:  # unencodable value: cannot prune
            return None

    def describe(self) -> str:
        return f"hash({self.label!r}) % {self.shards}"


@dataclass(frozen=True)
class RangePartition:
    """Route by sorted upper-exclusive boundaries on the key label.

    ``boundaries`` has ``shards - 1`` entries: shard ``i`` owns values
    in ``[boundaries[i-1], boundaries[i])``.
    """

    label: str
    boundaries: tuple

    def __post_init__(self) -> None:
        if list(self.boundaries) != sorted(self.boundaries):
            raise ValueError("range boundaries must be sorted")

    @property
    def shards(self) -> int:
        return len(self.boundaries) + 1

    def shard_of(self, value: object) -> int | None:
        try:
            return bisect.bisect_right(self.boundaries, value)
        except TypeError:  # incomparable with the boundaries: broadcast
            return None

    def describe(self) -> str:
        return f"range({self.label!r}, boundaries={list(self.boundaries)!r})"


class BloomFilter:
    """A tiny deterministic Bloom filter over atomic OEM values.

    Membership may report false positives (the mediator re-checks the
    returned superset exactly), never false negatives.  Hash positions
    derive from salted BLAKE2 digests of :func:`encode_value`, so the
    mediator-built filter and the wrapper-side membership test agree
    bit for bit.
    """

    __slots__ = ("bits", "num_bits", "num_hashes")

    def __init__(self, bits: bytes, num_bits: int, num_hashes: int) -> None:
        self.bits = bytes(bits)
        self.num_bits = num_bits
        self.num_hashes = num_hashes

    @classmethod
    def build(
        cls, values: Iterable[object], bits_per_value: int = 12
    ) -> "BloomFilter":
        values = list(values)
        num_bits = max(64, len(values) * bits_per_value)
        num_hashes = 4
        bits = bytearray((num_bits + 7) // 8)
        for value in values:
            for position in cls._positions(value, num_bits, num_hashes):
                bits[position >> 3] |= 1 << (position & 7)
        return cls(bytes(bits), num_bits, num_hashes)

    @staticmethod
    def _positions(value: object, num_bits: int, num_hashes: int):
        encoded = encode_value(value)
        for salt in range(num_hashes):
            digest = blake2b(
                encoded, digest_size=8, salt=salt.to_bytes(4, "big")
            ).digest()
            yield int.from_bytes(digest, "big") % num_bits

    def __contains__(self, value: object) -> bool:
        for position in self._positions(
            value, self.num_bits, self.num_hashes
        ):
            if not self.bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def __len__(self) -> int:
        return self.num_bits

    def digest(self) -> str:
        """A short stable fingerprint (cache / single-flight keys)."""
        return blake2b(self.bits, digest_size=8).hexdigest()


def _value_sort_key(value: object) -> tuple[str, str]:
    return (type(value).__name__, repr(value))


class SemiJoinFilter:
    """One shipped probe-value filter: ``label IN values`` (or Bloom).

    ``param`` names the template variable being filtered; ``label`` is
    the direct-child label its values appear under.  Exactly one of
    ``values`` (an explicit set) and ``bloom`` is set — the Bloom form
    is a superset filter and the mediator re-checks exactly.
    """

    __slots__ = ("param", "label", "values", "bloom")

    def __init__(
        self,
        param: str,
        label: str,
        values: frozenset | None = None,
        bloom: BloomFilter | None = None,
    ) -> None:
        if (values is None) == (bloom is None):
            raise ValueError(
                "a semi-join filter carries either values or a bloom filter"
            )
        self.param = param
        self.label = label
        self.values = values
        self.bloom = bloom

    def admits(self, value: object) -> bool:
        if self.values is not None:
            try:
                return value in self.values
            except TypeError:
                return False
        assert self.bloom is not None
        return value in self.bloom

    def admits_object(self, obj: OEMObject) -> bool:
        """Does ``obj`` have a direct child passing this filter?"""
        for child in obj.children:
            if child.label == self.label and child.is_atomic:
                if self.admits(child.value):
                    return True
        return False

    def canonical(self) -> str:
        if self.values is not None:
            body = ",".join(
                repr(v) for v in sorted(self.values, key=_value_sort_key)
            )
            return f"{self.param}/{self.label} IN {{{body}}}"
        assert self.bloom is not None
        return (
            f"{self.param}/{self.label} BLOOM"
            f" {self.bloom.num_bits}b:{self.bloom.digest()}"
        )

    def __repr__(self) -> str:
        return f"SemiJoinFilter({self.canonical()})"


class SemiJoinQuery:
    """A batched probe: one projection query plus shipped value filters.

    Stands in for a :class:`~repro.msl.ast.Rule` on the wire — the
    execution context, dispatcher, cache, and reliability decorators
    only ever take ``str(query)`` and forward the object, so this rides
    the existing single-flight / answer-cache / retry machinery
    unchanged.  ``str()`` is canonical: sorted filter sets (or Bloom
    digests) plus the rule text, so identical batches dedup and cache.
    """

    __slots__ = ("rule", "filters", "_text")

    is_semijoin = True

    def __init__(
        self, rule: Rule, filters: Sequence[SemiJoinFilter]
    ) -> None:
        self.rule = rule
        self.filters = tuple(
            sorted(filters, key=lambda f: (f.param, f.label))
        )
        self._text: str | None = None

    @property
    def head(self):
        return self.rule.head

    @property
    def tail(self):
        return self.rule.tail

    def __str__(self) -> str:
        if self._text is None:
            filters = "; ".join(f.canonical() for f in self.filters)
            self._text = f"SEMIJOIN[{filters}] {self.rule}"
        return self._text

    def __repr__(self) -> str:
        return f"SemiJoinQuery({self})"


def partition_forest(
    objects: Iterable[OEMObject],
    partition: "HashPartition | RangePartition",
) -> list[list[OEMObject]]:
    """Split a forest into per-shard lists, preserving relative order.

    Routing reads the first direct atomic child carrying the partition
    label; objects without one go to shard 0 (they can never match a
    query that filters on the partition label, so any stable home is
    sound).  The unsharded *reference* store for an equivalence check
    is the shard-major concatenation of the returned lists.
    """
    shards: list[list[OEMObject]] = [[] for _ in range(partition.shards)]
    for obj in objects:
        target = 0
        for child in obj.children:
            if child.label == partition.label and child.is_atomic:
                routed = partition.shard_of(child.value)
                if routed is not None:
                    target = routed
                break
        shards[target].append(obj)
    return shards


class ShardedSource(Source):
    """N shard wrappers behind one logical source name.

    The shards must be named ``<logical>#<index>`` (see
    :func:`shard_name`) so that every per-source mechanism downstream —
    answer-cache keys, breakers, bulkheads, health, warnings — keys by
    the shard, not the logical source.  Registering the
    :class:`ShardedSource` makes both the logical name and every
    qualified shard name resolvable
    (:meth:`~repro.wrappers.registry.SourceRegistry.resolve` forwards
    ``big#3`` to :meth:`shard`).

    Answering through the *logical* name still works — a single-pattern
    query is pruned on partition-label constants and fanned (serially)
    across the surviving shards, shard-major order — but the optimizer
    exploits the declared partition much harder: shard-pruned parallel
    leaf scans and per-shard semi-join batches.
    """

    def __init__(
        self,
        name: str,
        shards: Sequence[Source],
        partition: "HashPartition | RangePartition",
    ) -> None:
        if not name or not name.isidentifier():
            raise SourceError(f"invalid source name {name!r}")
        if len(shards) != partition.shards:
            raise SourceError(
                f"partition {partition.describe()} expects"
                f" {partition.shards} shard(s), got {len(shards)}"
            )
        for index, shard in enumerate(shards):
            expected = shard_name(name, index)
            if shard.name != expected:
                raise SourceError(
                    f"shard {index} of {name!r} must be named"
                    f" {expected!r}, got {shard.name!r}"
                )
        self.name = name
        self.shards = tuple(shards)
        self.partition = partition

    @classmethod
    def build(
        cls,
        name: str,
        partition: "HashPartition | RangePartition",
        make_shard: Callable[[int, str], Source],
    ) -> "ShardedSource":
        """Construct shards via ``make_shard(index, qualified_name)``."""
        shards = [
            make_shard(index, shard_name(name, index))
            for index in range(partition.shards)
        ]
        return cls(name, shards, partition)

    # -- shard addressing ---------------------------------------------------

    def shard(self, index: int) -> Source:
        if not 0 <= index < len(self.shards):
            raise SourceError(
                f"source {self.name!r} has no shard {index}"
                f" (it has {len(self.shards)})"
            )
        return self.shards[index]

    def shard_names(self) -> list[str]:
        return [shard_name(self.name, i) for i in range(len(self.shards))]

    def prune_for_pattern(
        self, pattern: Pattern
    ) -> tuple[list[str], int]:
        """Surviving shard names for a shipped pattern + pruned count.

        Pruning keys off constant values on the partition label among
        the pattern's *direct* child items (descendant items don't
        constrain direct children, so they never prune).  Unroutable
        constants broadcast; conflicting constants prune everything.
        """
        owners: set[int] | None = None
        value = pattern.value
        if isinstance(value, SetPattern):
            for item in value.items:
                if not isinstance(item, PatternItem) or item.descendant:
                    continue
                p = item.pattern
                if (
                    isinstance(p.label, Const)
                    and str(p.label.value) == self.partition.label
                    and isinstance(p.value, Const)
                ):
                    routed = self.partition.shard_of(p.value.value)
                    if routed is None:
                        continue
                    owned = {routed}
                    owners = owned if owners is None else owners & owned
        if owners is None:
            survivors = list(range(len(self.shards)))
        else:
            survivors = sorted(owners)
        names = [shard_name(self.name, i) for i in survivors]
        return names, len(self.shards) - len(survivors)

    # -- the Source interface ----------------------------------------------

    @property
    def capability(self) -> Capability:
        return self.shards[0].capability if self.shards else FULL_CAPABILITY

    def answer(self, query) -> list[OEMObject]:
        if isinstance(query, SemiJoinQuery):
            return self._answer_semijoin(query)
        patterns = [
            c for c in query.tail if isinstance(c, PatternCondition)
        ]
        if len(patterns) == 1:
            names, _ = self.prune_for_pattern(patterns[0].pattern)
            survivors = [int(n.rpartition("#")[2]) for n in names]
            result: list[OEMObject] = []
            for index in survivors:
                result.extend(self.shards[index].answer(query))
            return result
        # multi-pattern tails join across shards: no per-shard
        # decomposition exists, so evaluate over the union forest
        from repro.msl.evaluate import evaluate_rule
        from repro.oem.oid import OidGenerator

        forest = list(self.export())
        return evaluate_rule(
            query,
            {None: forest, self.name: forest},
            None,
            OidGenerator(f"&{self.name}_"),
        )

    def _answer_semijoin(self, query: SemiJoinQuery) -> list[OEMObject]:
        route = next(
            (
                f
                for f in query.filters
                if f.label == self.partition.label and f.values is not None
            ),
            None,
        )
        if route is None:
            survivors = range(len(self.shards))
        else:
            owned: set[int] = set()
            for value in route.values or ():
                routed = self.partition.shard_of(value)
                if routed is None:
                    owned = set(range(len(self.shards)))
                    break
                owned.add(routed)
            survivors = sorted(owned)
        result: list[OEMObject] = []
        for index in survivors:
            result.extend(self.shards[index].answer(query))
        return result

    def export(self) -> Sequence[OEMObject]:
        result: list[OEMObject] = []
        for shard in self.shards:
            result.extend(shard.export())
        return result

    @property
    def schema_facts(self):
        return self.shards[0].schema_facts if self.shards else None

    def stats(self) -> dict[str, object]:
        totals: dict[str, object] = {"shards": len(self.shards)}
        queries = objects = 0
        for shard in self.shards:
            stats = shard.stats()
            queries += int(stats.get("queries_answered", 0) or 0)
            objects += int(stats.get("objects_returned", 0) or 0)
        totals["queries_answered"] = queries
        totals["objects_returned"] = objects
        return totals

    def reset_counters(self) -> None:
        for shard in self.shards:
            shard.reset_counters()

    def describe(self) -> str:
        kinds = {type(s).__name__ for s in self.shards}
        return (
            f"{self.name}: {len(self.shards)} shard(s) by"
            f" {self.partition.describe()}"
            f" [{', '.join(sorted(kinds))}]"
        )

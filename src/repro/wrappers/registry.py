"""The source registry: name -> Source resolution for mediators.

Mediator specification tails name their sources (``@whois``, ``@cs``);
a registry resolves those names.  Mediators register themselves too, so
views can be layered (a mediator tail may say ``@other_med``), which is
how the TSIMMIS architecture stacks mediators above mediators
(Figure 1.1).
"""

from __future__ import annotations

from typing import Iterator

from repro.wrappers.base import Source, SourceError

__all__ = ["SourceRegistry"]


class SourceRegistry:
    """A mutable mapping of source names to :class:`Source` objects."""

    def __init__(self, *sources: Source) -> None:
        self._sources: dict[str, Source] = {}
        for source in sources:
            self.register(source)

    def register(self, source: Source) -> None:
        """Register ``source`` under its own name (unique)."""
        if source.name in self._sources:
            raise SourceError(
                f"a source named {source.name!r} is already registered"
            )
        self._sources[source.name] = source

    def deregister(self, name: str) -> None:
        if name not in self._sources:
            raise SourceError(f"no source named {name!r}")
        del self._sources[name]

    def resolve(self, name: str | None) -> Source:
        """The source registered under ``name``.

        Shard-qualified names (``big#3``) resolve through the logical
        :class:`~repro.wrappers.sharding.ShardedSource` entry, so the
        execution layer addresses individual shards without each shard
        occupying a registry slot.
        """
        if name is None:
            raise SourceError(
                "a mediator tail condition lacks its @source annotation"
            )
        source = self._sources.get(name)
        if source is None:
            shard = self._resolve_shard(name)
            if shard is not None:
                return shard
            known = ", ".join(sorted(self._sources)) or "(none)"
            raise SourceError(
                f"no source named {name!r}; registered sources: {known}"
            )
        return source

    def _resolve_shard(self, name: str) -> Source | None:
        logical, sep, index = name.partition("#")
        if not sep or not index.isdigit():
            return None
        entry = self._sources.get(logical)
        shard_lookup = getattr(entry, "shard", None)
        if shard_lookup is None:
            return None
        return shard_lookup(int(index))

    def __contains__(self, name: str) -> bool:
        if name in self._sources:
            return True
        try:
            return self._resolve_shard(name) is not None
        except SourceError:
            return False

    def __iter__(self) -> Iterator[Source]:
        for name in sorted(self._sources):
            yield self._sources[name]

    def names(self) -> list[str]:
        return sorted(self._sources)

    def __len__(self) -> int:
        return len(self._sources)

    # -- registry-level operations ----------------------------------------

    def reset_all_counters(self) -> None:
        """Zero every registered source's counters in one call.

        Benchmarks used to walk the registry resetting wrappers one by
        one; this is the supported bulk operation (it also reaches
        mediators and reliability decorators, which forward the reset).
        """
        for source in self:
            source.reset_counters()

    def stats_snapshot(self) -> dict[str, dict[str, object]]:
        """Per-source operational stats, keyed by source name.

        Plain wrappers report query/object counters; sources wrapped in
        the reliability layer add attempts, failures and breaker state.
        """
        return {source.name: source.stats() for source in self}

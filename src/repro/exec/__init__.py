"""Parallel execution for the datamerge engine.

PR 1 made source access *survive* failure; PR 2 bounded what a query
may *consume*; this package makes the mediator *fast* under
latency-bound plans by overlapping source calls:

* :mod:`repro.exec.dispatcher` — :class:`SourceDispatcher`, a bounded
  worker pool that fans out independent plan nodes stage by stage and
  the per-tuple batch of parameterized queries, deduplicating
  in-flight identical ``(source, canonical query)`` requests
  single-flight style; plus the :class:`TaskScope` machinery that
  keeps per-task accounting (attempts, latency, warnings)
  deterministic under concurrency;
* :mod:`repro.exec.cache` — :class:`AnswerCache`, a thread-safe
  LRU + TTL memo of source answers keyed by canonical unparsed query,
  consulted before the reliability layer, with per-source invalidation
  and hit/miss statistics.

``parallelism=1`` with no cache is bit-for-bit the sequential engine;
see ``docs/performance.md`` for semantics and tuning guidance.
"""

from repro.exec.cache import AnswerCache
from repro.exec.dispatcher import (
    SourceDispatcher,
    TaskOutcome,
    TaskScope,
    current_scope,
    scope_active,
)
from repro.exec.profile import Profiler

__all__ = [
    "AnswerCache",
    "Profiler",
    "SourceDispatcher",
    "TaskOutcome",
    "TaskScope",
    "current_scope",
    "scope_active",
]

"""Concurrent source fan-out: the mediator's parallel dispatch layer.

The datamerge engine's cost is dominated by waiting on autonomous
sources, yet the seed engine executed every graph strictly serially.
This module supplies the concurrency substrate:

* :class:`SourceDispatcher` — a bounded worker pool
  (``parallelism=N``; the default ``1`` keeps today's sequential
  behaviour bit-for-bit) that

  - runs batches of independent tasks (leaf query nodes of one
    topological stage, the per-tuple instantiations of a parameterized
    query node) across worker threads,
  - deduplicates *in-flight* identical ``(source, canonical query)``
    requests single-flight style, so concurrent duplicates share one
    wire call, and
  - consults a pluggable :class:`~repro.exec.cache.AnswerCache` before
    the reliability layer ships anything;

* :class:`TaskScope` — a per-task accumulator for source attempts,
  latency, and degradation warnings.  Worker threads record into their
  own scope; the engine merges scopes back in deterministic
  (topological / tuple) order, which is how parallel runs keep the
  sequential run's trace attribution and warning order.

The scope travels via :mod:`contextvars` and the dispatcher submits
tasks with a copied context, so code deep inside a worker (the
execution context's ``send_query``) finds the right scope without any
plumbing through call signatures.

Determinism contract: with deterministic sources, a fixed seed, and a
:class:`~repro.reliability.clock.ManualClock`, a parallel run produces
the same result objects and the same warnings (after aggregation) as a
sequential run — single-flight sharing and cache hits can only remove
*duplicate* wire calls, never change what any call returns.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Iterator, Sequence, TypeVar

from repro.exec.cache import AnswerCache
from repro.oem.model import OEMObject

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.reliability.hedging import HedgeCoordinator
    from repro.serving.bulkhead import BulkheadRegistry

__all__ = [
    "SourceDispatcher",
    "TaskScope",
    "TaskOutcome",
    "current_scope",
    "scope_active",
]

T = TypeVar("T")

#: The task scope active on this thread of control (None outside tasks).
_SCOPE: contextvars.ContextVar["TaskScope | None"] = contextvars.ContextVar(
    "repro_exec_scope", default=None
)


class TaskScope:
    """Per-task accounting: source attempts, latency, warnings.

    Each task gets its own scope, so workers never contend; merging
    back into the parent (a node's scope, or the execution context)
    happens on the coordinating thread in deterministic order.
    """

    __slots__ = ("attempts", "latency", "warnings")

    def __init__(self) -> None:
        self.attempts = 0
        self.latency = 0.0
        self.warnings: list = []

    def merge(self, other: "TaskScope") -> None:
        self.attempts += other.attempts
        self.latency += other.latency
        self.warnings.extend(other.warnings)

    def __repr__(self) -> str:
        return (
            f"TaskScope(attempts={self.attempts}, latency={self.latency},"
            f" {len(self.warnings)} warning(s))"
        )


def current_scope() -> TaskScope | None:
    """The scope the current task records into (None when unscoped)."""
    return _SCOPE.get()


@contextlib.contextmanager
def scope_active(scope: TaskScope) -> Iterator[TaskScope]:
    """Install ``scope`` as the current task scope for a ``with`` block."""
    token = _SCOPE.set(scope)
    try:
        yield scope
    finally:
        _SCOPE.reset(token)


class TaskOutcome:
    """What one dispatched task produced: a value or an error, plus its
    scope.  Outcomes come back in submission order regardless of the
    order tasks finished in."""

    __slots__ = ("value", "error", "scope")

    def __init__(self) -> None:
        self.value: object | None = None
        self.error: BaseException | None = None
        self.scope = TaskScope()


class _Flight:
    """One in-flight source call that concurrent duplicates wait on."""

    __slots__ = ("_done", "_value", "_error")

    def __init__(self) -> None:
        self._done = threading.Event()
        self._value: list[OEMObject] | None = None
        self._error: BaseException | None = None

    def set_value(self, value: list[OEMObject]) -> None:
        self._value = value
        self._done.set()

    def set_error(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def wait(self) -> list[OEMObject]:
        self._done.wait()
        if self._error is not None:
            raise self._error
        assert self._value is not None
        return self._value


class SourceDispatcher:
    """Schedules source calls across a bounded worker pool.

    ``parallelism=1`` (the default) never creates a thread: batches run
    inline on the calling thread in submission order, which is exactly
    the seed engine's behaviour.  A cache may be attached even at
    ``parallelism=1`` — memoization is orthogonal to concurrency.
    """

    def __init__(
        self,
        parallelism: int = 1,
        cache: AnswerCache | None = None,
        hedging: "HedgeCoordinator | None" = None,
        bulkheads: "BulkheadRegistry | None" = None,
    ) -> None:
        if not isinstance(parallelism, int) or parallelism < 1:
            raise ValueError(
                f"parallelism must be a positive integer,"
                f" got {parallelism!r}"
            )
        self.parallelism = parallelism
        self.cache = cache
        self.hedging = hedging
        self.bulkheads = bulkheads
        #: When set, a callable consulted before each hedged dispatch;
        #: returning False runs the call unhedged (brownout rung 1).
        self.hedge_gate: Callable[[], bool] | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._inflight: dict[tuple[str, str], _Flight] = {}
        self.dispatched = 0
        self.shared = 0  # requests answered by another request's flight

    # -- lifecycle ---------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True when worker threads are in play."""
        return self.parallelism > 1

    @property
    def active(self) -> bool:
        """True when ``send_query`` must route through the dispatcher
        (worker threads, a cache to consult, hedging, or bulkheads)."""
        return (
            self.parallelism > 1
            or self.cache is not None
            or self.hedging is not None
            or self.bulkheads is not None
        )

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.parallelism,
                    thread_name_prefix="repro-exec",
                )
            return self._pool

    def shutdown(self) -> None:
        """Stop the worker pool (idempotent; a new batch restarts it)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        if self.hedging is not None:
            self.hedging.shutdown()

    # -- cached, deduplicated source calls ---------------------------------

    def fetch(
        self,
        source: str,
        query_text: str,
        ship: Callable[[], tuple[list[OEMObject], bool]],
    ) -> list[OEMObject]:
        """One source call through the cache and single-flight layers.

        ``ship`` performs the real (reliability-wrapped) call and
        returns ``(answer, cacheable)`` — degraded answers come back
        with ``cacheable=False`` and are never stored.  Concurrent
        ``fetch`` calls with the same key share the first caller's
        flight: the leader ships, followers block on the shared result
        (or re-raise the leader's error).

        With a hedge coordinator attached, the (single) shipping call
        routes through it — hedging composes *under* the cache and the
        single-flight layer, so a hedged call is still one flight, its
        winning answer is stored at most once, and the loser's answer
        is discarded before it can reach either layer.
        """
        cache = self.cache
        if cache is not None:
            hit, value = cache.lookup(source, query_text)
            if hit:
                assert value is not None
                return value
        if not self.parallel:
            # single-threaded: there is never a concurrent duplicate
            value, cacheable = self._perform(source, ship)
            if cache is not None and cacheable:
                cache.store(source, query_text, value)
            return value
        key = (source, query_text)
        with self._lock:
            flight = self._inflight.get(key)
            if flight is None:
                flight = self._inflight[key] = _Flight()
                leader = True
                self.dispatched += 1
            else:
                leader = False
                self.shared += 1
        if not leader:
            return flight.wait()
        try:
            value, cacheable = self._perform(source, ship)
        except BaseException as exc:
            flight.set_error(exc)
            raise
        else:
            flight.set_value(value)
            if cache is not None and cacheable:
                cache.store(source, query_text, value)
            return value
        finally:
            with self._lock:
                self._inflight.pop(key, None)

    def _perform(
        self,
        source: str,
        ship: Callable[[], tuple[list[OEMObject], bool]],
    ) -> tuple[list[OEMObject], bool]:
        """Ship once, hedged when a coordinator is attached.

        Each hedged attempt runs under a *fresh* :class:`TaskScope`
        (installed inside the coordinator's copied context), and only
        the winner's scope is merged back into the caller's — the
        losing attempt's warnings, attempt counts and latency are
        discarded with its answer, so hedging never double-counts.

        Bulkhead permits wrap each individual wire attempt (so a
        hedged pair holds two permits while both run — hedging is
        extra load and must not bypass the cap), and ``hedge_gate``
        lets the brownout controller turn hedging off under pressure
        without tearing down the coordinator.
        """
        bulkheads = self.bulkheads
        if bulkheads is not None:
            inner_ship = ship

            def ship() -> tuple[list[OEMObject], bool]:
                with bulkheads.permit(source):
                    return inner_ship()

        hedging = self.hedging
        if hedging is not None and self.hedge_gate is not None:
            if not self.hedge_gate():
                hedging = None
        if hedging is None:
            return ship()
        parent = current_scope()

        def attempt() -> tuple[list[OEMObject], bool, TaskScope]:
            scope = TaskScope()
            with scope_active(scope):
                value, cacheable = ship()
            return value, cacheable, scope

        value, cacheable, scope = hedging.fetch(source, attempt)
        if parent is not None:
            parent.merge(scope)
        return value, cacheable

    # -- batch execution ---------------------------------------------------

    def run_tasks(
        self, thunks: Sequence[Callable[[], object]]
    ) -> list[TaskOutcome]:
        """Run ``thunks``, each in its own :class:`TaskScope`.

        Outcomes are returned in submission order; an exception inside
        a task is captured on its outcome (never raised here), so the
        caller can surface the *first* failure deterministically after
        every task has settled.  At ``parallelism=1`` the batch runs
        inline, in order, on the calling thread.
        """
        outcomes = [TaskOutcome() for _ in thunks]
        if not self.parallel or len(thunks) <= 1:
            for thunk, outcome in zip(thunks, outcomes):
                self._run_scoped(thunk, outcome)
            return outcomes
        pool = self._ensure_pool()
        futures = []
        for thunk, outcome in zip(thunks, outcomes):
            context = contextvars.copy_context()
            futures.append(
                pool.submit(context.run, self._run_scoped, thunk, outcome)
            )
        for future in futures:
            future.result()  # task errors live on the outcome
        return outcomes

    @staticmethod
    def _run_scoped(thunk: Callable[[], object], outcome: TaskOutcome) -> None:
        with scope_active(outcome.scope):
            try:
                outcome.value = thunk()
            except BaseException as exc:  # surfaced by the coordinator
                outcome.error = exc

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, object]:
        stats: dict[str, object] = {
            "parallelism": self.parallelism,
            "dispatched": self.dispatched,
            "shared": self.shared,
        }
        if self.cache is not None:
            stats["cache"] = self.cache.stats()
        if self.hedging is not None:
            stats["hedging"] = self.hedging.stats()
        if self.bulkheads is not None:
            stats["bulkheads"] = self.bulkheads.stats()
        return stats

    def describe(self) -> str:
        """One-paragraph summary for ``Mediator.explain``."""
        lines = [
            f"parallelism: {self.parallelism}"
            + ("" if self.parallel else " (sequential)")
            + f"; in-flight dedup: {self.shared} shared"
            f" of {self.dispatched + self.shared} requests"
        ]
        if self.cache is not None:
            lines.append(self.cache.describe())
        if self.hedging is not None:
            lines.append(self.hedging.describe())
        if self.bulkheads is not None:
            lines.append(self.bulkheads.describe())
        return "\n".join(lines)

    def __repr__(self) -> str:
        cache = ", cache" if self.cache is not None else ""
        hedging = ", hedging" if self.hedging is not None else ""
        bulkheads = ", bulkheads" if self.bulkheads is not None else ""
        return (
            f"SourceDispatcher(parallelism={self.parallelism}"
            f"{cache}{hedging}{bulkheads})"
        )

"""Lightweight execution profiler for the datamerge engine.

Records two families of counters while a plan runs:

* **per-node**: one row per physical plan node class/name — calls, rows
  produced, and wall-clock seconds spent in ``execute``;
* **per-pattern**: one row per extractor pattern — objects inspected,
  matches produced, and seconds spent inside the (compiled or
  interpretive) matcher.

The profiler is owned by the :class:`~repro.mediator.mediator.Mediator`
and threaded through the :class:`ExecutionContext`; it survives across
queries so ``explain()`` and ``health_snapshot()`` can report cumulative
hot spots.  All mutation goes through one lock, so the stage-parallel
executor can record from worker threads safely; the record calls are a
dict update and two adds, cheap enough to leave on by default.
"""

from __future__ import annotations

import threading
from typing import Mapping

__all__ = ["Profiler"]


class Profiler:
    """Thread-safe per-node and per-pattern execution counters."""

    __slots__ = (
        "_lock", "_nodes", "_patterns", "_rows_metric", "_rows_children",
        "_fused_chains", "_fused_nodes",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> [calls, rows, seconds]
        self._nodes: dict[str, list[float]] = {}
        # pattern text -> [objects, matches, seconds]
        self._patterns: dict[str, list[float]] = {}
        # operator fusion: cumulative chains fused / operators absorbed
        self._fused_chains = 0
        self._fused_nodes = 0
        # telemetry mirror (None = not bound) + per-node bound children
        self._rows_metric = None
        self._rows_children: dict[str, object] = {}

    def bind_metrics(self, registry) -> None:
        """Mirror per-node row counts into a telemetry registry."""
        from repro.obs.metrics import DEFAULT_ROWS_BUCKETS

        self._rows_metric = registry.histogram(
            "repro_plan_node_rows",
            "Rows produced per plan-node execution.",
            labelnames=("node",),
            buckets=DEFAULT_ROWS_BUCKETS,
        )
        self._rows_children.clear()

    # -- recording ------------------------------------------------------

    def record_node(
        self, name: str, rows: int, seconds: float, latency: float = 0.0
    ) -> None:
        """One ``execute`` call of a plan node.

        ``latency`` is the source-call time that elapsed inside the
        node — it separates "slow because the source was slow" from
        "slow because the mediator worked", per node class.
        """
        with self._lock:
            entry = self._nodes.get(name)
            if entry is None:
                self._nodes[name] = [1, rows, seconds, latency]
            else:
                entry[0] += 1
                entry[1] += rows
                entry[2] += seconds
                entry[3] += latency
        if self._rows_metric is not None:
            child = self._rows_children.get(name)
            if child is None:
                child = self._rows_children[name] = (
                    self._rows_metric.labels(node=name)
                )
            child.observe(rows)

    def record_pattern(
        self, pattern: str, objects: int, matches: int, seconds: float
    ) -> None:
        """One batch of pattern-match attempts."""
        with self._lock:
            entry = self._patterns.get(pattern)
            if entry is None:
                self._patterns[pattern] = [objects, matches, seconds]
            else:
                entry[0] += objects
                entry[1] += matches
                entry[2] += seconds

    def record_fusion(self, chains: int, nodes: int) -> None:
        """One plan's operator-fusion outcome (chains / operators fused)."""
        with self._lock:
            self._fused_chains += chains
            self._fused_nodes += nodes

    def reset(self) -> None:
        with self._lock:
            self._nodes.clear()
            self._patterns.clear()
            self._fused_chains = 0
            self._fused_nodes = 0

    # -- reporting ------------------------------------------------------

    def snapshot(self) -> dict[str, Mapping[str, Mapping[str, float]]]:
        """Counters as plain dicts (for ``health_snapshot``)."""
        with self._lock:
            nodes = {
                name: {
                    "calls": int(entry[0]),
                    "rows": int(entry[1]),
                    "seconds": entry[2],
                    "source_seconds": entry[3],
                }
                for name, entry in self._nodes.items()
            }
            patterns = {
                pattern: {
                    "objects": int(entry[0]),
                    "matches": int(entry[1]),
                    "seconds": entry[2],
                }
                for pattern, entry in self._patterns.items()
            }
            fused_chains = self._fused_chains
            fused_nodes = self._fused_nodes
        snap = {"nodes": nodes, "patterns": patterns}
        if fused_chains:
            # key present only when fusion actually happened, so the
            # historical two-key shape is otherwise unchanged
            snap["fusion"] = {
                "chains": fused_chains,
                "operators": fused_nodes,
            }
        return snap

    def render(self) -> str:
        """Human-readable report (the ``-- profile --`` explain section)."""
        snap = self.snapshot()
        lines: list[str] = []
        nodes = snap["nodes"]
        if nodes:
            lines.append("plan nodes (calls / rows / seconds):")
            for name in sorted(
                nodes, key=lambda n: -nodes[n]["seconds"]
            ):
                entry = nodes[name]
                line = (
                    f"  {name}: {entry['calls']} / {entry['rows']}"
                    f" / {entry['seconds']:.6f}"
                )
                if entry["source_seconds"]:
                    line += f" (source {entry['source_seconds']:.6f}s)"
                lines.append(line)
        patterns = snap["patterns"]
        if patterns:
            lines.append("patterns (objects / matches / seconds):")
            for pattern in sorted(
                patterns, key=lambda p: -patterns[p]["seconds"]
            ):
                entry = patterns[pattern]
                lines.append(
                    f"  {pattern}: {entry['objects']} / {entry['matches']}"
                    f" / {entry['seconds']:.6f}"
                )
        fusion = snap.get("fusion")
        if fusion:
            lines.append(
                f"operator fusion: {fusion['chains']} chain(s),"
                f" {fusion['operators']} operator(s) fused"
            )
        if not lines:
            return "no executions profiled"
        return "\n".join(lines)

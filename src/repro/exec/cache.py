"""The answer cache: memoized source answers for the dispatcher.

In TSIMMIS the mediator's dominant cost is talking to remote sources,
and real query streams repeat themselves — the same ``Qw`` pattern, the
same parameterized ``Qcs`` instantiations for popular people.  An
:class:`AnswerCache` keeps recently fetched answers keyed by *(source
name, canonical unparsed query)* so a repeated query is answered from
memory instead of the wire.

Semantics:

* **LRU + TTL** — at most ``max_entries`` answers are kept; the least
  recently *used* entry is evicted first.  With a ``ttl``, entries
  older than ``ttl`` seconds (on the injectable clock, so tests never
  wait) are treated as misses and dropped on access.
* **Consulted before the reliability layer** — a hit costs no retry
  budget, opens no breaker, and records no health events; only misses
  ship a query.
* **Only successful answers are stored** — degraded (empty-substitute)
  answers and failures are never cached, so a source outage cannot be
  frozen into the cache.
* **Per-source invalidation** — ``invalidate(source)`` drops every
  entry of one source (a wrapper reported new data, an operator bounced
  a backend); ``clear()`` drops everything.
* **Thread-safe** — one lock guards the store; the dispatcher calls in
  from many worker threads.

Hit/miss/eviction counters are kept globally and per source so
benchmarks and ``Mediator.explain`` can report exact hit rates.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.oem.model import OEMObject
from repro.reliability.clock import Clock, MonotonicClock

__all__ = ["AnswerCache"]


class AnswerCache:
    """An LRU + TTL cache of source answers, keyed by canonical query."""

    def __init__(
        self,
        max_entries: int = 256,
        ttl: float | None = None,
        clock: Clock | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be positive, got {max_entries!r}"
            )
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl!r}")
        self.max_entries = max_entries
        self.ttl = ttl
        self.clock = clock or MonotonicClock()
        self._lock = threading.Lock()
        # key -> (answer tuple, stored_at); insertion order is LRU order
        self._entries: OrderedDict[
            tuple[str, str], tuple[tuple[OEMObject, ...], float]
        ] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0
        self.hits_by_source: dict[str, int] = {}
        self.misses_by_source: dict[str, int] = {}

    # -- the cache protocol ------------------------------------------------

    def lookup(
        self, source: str, query_text: str
    ) -> tuple[bool, list[OEMObject] | None]:
        """``(True, answer)`` on a fresh hit, ``(False, None)`` otherwise.

        The returned list is a fresh copy, so callers may extend or
        filter it without corrupting the cached answer.
        """
        key = (source, query_text)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry[1]):
                del self._entries[key]
                self.expirations += 1
                entry = None
            if entry is None:
                self.misses += 1
                self.misses_by_source[source] = (
                    self.misses_by_source.get(source, 0) + 1
                )
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            self.hits_by_source[source] = (
                self.hits_by_source.get(source, 0) + 1
            )
            return True, list(entry[0])

    def store(
        self, source: str, query_text: str, answer: list[OEMObject]
    ) -> None:
        """Remember ``answer``, evicting the least recently used entry."""
        key = (source, query_text)
        with self._lock:
            self._entries[key] = (tuple(answer), self.clock.now())
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, source: str) -> int:
        """Drop every cached answer of ``source``; returns the count."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == source]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> int:
        """Drop everything (counters are kept); returns the count."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
            return dropped

    def _expired(self, stored_at: float) -> bool:
        return (
            self.ttl is not None
            and self.clock.now() - stored_at > self.ttl
        )

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple[str, str]) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and not self._expired(entry[1])

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, object]:
        """A snapshot of the counters, for ``health_snapshot`` and tests."""
        with self._lock:
            entries = len(self._entries)
        return {
            "entries": entries,
            "max_entries": self.max_entries,
            "ttl": self.ttl,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "hits_by_source": dict(self.hits_by_source),
            "misses_by_source": dict(self.misses_by_source),
        }

    def describe(self) -> str:
        """One line for ``Mediator.explain``."""
        ttl = f"{self.ttl:g}s" if self.ttl is not None else "none"
        return (
            f"answer cache: {len(self)}/{self.max_entries} entries,"
            f" ttl {ttl}, hits {self.hits}, misses {self.misses},"
            f" hit rate {self.hit_rate:.2f}"
        )

    def __repr__(self) -> str:
        return (
            f"AnswerCache({len(self)}/{self.max_entries} entries,"
            f" {self.hits} hits, {self.misses} misses)"
        )

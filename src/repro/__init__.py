"""MedMaker: a mediation system based on declarative specifications.

A faithful Python reproduction of Papakonstantinou, Garcia-Molina and
Ullman, "MedMaker: A Mediation System Based on Declarative
Specifications", ICDE 1996 — the mediation layer of the TSIMMIS
heterogeneous data-integration project.

The packages:

* :mod:`repro.oem` — the Object Exchange Model (self-describing objects);
* :mod:`repro.msl` — the Mediator Specification Language (parser,
  matcher, reference evaluator);
* :mod:`repro.external` — external predicates (``decomp`` and friends);
* :mod:`repro.relational` — a mini relational engine (the ``cs`` source);
* :mod:`repro.wrappers` — the wrapper layer and source capabilities;
* :mod:`repro.mediator` — the Mediator Specification Interpreter:
  view expansion, cost-based optimization, the datamerge engine;
* :mod:`repro.reliability` — fault injection, retry/backoff, circuit
  breakers, and graceful degradation for flaky sources;
* :mod:`repro.governor` — per-query resource budgets, cooperative
  cancellation, and malformed-answer quarantine;
* :mod:`repro.exec` — concurrent source fan-out, single-flight query
  dedup, and answer caching for the datamerge engine;
* :mod:`repro.obs` — the telemetry subsystem: hierarchical query
  spans, the central metrics registry, and pluggable exporters;
* :mod:`repro.client` — client-side result materialization;
* :mod:`repro.datasets` — the paper's running example and synthetic
  workloads.

Quickstart::

    from repro.datasets import build_scenario, JOE_CHUNG_QUERY
    scenario = build_scenario()
    for obj in scenario.mediator.answer(JOE_CHUNG_QUERY):
        print(obj)
"""

from repro.client import ResultSet
from repro.exec import AnswerCache, SourceDispatcher
from repro.governor import (
    BudgetExceeded,
    BudgetWarning,
    CancellationToken,
    QueryBudget,
    QueryCancelled,
    QueryGovernor,
)
from repro.mediator import Mediator
from repro.msl import parse_query, parse_rule, parse_specification
from repro.obs import (
    ConsoleTreeExporter,
    JsonLinesExporter,
    MetricsRegistry,
    PrometheusTextExporter,
    Telemetry,
    Tracer,
)
from repro.oem import OEMObject, parse_oem
from repro.reliability import (
    CircuitBreaker,
    FaultInjectingSource,
    ResilienceConfig,
    ResilientSource,
    RetryPolicy,
)
from repro.wrappers import (
    Capability,
    OEMStoreWrapper,
    RelationalWrapper,
    SourceRegistry,
)

__version__ = "1.0.0"

__all__ = [
    "AnswerCache",
    "BudgetExceeded",
    "BudgetWarning",
    "CancellationToken",
    "Capability",
    "CircuitBreaker",
    "ConsoleTreeExporter",
    "FaultInjectingSource",
    "JsonLinesExporter",
    "Mediator",
    "MetricsRegistry",
    "PrometheusTextExporter",
    "Telemetry",
    "Tracer",
    "QueryBudget",
    "QueryCancelled",
    "QueryGovernor",
    "OEMObject",
    "OEMStoreWrapper",
    "RelationalWrapper",
    "ResilienceConfig",
    "ResilientSource",
    "ResultSet",
    "RetryPolicy",
    "SourceDispatcher",
    "SourceRegistry",
    "__version__",
    "parse_oem",
    "parse_query",
    "parse_rule",
    "parse_specification",
]

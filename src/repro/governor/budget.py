"""Query budgets, cooperative cancellation, and their runtime enforcer.

A :class:`QueryBudget` states what one datamerge run may consume: a
wall-clock deadline for the whole run, per-table and total ceilings on
intermediate :class:`~repro.mediator.tables.BindingTable` rows, a cap
on constructed result objects, a cap on external-function calls, and
shape limits (nesting depth, answer size) for incoming OEM answers.

The :class:`QueryGovernor` is the per-run enforcer.  It is consulted

* at every plan-node boundary (``DatamergeEngine.execute``),
* on every row admitted to a governed binding table,
* before every source call (``ExecutionContext.send_query``), and
* around every external-function call (``ExternalPredNode``),

and reads time through the same injectable
:class:`~repro.reliability.clock.Clock` as the reliability layer, so
deadline tests never sleep.  Enforcement follows one of two modes:

* ``strict`` — the first violation raises a structured
  :class:`BudgetExceeded` naming the budget, the plan node, and the
  observed value against the limit;
* ``truncate`` — the offending table is clipped, the run finishes, and
  a :class:`BudgetWarning` (one per budget and node) is attached to the
  result set, so callers can tell a complete answer from a clipped one.

A :class:`CancellationToken` rides along: ``token.cancel()`` from any
thread makes the next governor checkpoint raise
:class:`QueryCancelled` — cooperative cancellation, checked at the
same points as the budgets.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.reliability.clock import Clock, MonotonicClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.governor.sanitizer import AnswerSanitizer
    from repro.mediator.tables import BindingTable
    from repro.oem.model import OEMObject

__all__ = [
    "BudgetExceeded",
    "BudgetWarning",
    "CancellationToken",
    "QueryBudget",
    "QueryCancelled",
    "QueryGovernor",
]


class QueryCancelled(Exception):
    """The run's :class:`CancellationToken` was cancelled."""

    def __init__(self, reason: str = "query cancelled") -> None:
        super().__init__(reason)
        self.reason = reason


class BudgetExceeded(Exception):
    """A strict-mode budget violation.

    Carries which budget was violated (``budget``), where
    (``node`` — the describing plan node, or ``None`` outside plan
    execution), and the observed value against the limit, so callers
    can react programmatically instead of parsing the message.
    """

    def __init__(
        self,
        budget: str,
        observed: float,
        limit: float,
        node: str | None = None,
    ) -> None:
        where = f" at node [{node}]" if node else ""
        super().__init__(
            f"query budget {budget!r} exceeded{where}:"
            f" observed {observed:g}, limit {limit:g}"
        )
        self.budget = budget
        self.observed = observed
        self.limit = limit
        self.node = node


@dataclass(frozen=True)
class BudgetWarning:
    """A truncate-mode note that part of the answer was clipped.

    Carried on :class:`~repro.client.result.ResultSet.warnings` next to
    the reliability layer's ``SourceWarning``s; an answer with budget
    warnings is *partial* — correct, but possibly missing results.
    """

    budget: str
    message: str
    node: str | None = None
    observed: float = 0
    limit: float = 0
    count: int = 1

    def signature(self) -> tuple:
        """Aggregation key: identical budget violations collapse."""
        return (type(self).__name__, self.budget, self.node)

    def render(self) -> str:
        where = f" at node [{self.node}]" if self.node else ""
        suffix = f" [x{self.count}]" if self.count > 1 else ""
        return f"budget {self.budget!r}{where}: {self.message}{suffix}"


@dataclass(frozen=True)
class QueryBudget:
    """Resource ceilings for one datamerge run.  ``None`` = unlimited.

    * ``deadline`` — wall-clock seconds for the whole run (engine time
      between source calls included, unlike ``RetryPolicy.deadline``
      which only bounds one retry loop);
    * ``max_rows_per_table`` — rows any single intermediate
      :class:`BindingTable` may hold (bounds one cross-product);
    * ``max_total_rows`` — intermediate rows materialized across the
      whole run (bounds overall memory);
    * ``max_result_objects`` — objects in the final answer;
    * ``max_external_calls`` — external-function invocations;
    * ``max_depth`` — OEM nesting depth accepted from a source answer;
    * ``max_answer_objects`` — total objects (sub-objects included)
      accepted per source answer.
    """

    deadline: float | None = None
    max_rows_per_table: int | None = None
    max_total_rows: int | None = None
    max_result_objects: int | None = None
    max_external_calls: int | None = None
    max_depth: int | None = None
    max_answer_objects: int | None = None

    def __post_init__(self) -> None:
        for name in (
            "deadline",
            "max_rows_per_table",
            "max_total_rows",
            "max_result_objects",
            "max_external_calls",
            "max_depth",
            "max_answer_objects",
        ):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")

    @property
    def unlimited(self) -> bool:
        return all(
            getattr(self, f.name) is None
            for f in self.__dataclass_fields__.values()
        )

    def describe(self) -> str:
        """One-line summary for ``Mediator.explain``."""
        parts = []
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline:g}s")
        for name in (
            "max_rows_per_table",
            "max_total_rows",
            "max_result_objects",
            "max_external_calls",
            "max_depth",
            "max_answer_objects",
        ):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value}")
        return ", ".join(parts) if parts else "unlimited"


class CancellationToken:
    """A thread-safe-enough flag for cooperative query cancellation.

    ``cancel()`` may be called from any thread (setting an attribute is
    atomic in CPython); the governor polls the token at node
    boundaries, row admissions, and source/external-call sites, and
    raises :class:`QueryCancelled` at the next checkpoint.
    """

    __slots__ = ("_cancelled", "_reason")

    def __init__(self) -> None:
        self._cancelled = False
        self._reason = "query cancelled"

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self, reason: str = "query cancelled") -> None:
        self._reason = reason
        self._cancelled = True

    def raise_if_cancelled(self) -> None:
        if self._cancelled:
            raise QueryCancelled(self._reason)


class QueryGovernor:
    """Per-run budget enforcement state.

    One governor lives for one user-visible mediator operation (a
    ``query``/``answer``/``export`` call, nested materialization
    included).  Counters are public so tests and benchmarks can assert
    exactly what a run consumed.
    """

    def __init__(
        self,
        budget: QueryBudget | None = None,
        mode: str = "strict",
        clock: Clock | None = None,
        token: CancellationToken | None = None,
        warnings: list | None = None,
        sanitizer: "AnswerSanitizer | None" = None,
    ) -> None:
        if mode not in ("strict", "truncate"):
            raise ValueError(
                f"mode must be 'strict' or 'truncate', got {mode!r}"
            )
        self.budget = budget or QueryBudget()
        self.mode = mode
        self.clock = clock or MonotonicClock()
        self.token = token or CancellationToken()
        self.warnings: list = warnings if warnings is not None else []
        self.sanitizer = sanitizer
        self.total_rows = 0
        self.external_calls = 0
        self.result_objects = 0
        self.rows_clipped = 0
        self._started: float | None = None
        self._expired = False
        self._current_node: str | None = None
        self._warned: set[tuple] = set()
        # counters and warning bookkeeping must stay exact when the
        # parallel dispatcher admits rows from worker threads; RLock
        # because a guarded charge point may raise through _violation,
        # which also takes the lock
        self._mutex = threading.RLock()

    # -- run lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Start the deadline clock (idempotent across nested plans)."""
        if self._started is None:
            self._started = self.clock.now()

    @property
    def elapsed(self) -> float:
        if self._started is None:
            return 0.0
        return self.clock.now() - self._started

    @property
    def expired(self) -> bool:
        """True once a truncate-mode deadline overrun was recorded."""
        return self._expired

    def enter_node(self, node) -> None:
        """Node-boundary hook: remember where we are, then checkpoint."""
        self._current_node = node.describe()
        self.checkpoint()

    # -- checkpoints -------------------------------------------------------

    def checkpoint(self) -> None:
        """Cooperative cancellation + deadline check (cheap)."""
        self.token.raise_if_cancelled()
        deadline = self.budget.deadline
        if (
            deadline is not None
            and not self._expired
            and self._started is not None
            and self.clock.now() - self._started > deadline
        ):
            self._violation("deadline", self.elapsed, deadline)

    def allow_source_call(self, source: str) -> bool:
        """May another query be shipped?  False once the run expired."""
        self.checkpoint()
        if self._expired:
            self._note_skip(
                "deadline", f"query to {source!r} skipped: deadline passed"
            )
            return False
        return True

    # -- charge points -----------------------------------------------------

    def admit_row(self, table: "BindingTable") -> bool:
        """May ``table`` take one more row?  Truncate mode returns False."""
        self.token.raise_if_cancelled()
        with self._mutex:
            if self._expired:
                self.rows_clipped += 1
                return False
            budget = self.budget
            rows = len(table.rows)
            if (
                budget.max_rows_per_table is not None
                and rows >= budget.max_rows_per_table
            ):
                self.rows_clipped += 1
                return self._violation(
                    "max_rows_per_table", rows + 1, budget.max_rows_per_table
                )
            if (
                budget.max_total_rows is not None
                and self.total_rows >= budget.max_total_rows
            ):
                self.rows_clipped += 1
                return self._violation(
                    "max_total_rows",
                    self.total_rows + 1,
                    budget.max_total_rows,
                )
            self.total_rows += 1
            return True

    def row_admitter(self, table: "BindingTable"):
        """A specialized fast-path appender for one governed ``table``.

        Bound once per table by ``BindingTable._appender``: limits,
        token and the row list are captured as locals so the per-row
        cost is a few compares instead of a method-call chain.
        Semantically identical to ``admit_row`` + ``rows.append``.
        """
        rows = table.rows
        append = rows.append
        token = self.token
        mutex = self._mutex
        per_table = self.budget.max_rows_per_table
        total_cap = self.budget.max_total_rows

        def add(row: tuple) -> None:
            if token._cancelled:
                token.raise_if_cancelled()
            with mutex:
                if self._expired:
                    self.rows_clipped += 1
                    return
                if per_table is not None and len(rows) >= per_table:
                    self.rows_clipped += 1
                    self._violation(
                        "max_rows_per_table", len(rows) + 1, per_table
                    )
                    return
                if total_cap is not None and self.total_rows >= total_cap:
                    self.rows_clipped += 1
                    self._violation(
                        "max_total_rows", self.total_rows + 1, total_cap
                    )
                    return
                self.total_rows += 1
                append(row)

        return add

    def charge_external_call(self) -> bool:
        """May one more external function be invoked?"""
        self.token.raise_if_cancelled()
        with self._mutex:
            if self._expired:
                return False
            limit = self.budget.max_external_calls
            if limit is not None and self.external_calls >= limit:
                return self._violation(
                    "max_external_calls", self.external_calls + 1, limit
                )
            self.external_calls += 1
            return True

    def charge_result_object(self) -> bool:
        """May one more result object be constructed?"""
        with self._mutex:
            limit = self.budget.max_result_objects
            if limit is not None and self.result_objects >= limit:
                return self._violation(
                    "max_result_objects", self.result_objects + 1, limit
                )
            self.result_objects += 1
            return True

    def enforce_result_limit(
        self, objects: "list[OEMObject]"
    ) -> "list[OEMObject]":
        """Final guard on the user-visible answer length.

        Covers the materialization paths (wildcards, recursion, type
        constraints) that never run a constructor node.
        """
        limit = self.budget.max_result_objects
        if limit is None or len(objects) <= limit:
            return objects
        self._current_node = None
        self._violation("max_result_objects", len(objects), limit)
        return objects[:limit]

    # -- answer sanitation -------------------------------------------------

    def sanitize_answer(
        self, source: str, objects: list, sink: list | None = None
    ) -> "list[OEMObject]":
        """Run ``objects`` through the attached sanitizer, if any.

        Quarantine warnings go to ``sink`` (default: the governor's own
        warning list).  In strict sanitizer mode this raises
        ``MalformedAnswerError`` — a ``SourceError``, so degrade-mode
        mediators can still substitute an empty answer for the source.
        """
        if self.sanitizer is None:
            return objects
        clean, warnings = self.sanitizer.sanitize(source, objects)
        if warnings:
            (self.warnings if sink is None else sink).extend(warnings)
        return clean

    # -- bookkeeping -------------------------------------------------------

    def _violation(self, kind: str, observed: float, limit: float) -> bool:
        """Record one budget violation; strict raises, truncate clips."""
        if self.mode == "strict":
            raise BudgetExceeded(
                kind, observed, limit, node=self._current_node
            )
        with self._mutex:
            if kind == "deadline":
                self._expired = True
            key = (kind, self._current_node)
            if key in self._warned:
                return False
            self._warned.add(key)
            noun = {
                "deadline": "run exceeded its deadline; remaining work"
                " skipped",
                "max_rows_per_table": "intermediate table clipped",
                "max_total_rows": "intermediate rows clipped run-wide",
                "max_external_calls": "external calls skipped",
                "max_result_objects": "result objects clipped",
            }.get(kind, "budget exceeded")
            self.warnings.append(
                BudgetWarning(
                    budget=kind,
                    node=self._current_node,
                    observed=observed,
                    limit=limit,
                    message=f"{noun} (observed {observed:g},"
                    f" limit {limit:g}); answer may be partial",
                )
            )
        return False

    def _note_skip(self, kind: str, message: str) -> None:
        """A follow-on consequence of an earlier truncation (warn once)."""
        with self._mutex:
            key = (kind, "skip", self._current_node)
            if key in self._warned:
                return
            self._warned.add(key)
            self.warnings.append(
                BudgetWarning(
                    budget=kind, node=self._current_node, message=message
                )
            )

    def describe(self) -> str:
        """One-paragraph summary for ``Mediator.explain``."""
        sanitizer = (
            self.sanitizer.describe() if self.sanitizer else "off"
        )
        return (
            f"mode: {self.mode}; budget: {self.budget.describe()};"
            f" sanitizer: {sanitizer}"
        )

"""Per-query resource governance for the MSI pipeline.

PR 1's reliability layer protects the mediator from *sources* that
fail; this package protects it from queries and answers that misbehave:

* :mod:`repro.governor.budget` — :class:`QueryBudget` (wall-clock
  deadline, row and result-object ceilings, external-call and
  OEM-shape limits), the cooperative :class:`CancellationToken`, and
  the :class:`QueryGovernor` runtime that enforces them at plan-node
  boundaries, on every :class:`~repro.mediator.tables.BindingTable`
  row, and around external-function calls;
* :mod:`repro.governor.sanitizer` — :class:`AnswerSanitizer`, which
  validates every source answer (labels, atom types, nesting depth,
  cycles, answer size) before it enters a binding table and, in
  lenient mode, quarantines malformed sub-objects with per-source
  warnings instead of crashing the run.

Two enforcement modes mirror the reliability layer's design: ``strict``
raises a structured :class:`BudgetExceeded`; ``truncate`` clips the
offending table, finishes the run, and attaches
:class:`BudgetWarning`\\ s to the result set.
"""

from repro.governor.budget import (
    BudgetExceeded,
    BudgetWarning,
    CancellationToken,
    QueryBudget,
    QueryCancelled,
    QueryGovernor,
)
from repro.governor.sanitizer import AnswerSanitizer, DEFAULT_MAX_DEPTH

__all__ = [
    "AnswerSanitizer",
    "BudgetExceeded",
    "BudgetWarning",
    "CancellationToken",
    "DEFAULT_MAX_DEPTH",
    "QueryBudget",
    "QueryCancelled",
    "QueryGovernor",
]

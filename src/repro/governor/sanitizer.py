"""Deep validation and quarantine of source OEM answers.

The reliability layer's ``validate_answer`` only checks that an answer
is a list of :class:`~repro.oem.model.OEMObject` — one non-object item
fails the whole answer, and a *corrupt* object (a wrapper handing out
structures with broken labels, lying atom types, absurd nesting, or
reference cycles) sails straight into a binding table and crashes the
datamerge run far from its cause.

The :class:`AnswerSanitizer` walks every answer before it enters a
table and checks, per object:

* the item is an :class:`OEMObject` at all;
* the label is a non-empty string;
* the declared type agrees with the carried value
  (:func:`repro.oem.model.infer_type`; ``real`` accepts ``int``,
  matching the model's own coercion);
* set values are tuples of objects;
* nesting depth stays within ``max_depth``;
* no object appears on its own ancestor path (cycle detection — only
  possible for objects corrupted past the model's immutability, which
  is exactly what a hostile or buggy wrapper can do);
* the total object count stays within ``max_objects``.

In **lenient** mode each malformed sub-object is *quarantined*: it is
dropped, its well-formed siblings survive (parents are rebuilt via
``with_children``), and one structured
:class:`~repro.reliability.health.SourceWarning` per issue is attached
to the run.  In **strict** mode the first pass collects all issues and
raises :class:`~repro.wrappers.base.MalformedAnswerError` naming them.
"""

from __future__ import annotations

from typing import Sequence

from repro.oem.model import (
    ATOMIC_TYPES,
    OEMObject,
    OEMTypeError,
    SET_TYPE,
    infer_type,
)
from repro.reliability.health import SourceWarning
from repro.wrappers.base import MalformedAnswerError

__all__ = ["AnswerSanitizer", "DEFAULT_MAX_DEPTH"]

#: Nesting depth accepted when no budget says otherwise.  Far beyond
#: any sane mediated answer (the paper's views nest 3-4 deep) yet small
#: enough to stop a recursion bomb before Python's own limit does.
DEFAULT_MAX_DEPTH = 64


class _Quarantined(Exception):
    """Internal: strict mode aborts the walk at the first batch of issues."""


class AnswerSanitizer:
    """Validates (and in lenient mode repairs) source answers.

    Stateless and shareable: per-answer bookkeeping lives on the stack
    of :meth:`sanitize`, so one sanitizer can serve every source behind
    a mediator.
    """

    def __init__(
        self,
        max_depth: int | None = DEFAULT_MAX_DEPTH,
        max_objects: int | None = None,
        mode: str = "lenient",
    ) -> None:
        if mode not in ("lenient", "strict"):
            raise ValueError(
                f"mode must be 'lenient' or 'strict', got {mode!r}"
            )
        if max_depth is not None and max_depth <= 0:
            raise ValueError("max_depth must be positive")
        if max_objects is not None and max_objects <= 0:
            raise ValueError("max_objects must be positive")
        self.max_depth = max_depth
        self.max_objects = max_objects
        self.mode = mode

    def describe(self) -> str:
        depth = self.max_depth if self.max_depth is not None else "unlimited"
        size = (
            self.max_objects if self.max_objects is not None else "unlimited"
        )
        return f"{self.mode} (max_depth={depth}, max_objects={size})"

    # -- entry point -------------------------------------------------------

    def sanitize(
        self, source: str, objects: Sequence[object]
    ) -> tuple[list[OEMObject], list[SourceWarning]]:
        """Validate one answer from ``source``.

        Returns the surviving objects plus one warning per quarantined
        issue; raises :class:`MalformedAnswerError` in strict mode as
        soon as any issue is found.
        """
        issues: list[str] = []
        counter = [0]  # objects admitted so far, shared down the walk
        clean: list[OEMObject] = []
        try:
            for obj in objects:
                kept = self._sanitize(obj, 1, frozenset(), issues, counter)
                if kept is not None:
                    clean.append(kept)
        except _Quarantined:
            pass
        if issues and self.mode == "strict":
            raise MalformedAnswerError(source, issues)
        warnings = [
            SourceWarning(
                source=source, message=issue, error="MalformedAnswer"
            )
            for issue in issues
        ]
        return clean, warnings

    # -- the recursive walk ------------------------------------------------

    def _reject(self, issues: list[str], issue: str) -> None:
        issues.append(issue)
        if self.mode == "strict":
            raise _Quarantined

    def _sanitize(
        self,
        obj: object,
        depth: int,
        ancestors: frozenset[int],
        issues: list[str],
        counter: list[int],
    ) -> OEMObject | None:
        if not isinstance(obj, OEMObject):
            self._reject(
                issues,
                f"non-OEM item of type {type(obj).__name__} quarantined",
            )
            return None
        if id(obj) in ancestors:
            self._reject(
                issues,
                f"cycle detected at object labelled {obj.label!r};"
                " back-edge quarantined",
            )
            return None
        if self.max_depth is not None and depth > self.max_depth:
            self._reject(
                issues,
                f"nesting depth {depth} exceeds limit {self.max_depth};"
                " subtree quarantined",
            )
            return None
        if (
            self.max_objects is not None
            and counter[0] >= self.max_objects
        ):
            self._reject(
                issues,
                f"answer exceeds {self.max_objects} objects;"
                " remainder quarantined",
            )
            return None
        label = obj.label
        if not isinstance(label, str) or not label:
            self._reject(
                issues, f"object with invalid label {label!r} quarantined"
            )
            return None
        counter[0] += 1
        if obj.type == SET_TYPE:
            return self._sanitize_set(obj, depth, ancestors, issues, counter)
        return self._sanitize_atom(obj, issues)

    def _sanitize_atom(
        self, obj: OEMObject, issues: list[str]
    ) -> OEMObject | None:
        declared = obj.type
        if declared not in ATOMIC_TYPES:
            self._reject(
                issues,
                f"object {obj.label!r} declares unknown type"
                f" {declared!r}; quarantined",
            )
            return None
        value = obj.value
        if isinstance(value, (OEMObject, tuple, list, set, frozenset)):
            # never repr an untrusted structured value: a corrupted
            # self-referential object would recurse without bound
            self._reject(
                issues,
                f"object {obj.label!r} declares atomic type {declared!r}"
                f" but carries a {type(value).__name__}; quarantined",
            )
            return None
        try:
            inferred = infer_type(value)
        except OEMTypeError:
            self._reject(
                issues,
                f"object {obj.label!r} carries un-OEM value of type"
                f" {type(value).__name__}; quarantined",
            )
            return None
        if inferred != declared and not (
            declared == "real" and inferred == "integer"
        ):
            self._reject(
                issues,
                f"object {obj.label!r} declares type {declared!r} but"
                f" carries {inferred!r}; quarantined",
            )
            return None
        return obj

    def _sanitize_set(
        self,
        obj: OEMObject,
        depth: int,
        ancestors: frozenset[int],
        issues: list[str],
        counter: list[int],
    ) -> OEMObject | None:
        value = obj.value
        if not isinstance(value, tuple):
            self._reject(
                issues,
                f"set object {obj.label!r} carries non-tuple value"
                f" {type(value).__name__}; quarantined",
            )
            return None
        path = ancestors | {id(obj)}
        kept: list[OEMObject] = []
        changed = False
        for child in value:
            clean = self._sanitize(child, depth + 1, path, issues, counter)
            if clean is None:
                changed = True
            else:
                if clean is not child:
                    changed = True
                kept.append(clean)
        if not changed:
            return obj
        # rebuild through the model constructor so the repaired object
        # is a first-class, fully-validated OEMObject again
        return OEMObject(obj.label, tuple(kept), SET_TYPE, obj.oid)

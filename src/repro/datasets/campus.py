"""A three-source scenario for join-order experiments.

Three campus sources of very different sizes joined on person name:

* ``hr``      — large: one ``person`` object per member of staff
  (name, dept);
* ``badges``  — same size, but the gold-level filter is highly
  selective (few gold badges);
* ``parking`` — medium: a ``spot`` object for roughly half the staff.

The ``campus`` mediator's ``gold_member`` view joins all three.  The
interesting property: counting constant conditions (the paper's ad-hoc
heuristic) ties the ``hr`` pattern (``dept 'eng'``, ~50% selective)
with the ``badges`` pattern (``level 'gold'``, ~2% selective), so the
heuristic can start from the wrong source, while a cost-based order
informed by statistics starts from ``badges`` — the experiment behind
``bench_join_order_exhaustive``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.external.registry import ExternalRegistry, default_registry
from repro.mediator.mediator import Mediator
from repro.oem.builders import atom, obj
from repro.wrappers.oem_wrapper import OEMStoreWrapper
from repro.wrappers.registry import SourceRegistry

__all__ = ["CampusScenario", "CAMPUS_SPEC", "build_campus_scenario"]

CAMPUS_SPEC = """
<gold_member {<name N> <dept D> <lot L>}> :-
    <person {<name N> <dept 'eng'> | R1}>@hr
    AND <badge {<name N> <level 'gold'>}>@badges
    AND <spot {<name N> <lot L>}>@parking
    AND <person {<name N> <dept D>}>@hr ;
"""


@dataclass
class CampusScenario:
    registry: SourceRegistry
    hr: OEMStoreWrapper
    badges: OEMStoreWrapper
    parking: OEMStoreWrapper
    mediator: Mediator
    externals: ExternalRegistry


def build_campus_scenario(
    people: int = 300,
    gold_fraction: float = 0.02,
    eng_fraction: float = 0.5,
    parking_fraction: float = 0.5,
    seed: int = 42,
    strategy: str = "heuristic",
) -> CampusScenario:
    """Build the three sources and the campus mediator.

    >>> scenario = build_campus_scenario(50)
    >>> scenario.mediator.name
    'campus'
    """
    rng = random.Random(seed)
    registry = SourceRegistry()
    externals = default_registry()

    hr_objects = []
    badge_objects = []
    parking_objects = []
    for index in range(people):
        name = f"member{index}"
        dept = "eng" if rng.random() < eng_fraction else "admin"
        hr_objects.append(obj("person", atom("name", name), atom("dept", dept)))
        level = "gold" if rng.random() < gold_fraction else "blue"
        badge_objects.append(
            obj("badge", atom("name", name), atom("level", level))
        )
        if rng.random() < parking_fraction:
            parking_objects.append(
                obj(
                    "spot",
                    atom("name", name),
                    atom("lot", f"L{index % 7}"),
                )
            )

    hr = OEMStoreWrapper("hr", hr_objects)
    badges = OEMStoreWrapper("badges", badge_objects)
    parking = OEMStoreWrapper("parking", parking_objects)
    registry.register(hr)
    registry.register(badges)
    registry.register(parking)
    mediator = Mediator(
        "campus", CAMPUS_SPEC, registry, externals, strategy=strategy
    )
    return CampusScenario(registry, hr, badges, parking, mediator, externals)

"""The paper's running example: the CS-department staff scenario.

Builds, exactly as printed in the paper:

* the ``cs`` relational source (Figure 2.2's underlying tables) and its
  wrapper;
* the ``whois`` semi-structured source (Figure 2.3's objects);
* the ``med`` mediator with specification MS1 (Section 2), including the
  ``decomp`` external declarations;

plus scaled-up variants of the same shape for benchmarks (every person
appears in ``whois``; employees and students appear in the matching
``cs`` tables; irregular extra fields appear on a fraction of ``whois``
objects, mirroring ``e_mail`` on ``&p1``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.external.registry import ExternalRegistry, default_registry
from repro.mediator.mediator import Mediator
from repro.oem.model import OEMObject
from repro.oem.parser import parse_oem
from repro.relational.database import Database
from repro.relational.schema import Attribute, RelationSchema
from repro.wrappers.capability import Capability
from repro.wrappers.oem_wrapper import OEMStoreWrapper
from repro.wrappers.registry import SourceRegistry
from repro.wrappers.relational_wrapper import RelationalWrapper

__all__ = [
    "WHOIS_TEXT",
    "MS1",
    "MS1_FUSION",
    "JOE_CHUNG_QUERY",
    "YEAR3_QUERY",
    "StaffScenario",
    "build_cs_database",
    "build_whois_objects",
    "build_scenario",
    "build_scaled_scenario",
    "WHOIS_LIMITED_CAPABILITY",
]

#: Figure 2.3 verbatim: the whois wrapper's object structure.
WHOIS_TEXT = """
<&p1, person, set, {&n1,&d1,&rel1,&elm1}>
  <&n1, name, string, 'Joe Chung'>
  <&d1, dept, string, 'CS'>
  <&rel1, relation, string, 'employee'>
  <&elm1, e_mail, string, 'chung@cs'>
;
<&p2, person, set, {&n2,&d2,&rel2,&y2}>
  <&n2, name, string, 'Nick Naive'>
  <&d2, dept, string, 'CS'>
  <&rel2, relation, string, 'student'>
  <&y2, year, integer, 3>
;
"""

#: Section 2's mediator specification MS1 (with the paper's implicit
#: EXT declarations made explicit).
MS1 = """
<cs_person {<name N> <rel R> Rest1 Rest2}> :-
    <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois
    AND decomp(N, LN, FN)
    AND <R {<first_name FN> <last_name LN> | Rest2}>@cs ;

EXT decomp(bound, free, free) BY name_to_lnfn ;
EXT decomp(free, bound, bound) BY lnfn_to_name ;
"""

#: Section 2 notes MS1's limitation: "it only includes information for
#: people that appear in both cs and whois. In particular, we may wish
#: to include information in med even if it appears in a single source."
#: This fusion variant does exactly that: one rule per source, and
#: semantic object-ids &person(LN, FN) make contributions about the same
#: person fuse into one view object.
MS1_FUSION = """
<&person(LN, FN) cs_person {<name N> <rel R> | Rest1}> :-
    <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois
    AND decomp(N, LN, FN) ;

<&person(LN, FN) cs_person {<name N> <rel R> | Rest2}> :-
    <R {<first_name FN> <last_name LN> | Rest2}>@cs
    AND decomp(N, LN, FN) ;

EXT decomp(bound, free, free) BY name_to_lnfn ;
EXT decomp(free, bound, bound) BY lnfn_to_name ;
"""

#: Query Q1 of Section 3.1.
JOE_CHUNG_QUERY = "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med"

#: The Section 3.3 query that triggers the τ1/τ2 pushdown split.
YEAR3_QUERY = "S :- S:<cs_person {<year 3>}>@med"

#: Section 3.5's example limitation: whois cannot evaluate the 'year'
#: condition (it can filter the fields it indexes: name/dept/relation).
WHOIS_LIMITED_CAPABILITY = Capability(
    filterable_labels=frozenset({"name", "dept", "relation"}),
    name="whois-limited",
)


@dataclass
class StaffScenario:
    """Everything the running example needs, wired together."""

    registry: SourceRegistry
    whois: OEMStoreWrapper
    cs: RelationalWrapper
    mediator: Mediator
    externals: ExternalRegistry


def build_cs_database(
    extra_employees: list[tuple[str, str, str, str]] | None = None,
    extra_students: list[tuple[str, str, int]] | None = None,
) -> Database:
    """The ``cs`` relational database with the paper's sample rows."""
    db = Database("cs")
    employee = db.create_table(
        RelationSchema(
            "employee", ["first_name", "last_name", "title", "reports_to"]
        )
    )
    employee.insert("Joe", "Chung", "professor", "John Hennessy")
    student = db.create_table(
        RelationSchema(
            "student",
            ["first_name", "last_name", Attribute("year", "integer")],
        )
    )
    student.insert("Nick", "Naive", 3)
    for row in extra_employees or []:
        employee.insert(*row)
    for row in extra_students or []:
        student.insert(*row)
    return db


def build_whois_objects() -> list[OEMObject]:
    """Figure 2.3's two person objects."""
    return parse_oem(WHOIS_TEXT)


def build_scenario(
    whois_capability: Capability | None = None,
    push_mode: str = "complete",
    strategy: str = "heuristic",
    trace: bool = False,
) -> StaffScenario:
    """The complete running example: whois + cs + med.

    >>> scenario = build_scenario()
    >>> len(scenario.mediator.answer(JOE_CHUNG_QUERY))
    1
    """
    registry = SourceRegistry()
    externals = default_registry()
    whois = OEMStoreWrapper(
        "whois", build_whois_objects(), capability=whois_capability
    )
    cs = RelationalWrapper("cs", build_cs_database())
    registry.register(whois)
    registry.register(cs)
    mediator = Mediator(
        "med",
        MS1,
        registry,
        externals,
        push_mode=push_mode,
        strategy=strategy,
        trace=trace,
    )
    return StaffScenario(registry, whois, cs, mediator, externals)


_FIRST_NAMES = [
    "Joe", "Nick", "Amy", "Dana", "Eli", "Fay", "Gus", "Hana",
    "Ivan", "Jill", "Karl", "Lena", "Mona", "Ned", "Olga", "Pete",
]
_LAST_NAMES = [
    "Chung", "Naive", "Ace", "Birch", "Cole", "Drake", "Eden", "Frost",
    "Gale", "Holt", "Iris", "Jones", "Kane", "Lane", "Moss", "Nash",
]


def build_scaled_scenario(
    people: int,
    seed: int = 1996,
    irregular_fraction: float = 0.3,
    match_fraction: float = 0.9,
    whois_capability: Capability | None = None,
    push_mode: str = "complete",
    strategy: str = "heuristic",
    trace: bool = False,
    compile: bool = True,
) -> StaffScenario:
    """A scaled instance of the running example's shape.

    ``people`` persons populate ``whois``; a ``match_fraction`` of them
    also appear in the matching ``cs`` table (employee or student), so
    the mediator's join selects that fraction.  An
    ``irregular_fraction`` of whois objects carry extra fields
    (``e_mail``, ``office``, ``birthday``) — the semi-structured
    irregularity of Figure 2.3.  Names are unique: ``First LastK``.
    """
    rng = random.Random(seed)
    registry = SourceRegistry()
    externals = default_registry()

    db = Database("cs")
    employee = db.create_table(
        RelationSchema(
            "employee", ["first_name", "last_name", "title", "reports_to"]
        )
    )
    student = db.create_table(
        RelationSchema(
            "student",
            ["first_name", "last_name", Attribute("year", "integer")],
        )
    )

    whois_lines: list[str] = []
    for index in range(people):
        first = _FIRST_NAMES[index % len(_FIRST_NAMES)]
        last = f"{_LAST_NAMES[(index // len(_FIRST_NAMES)) % len(_LAST_NAMES)]}{index}"
        relation = "employee" if rng.random() < 0.5 else "student"
        oid = f"&sp{index}"
        subs = [
            f"<&sn{index}, name, string, '{first} {last}'>",
            f"<&sd{index}, dept, string, 'CS'>",
            f"<&sr{index}, relation, string, '{relation}'>",
        ]
        if rng.random() < irregular_fraction:
            subs.append(
                f"<&se{index}, e_mail, string,"
                f" '{first.lower()}{index}@cs'>"
            )
        if rng.random() < irregular_fraction / 2:
            subs.append(f"<&so{index}, office, string, 'Gates {index % 10}'>")
        if rng.random() < irregular_fraction / 3:
            subs.append(f"<&sy{index}, birthday, string, '1970-01-{1 + index % 28:02d}'>")
        refs = ",".join(s.split(",")[0].strip("<") for s in subs)
        whois_lines.append(f"<{oid}, person, set, {{{refs}}}>")
        whois_lines.extend("  " + s for s in subs)
        whois_lines.append(";")

        if rng.random() < match_fraction:
            if relation == "employee":
                employee.insert(
                    first, last, rng.choice(
                        ["professor", "lecturer", "staff", "postdoc"]
                    ),
                    "John Hennessy",
                )
            else:
                student.insert(first, last, rng.randint(1, 5))

    whois = OEMStoreWrapper(
        "whois",
        parse_oem("\n".join(whois_lines)),
        capability=whois_capability,
        compile=compile,
    )
    cs = RelationalWrapper("cs", db, compile=compile)
    registry.register(whois)
    registry.register(cs)
    mediator = Mediator(
        "med",
        MS1,
        registry,
        externals,
        push_mode=push_mode,
        strategy=strategy,
        trace=trace,
        compile=compile,
    )
    return StaffScenario(registry, whois, cs, mediator, externals)

"""The introduction's motivating scenario: a bibliography mediator.

"A mediator for Computer Science publications could provide access to a
set of bibliographic sources ... Users accessing the mediator would see
a single collection of materials, with, for example, duplicates removed
and inconsistencies resolved (e.g., all author names would be in the
format last name, first name)."

Two heterogeneous sources are built:

* ``deptbib`` — a relational source ``paper(title, author, venue, year)``
  storing author names as ``'First Last'``;
* ``webbib`` — a semi-structured source of ``entry`` objects with
  irregular fields (some have ``pages``, some ``url``; authors already
  in ``'Last, First'``).

The ``bib`` mediator exports a unified ``publication`` view with a
*semantic object-id* per (title, year), so records appearing in both
sources **fuse** into one object, and it normalises author names to
``'Last, First'`` via external functions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.external.registry import ExternalRegistry, default_registry
from repro.mediator.mediator import Mediator
from repro.relational.database import Database
from repro.relational.schema import Attribute, RelationSchema
from repro.wrappers.oem_wrapper import OEMStoreWrapper
from repro.wrappers.registry import SourceRegistry
from repro.wrappers.relational_wrapper import RelationalWrapper
from repro.oem.parser import parse_oem

__all__ = [
    "BIB_SPEC",
    "BibliographyScenario",
    "build_bibliography",
    "normalize_author",
]

#: The bib mediator: one rule per source, fused via &pub(T, Y) semantic
#: oids; author names normalised through the external predicate.
BIB_SPEC = """
<&pub(T, Y) publication {<title T> <author A2> <venue V> <year Y>}> :-
    <paper {<title T> <author A> <venue V> <year Y>}>@deptbib
    AND normalize_author(A, A2) ;

<&pub(T, Y) publication {<title T> <author A2> <year Y> | Rest}> :-
    <entry {<title T> <author A> <year Y> | Rest}>@webbib
    AND normalize_author(A, A2) ;

EXT normalize_author(bound, free) BY normalize_author ;
"""


def normalize_author(name: object) -> list[tuple[str]]:
    """Normalise any supported author format to ``'Last, First'``.

    Accepts ``'First Last'`` and ``'Last, First'`` (idempotent).
    """
    if not isinstance(name, str) or not name.strip():
        return []
    text = name.strip()
    if "," in text:
        last, _, first = text.partition(",")
        last, first = last.strip(), first.strip()
        if not last or not first:
            return []
        return [(f"{last}, {first}",)]
    parts = text.rsplit(" ", 1)
    if len(parts) != 2:
        return [(text,)]
    first, last = parts
    return [(f"{last}, {first}",)]


@dataclass
class BibliographyScenario:
    registry: SourceRegistry
    deptbib: RelationalWrapper
    webbib: OEMStoreWrapper
    mediator: Mediator
    externals: ExternalRegistry


_TITLES = [
    "Mediators in Information Systems",
    "Object Exchange Across Sources",
    "Querying Semistructured Data",
    "The Garlic Approach",
    "Schema Integration Methodologies",
    "A Logic for Objects",
    "Higher-Order Logic Programming",
    "Interoperability of Databases",
    "Views and Objects",
    "Capabilities-Based Rewriting",
]
_AUTHORS = [
    "Gio Wiederhold", "Yannis Papakonstantinou", "Hector Garcia-Molina",
    "Jeffrey Ullman", "Jennifer Widom", "Dallan Quass", "Anand Rajaraman",
]
_VENUES = ["ICDE", "SIGMOD", "VLDB", "PODS"]


def build_bibliography(
    papers: int = 12,
    overlap_fraction: float = 0.5,
    seed: int = 7,
) -> BibliographyScenario:
    """Build the two sources plus the ``bib`` mediator.

    ``overlap_fraction`` of the papers appear in *both* sources (with
    differently formatted author names), exercising fusion and
    name-format reconciliation; the rest are split between the sources.
    """
    rng = random.Random(seed)
    registry = SourceRegistry()
    externals = default_registry()
    externals.register_function("normalize_author", normalize_author)

    db = Database("deptbib")
    paper = db.create_table(
        RelationSchema(
            "paper",
            ["title", "author", "venue", Attribute("year", "integer")],
        )
    )

    web_lines: list[str] = []

    def add_web_entry(index: int, title: str, author_lf: str, year: int) -> None:
        subs = [
            f"<&bt{index}, title, string, '{title}'>",
            f"<&ba{index}, author, string, '{author_lf}'>",
            f"<&by{index}, year, integer, {year}>",
        ]
        if rng.random() < 0.5:
            subs.append(
                f"<&bp{index}, pages, string,"
                f" '{rng.randint(1, 400)}-{rng.randint(401, 800)}'>"
            )
        if rng.random() < 0.4:
            subs.append(
                f"<&bu{index}, url, string, 'ftp://db.stanford.edu/{index}.ps'>"
            )
        refs = ",".join(s.split(",")[0].strip("<") for s in subs)
        web_lines.append(f"<&be{index}, entry, set, {{{refs}}}>")
        web_lines.extend("  " + s for s in subs)
        web_lines.append(";")

    for index in range(papers):
        title = f"{_TITLES[index % len(_TITLES)]} {index // len(_TITLES) + 1}"
        author_fl = _AUTHORS[index % len(_AUTHORS)]  # 'First Last'
        first, last = author_fl.rsplit(" ", 1)
        author_lf = f"{last}, {first}"
        venue = rng.choice(_VENUES)
        year = rng.randint(1990, 1996)
        roll = rng.random()
        if roll < overlap_fraction:
            paper.insert(title, author_fl, venue, year)
            add_web_entry(index, title, author_lf, year)
        elif roll < overlap_fraction + (1 - overlap_fraction) / 2:
            paper.insert(title, author_fl, venue, year)
        else:
            add_web_entry(index, title, author_lf, year)

    deptbib = RelationalWrapper("deptbib", db)
    webbib = OEMStoreWrapper(
        "webbib", parse_oem("\n".join(web_lines)) if web_lines else []
    )
    registry.register(deptbib)
    registry.register(webbib)
    mediator = Mediator("bib", BIB_SPEC, registry, externals)
    return BibliographyScenario(registry, deptbib, webbib, mediator, externals)

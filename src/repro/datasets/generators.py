"""Synthetic OEM workload generators for benchmarks and property tests.

These produce forests with controlled size, fan-out, depth, and label
vocabulary, so benchmark sweeps can isolate one variable at a time
(source cardinality for join benchmarks, nesting depth for wildcard
benchmarks, irregularity for Rest-variable benchmarks).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.oem.builders import atom, obj
from repro.oem.model import OEMObject

__all__ = [
    "random_forest",
    "deep_object",
    "record_forest",
    "LABELS",
]

#: Default label vocabulary for random structures.
LABELS = [
    "person", "name", "dept", "relation", "year", "title", "e_mail",
    "office", "project", "member", "budget", "address", "city", "zip",
]


def record_forest(
    count: int,
    fields: Sequence[tuple[str, str]] = (
        ("name", "string"),
        ("dept", "string"),
        ("year", "integer"),
    ),
    label: str = "person",
    seed: int = 0,
    irregular_fraction: float = 0.0,
) -> list[OEMObject]:
    """``count`` flat record objects with the given fields.

    With ``irregular_fraction`` > 0, that fraction of records randomly
    drop one field and/or gain an extra one — the paper's
    semi-structured irregularity.
    """
    rng = random.Random(seed)
    forest: list[OEMObject] = []
    for index in range(count):
        children = []
        present = list(fields)
        irregular = rng.random() < irregular_fraction
        if irregular and len(present) > 1:
            present.pop(rng.randrange(len(present)))
        for field_name, field_type in present:
            if field_type == "integer":
                children.append(atom(field_name, index % 7, oid=None))
            else:
                children.append(
                    atom(field_name, f"{field_name}_{index}", oid=None)
                )
        if irregular:
            children.append(atom("extra", f"extra_{index}"))
        forest.append(obj(label, *children))
    return forest


def deep_object(
    depth: int,
    fanout: int = 2,
    label: str = "node",
    leaf_label: str = "leaf",
    leaf_value: object = "x",
) -> OEMObject:
    """A nesting chain/tree of the given depth (wildcard benchmarks).

    Depth 1 is a single atomic object.  The unique deepest leaf carries
    ``leaf_label``/``leaf_value`` so a descendant search has exactly one
    target.
    """
    current = atom(leaf_label, leaf_value)
    for level in range(2, depth + 1):
        children = [current]
        children.extend(
            atom("filler", f"f{level}_{i}") for i in range(fanout - 1)
        )
        current = obj(label, *children)
    return current


def random_forest(
    count: int,
    max_depth: int = 3,
    max_fanout: int = 4,
    seed: int = 0,
    labels: Sequence[str] = tuple(LABELS),
) -> list[OEMObject]:
    """``count`` random nested objects (fuzzing and robustness tests)."""
    rng = random.Random(seed)

    def build(depth: int) -> OEMObject:
        label = rng.choice(labels)
        if depth >= max_depth or rng.random() < 0.4:
            kind = rng.randrange(3)
            if kind == 0:
                return atom(label, f"v{rng.randrange(1000)}")
            if kind == 1:
                return atom(label, rng.randrange(100))
            return atom(label, rng.random() < 0.5)
        children = [
            build(depth + 1) for _ in range(rng.randrange(1, max_fanout + 1))
        ]
        return obj(label, *children)

    return [build(1) for _ in range(count)]

"""Synthetic OEM workload generators for benchmarks and property tests.

These produce forests with controlled size, fan-out, depth, and label
vocabulary, so benchmark sweeps can isolate one variable at a time
(source cardinality for join benchmarks, nesting depth for wildcard
benchmarks, irregularity for Rest-variable benchmarks).
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Sequence

from repro.oem.builders import atom, obj
from repro.oem.model import OEMObject

__all__ = [
    "random_forest",
    "deep_object",
    "probe_keys",
    "record_forest",
    "record_stream",
    "route_records",
    "LABELS",
]

#: Default label vocabulary for random structures.
LABELS = [
    "person", "name", "dept", "relation", "year", "title", "e_mail",
    "office", "project", "member", "budget", "address", "city", "zip",
]


def record_forest(
    count: int,
    fields: Sequence[tuple[str, str]] = (
        ("name", "string"),
        ("dept", "string"),
        ("year", "integer"),
    ),
    label: str = "person",
    seed: int = 0,
    irregular_fraction: float = 0.0,
) -> list[OEMObject]:
    """``count`` flat record objects with the given fields.

    With ``irregular_fraction`` > 0, that fraction of records randomly
    drop one field and/or gain an extra one — the paper's
    semi-structured irregularity.
    """
    rng = random.Random(seed)
    forest: list[OEMObject] = []
    for index in range(count):
        children = []
        present = list(fields)
        irregular = rng.random() < irregular_fraction
        if irregular and len(present) > 1:
            present.pop(rng.randrange(len(present)))
        for field_name, field_type in present:
            if field_type == "integer":
                children.append(atom(field_name, index % 7, oid=None))
            else:
                children.append(
                    atom(field_name, f"{field_name}_{index}", oid=None)
                )
        if irregular:
            children.append(atom("extra", f"extra_{index}"))
        forest.append(obj(label, *children))
    return forest


def record_stream(
    count: int,
    key_label: str = "key",
    key_space: int | None = None,
    payload_fields: Sequence[str] = ("payload",),
    seed: int = 0,
) -> Iterator[list[tuple[str, object]]]:
    """Stream ``count`` flat record rows as ``[(field, value), ...]``.

    This is the million-object feeder: rows are generated lazily, in a
    shape :meth:`SQLiteOEMStoreWrapper.load_records` consumes directly,
    so a CI-scale dataset never has to exist as OEM objects in memory
    all at once.  Keys cycle through ``key_space`` (default: ``count``,
    i.e. unique keys); payload values are deterministic functions of
    the row index, so two streams with equal parameters are identical.
    """
    space = count if key_space is None else key_space
    for index in range(count):
        row: list[tuple[str, object]] = [(key_label, index % space)]
        for position, field_name in enumerate(payload_fields):
            row.append((field_name, f"{field_name}_{index}_{position}"))
        yield row


def route_records(
    rows: Iterable[list[tuple[str, object]]],
    partition,
    shards: int,
    chunk: int = 20_000,
) -> Iterator[tuple[int, list[list[tuple[str, object]]]]]:
    """Split a record stream across shards: yields ``(index, chunk)``.

    ``partition`` is anything with ``label`` and ``shard_of(value)``
    (``HashPartition``/``RangePartition``); a row whose key routes to
    ``None`` is broadcast to every shard, mirroring how an unroutable
    probe fans out at query time.  Buffering is bounded at ``chunk``
    rows per shard, so the loader stays streaming end to end::

        for index, batch in route_records(record_stream(1_000_000), part, 8):
            stores[index].load_records("rec", batch)
    """
    buffers: list[list[list[tuple[str, object]]]] = [[] for _ in range(shards)]
    for row in rows:
        value = next(
            (v for field, v in row if field == partition.label), None
        )
        routed = partition.shard_of(value)
        targets = range(shards) if routed is None else (routed,)
        for target in targets:
            buffers[target].append(row)
            if len(buffers[target]) >= chunk:
                yield target, buffers[target]
                buffers[target] = []
    for target, buffer in enumerate(buffers):
        if buffer:
            yield target, buffer


def probe_keys(count: int, key_space: int, seed: int = 0) -> list[int]:
    """``count`` probe keys drawn from ``key_space`` (with duplicates).

    Duplicates are deliberate: they exercise probe deduplication in the
    bind-join batch path.
    """
    rng = random.Random(seed)
    return [rng.randrange(key_space) for _ in range(count)]


def deep_object(
    depth: int,
    fanout: int = 2,
    label: str = "node",
    leaf_label: str = "leaf",
    leaf_value: object = "x",
) -> OEMObject:
    """A nesting chain/tree of the given depth (wildcard benchmarks).

    Depth 1 is a single atomic object.  The unique deepest leaf carries
    ``leaf_label``/``leaf_value`` so a descendant search has exactly one
    target.
    """
    current = atom(leaf_label, leaf_value)
    for level in range(2, depth + 1):
        children = [current]
        children.extend(
            atom("filler", f"f{level}_{i}") for i in range(fanout - 1)
        )
        current = obj(label, *children)
    return current


def random_forest(
    count: int,
    max_depth: int = 3,
    max_fanout: int = 4,
    seed: int = 0,
    labels: Sequence[str] = tuple(LABELS),
) -> list[OEMObject]:
    """``count`` random nested objects (fuzzing and robustness tests)."""
    rng = random.Random(seed)

    def build(depth: int) -> OEMObject:
        label = rng.choice(labels)
        if depth >= max_depth or rng.random() < 0.4:
            kind = rng.randrange(3)
            if kind == 0:
                return atom(label, f"v{rng.randrange(1000)}")
            if kind == 1:
                return atom(label, rng.randrange(100))
            return atom(label, rng.random() < 0.5)
        children = [
            build(depth + 1) for _ in range(rng.randrange(1, max_fanout + 1))
        ]
        return obj(label, *children)

    return [build(1) for _ in range(count)]

"""Ready-made scenarios and synthetic workload generators."""

from repro.datasets.campus import (
    CAMPUS_SPEC,
    CampusScenario,
    build_campus_scenario,
)

from repro.datasets.bibliography import (
    BIB_SPEC,
    BibliographyScenario,
    build_bibliography,
    normalize_author,
)
from repro.datasets.generators import (
    LABELS,
    deep_object,
    probe_keys,
    random_forest,
    record_forest,
    record_stream,
    route_records,
)
from repro.datasets.staff import (
    JOE_CHUNG_QUERY,
    MS1,
    MS1_FUSION,
    StaffScenario,
    WHOIS_LIMITED_CAPABILITY,
    WHOIS_TEXT,
    YEAR3_QUERY,
    build_cs_database,
    build_scaled_scenario,
    build_scenario,
    build_whois_objects,
)

__all__ = [
    "BIB_SPEC",
    "CAMPUS_SPEC",
    "CampusScenario",
    "build_campus_scenario",
    "BibliographyScenario",
    "JOE_CHUNG_QUERY",
    "LABELS",
    "MS1",
    "MS1_FUSION",
    "StaffScenario",
    "WHOIS_LIMITED_CAPABILITY",
    "WHOIS_TEXT",
    "YEAR3_QUERY",
    "build_bibliography",
    "build_cs_database",
    "build_scaled_scenario",
    "build_scenario",
    "build_whois_objects",
    "deep_object",
    "normalize_author",
    "probe_keys",
    "random_forest",
    "record_forest",
    "record_stream",
    "route_records",
]

"""Pretty-printing of MSL ASTs.

The AST classes' ``__str__`` already produce valid one-line MSL; this
module adds multi-line layouts that match how the paper typesets rules —
the head on its own line, each tail condition indented and joined by
``AND`` — plus helpers for printing whole specifications and programs.
"""

from __future__ import annotations

from typing import Iterable

from repro.msl.ast import Rule, Specification

__all__ = ["format_rule", "format_specification", "format_rules"]


def format_rule(rule: Rule, indent: str = "    ") -> str:
    """Format one rule in the paper's multi-line style.

    >>> from repro.msl.parser import parse_rule
    >>> print(format_rule(parse_rule("<a X> :- <b X>@s AND <c X>@t")))
    <a X> :-
        <b X>@s
        AND <c X>@t
    """
    head_text = " ".join(str(h) for h in rule.head)
    lines = [f"{head_text} :-"]
    for index, condition in enumerate(rule.tail):
        prefix = indent if index == 0 else f"{indent}AND "
        lines.append(prefix + str(condition))
    return "\n".join(lines)


def format_rules(rules: Iterable[Rule], indent: str = "    ") -> str:
    """Format several rules separated by blank lines."""
    return "\n\n".join(format_rule(rule, indent) for rule in rules)


def format_specification(spec: Specification, indent: str = "    ") -> str:
    """Format a full specification: rules then EXT declarations."""
    parts = [format_rule(rule, indent) for rule in spec.rules]
    parts.extend(str(decl) for decl in spec.externals)
    return "\n\n".join(parts)

"""Abstract syntax of the Mediator Specification Language (MSL).

MSL is the declarative rule language of MedMaker.  A *specification* is a
set of rules plus external-function declarations; a *query* is a single
rule evaluated against a mediator or source.  A rule is

``head :- tail``

where the tail lists *conditions*: object patterns annotated with the
source they refer to (``<...>@cs``), external predicate calls
(``decomp(N, LN, FN)``), and comparisons.  The head lists the patterns of
the objects the rule derives.

The classes here are immutable value objects; they print back to MSL
syntax via :mod:`repro.msl.unparse` (their ``__str__``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

__all__ = [
    "Term",
    "Const",
    "Var",
    "Param",
    "SemOidTerm",
    "Pattern",
    "SetPattern",
    "SetItem",
    "PatternItem",
    "VarItem",
    "RestSpec",
    "Condition",
    "PatternCondition",
    "ExternalCall",
    "Comparison",
    "COMPARISON_OPS",
    "HeadItem",
    "Rule",
    "ExternalDecl",
    "Specification",
    "is_variable_name",
    "ANONYMOUS",
]

#: The anonymous variable.  Each occurrence is distinct; it never joins.
ANONYMOUS = "_"


def is_variable_name(name: str) -> bool:
    """MSL variables are identifiers starting with a capital letter or ``_``.

    >>> is_variable_name('Rest1'), is_variable_name('name')
    (True, False)
    """
    return bool(name) and (name[0].isupper() or name[0] == "_")


# ---------------------------------------------------------------------------
# terms: the things that fill pattern slots
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Const:
    """A constant: a string, number, or boolean atom."""

    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            # identifier-like constants (labels, type names) print bare,
            # matching the paper's notation; anything else is quoted
            if (
                self.value
                and not is_variable_name(self.value)
                and self.value.replace("_", "a").isalnum()
                and not self.value[0].isdigit()
            ):
                return self.value
            return "'" + self.value.replace("'", "\\'") + "'"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Var:
    """A variable.  ``Var('_')`` is the anonymous variable."""

    name: str

    @property
    def is_anonymous(self) -> bool:
        return self.name == ANONYMOUS

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Param:
    """A ``$name`` placeholder in a parameterized query template.

    Parameterized-query plan nodes (Section 3.4) substitute a concrete
    value for each parameter before sending the query to a source.
    """

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True, slots=True)
class SemOidTerm:
    """A semantic object-id term ``&functor(arg, ...)`` in a head.

    Evaluating it under a binding produces a
    :class:`repro.oem.oid.SemanticOid`, enabling object fusion.
    """

    functor: str
    args: tuple["Term", ...]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"&{self.functor}({inner})"


Term = Union[Const, Var, Param, SemOidTerm]


# ---------------------------------------------------------------------------
# patterns
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RestSpec:
    """The ``| Rest`` part of a set pattern.

    ``conditions`` holds patterns *attached* to the rest variable by the
    view expander's condition pushdown (the paper writes this
    ``Rest1:{<year 3>}``): each condition must match some member of the
    rest set, without removing it from the set.
    """

    var: Var
    conditions: tuple["Pattern", ...] = ()

    def __str__(self) -> str:
        if self.conditions:
            inner = " ".join(str(c) for c in self.conditions)
            return f"{self.var}:{{{inner}}}"
        return str(self.var)


@dataclass(frozen=True, slots=True)
class PatternItem:
    """A sub-object pattern inside ``{}``.

    ``descendant`` marks the wildcard form ``.. <p>``: the pattern may
    match at *any* depth below the enclosing object, not only among its
    direct sub-objects.
    """

    pattern: "Pattern"
    descendant: bool = False

    def __str__(self) -> str:
        return (".. " if self.descendant else "") + str(self.pattern)


@dataclass(frozen=True, slots=True)
class VarItem:
    """A bare variable inside head braces, e.g. ``Rest1`` in

    ``<cs_person {<name N> <rel R> Rest1 Rest2}>``

    At instantiation time a set-bound variable is flattened one level
    into the surrounding set; an object-bound variable contributes that
    object.
    """

    var: Var

    def __str__(self) -> str:
        return str(self.var)


SetItem = Union[PatternItem, VarItem]


@dataclass(frozen=True, slots=True)
class SetPattern:
    """A brace pattern ``{item ... | Rest}`` for set values."""

    items: tuple[SetItem, ...] = ()
    rest: RestSpec | None = None

    def __str__(self) -> str:
        parts = [str(i) for i in self.items]
        body = " ".join(parts)
        if self.rest is not None:
            body = f"{body} | {self.rest}" if body else f"| {self.rest}"
        return "{" + body + "}"


@dataclass(frozen=True, slots=True)
class Pattern:
    """An object pattern ``ObjVar:<oid label type value>``.

    Any slot may hold a constant or a variable; ``oid`` and ``type`` may
    be absent (the paper's elision rules).  ``value`` is a term or a
    :class:`SetPattern`.
    """

    label: Term
    value: Union[Term, SetPattern]
    type: Term | None = None
    oid: Term | None = None
    object_var: Var | None = None

    def __str__(self) -> str:
        fields = []
        if self.oid is not None:
            fields.append(str(self.oid))
        fields.append(str(self.label))
        if self.type is not None:
            fields.append(str(self.type))
        fields.append(str(self.value))
        body = f"<{' '.join(fields)}>"
        if self.object_var is not None:
            return f"{self.object_var}:{body}"
        return body

    @property
    def set_value(self) -> SetPattern | None:
        """The value as a SetPattern, or None for term values."""
        if isinstance(self.value, SetPattern):
            return self.value
        return None


# ---------------------------------------------------------------------------
# tail conditions
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PatternCondition:
    """A tail condition ``pattern @ source``.

    ``source`` names a wrapper or mediator in the source registry; it is
    ``None`` inside queries shipped *to* a specific source (the recipient
    is implicit).
    """

    pattern: Pattern
    source: str | None = None

    def __str__(self) -> str:
        suffix = f"@{self.source}" if self.source else ""
        return f"{self.pattern}{suffix}"


@dataclass(frozen=True, slots=True)
class ExternalCall:
    """An external predicate call, e.g. ``decomp(N, LN, FN)``."""

    name: str
    args: tuple[Term, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.name}({inner})"


#: Comparison operators accepted in tails.
COMPARISON_OPS = ("=", "!=", "<=", ">=", "<", ">")


@dataclass(frozen=True, slots=True)
class Comparison:
    """A builtin comparison between two terms, e.g. ``Y > 2``."""

    left: Term
    op: str
    right: Term

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


Condition = Union[PatternCondition, ExternalCall, Comparison]


# ---------------------------------------------------------------------------
# rules, declarations, specifications
# ---------------------------------------------------------------------------

HeadItem = Union[Pattern, Var]


@dataclass(frozen=True, slots=True)
class Rule:
    """One MSL rule ``head :- tail``.

    The head is a sequence of patterns (mediator specification rules) or
    bare object variables (queries like ``JC :- JC:<...>@med``).
    """

    head: tuple[HeadItem, ...]
    tail: tuple[Condition, ...]

    def __str__(self) -> str:
        head_text = " ".join(str(h) for h in self.head)
        tail_text = " AND ".join(str(c) for c in self.tail)
        return f"{head_text} :- {tail_text}"

    def pattern_conditions(self) -> Iterator[PatternCondition]:
        """The tail's pattern conditions, in order."""
        for cond in self.tail:
            if isinstance(cond, PatternCondition):
                yield cond

    def external_calls(self) -> Iterator[ExternalCall]:
        for cond in self.tail:
            if isinstance(cond, ExternalCall):
                yield cond

    def comparisons(self) -> Iterator[Comparison]:
        for cond in self.tail:
            if isinstance(cond, Comparison):
                yield cond


@dataclass(frozen=True, slots=True)
class ExternalDecl:
    """Declaration binding a predicate/adornment to an implementation.

    ``EXT decomp(bound, free, free) BY name_to_lnfn`` says: when the
    first argument of ``decomp`` is bound and the rest are free, the
    engine may call the registered function ``name_to_lnfn`` with the
    bound arguments and receive tuples for the free ones.  A predicate
    may have several declarations — "having more than one function for
    decomp gives flexibility at execution time".
    """

    predicate: str
    adornment: tuple[str, ...]  # each 'b' or 'f'
    function: str

    def __post_init__(self) -> None:
        for a in self.adornment:
            if a not in ("b", "f"):
                raise ValueError(f"adornment letters are 'b'/'f', got {a!r}")

    @property
    def arity(self) -> int:
        return len(self.adornment)

    def __str__(self) -> str:
        words = ", ".join("bound" if a == "b" else "free" for a in self.adornment)
        return f"EXT {self.predicate}({words}) BY {self.function}"


@dataclass(frozen=True, slots=True)
class Specification:
    """A full mediator specification: rules + external declarations."""

    rules: tuple[Rule, ...]
    externals: tuple[ExternalDecl, ...] = ()

    def __str__(self) -> str:
        parts = [str(r) for r in self.rules] + [str(d) for d in self.externals]
        return "\n".join(parts)

    def declarations_for(self, predicate: str) -> tuple[ExternalDecl, ...]:
        """All declared implementations of ``predicate``."""
        return tuple(
            d for d in self.externals if d.predicate == predicate
        )

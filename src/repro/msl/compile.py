"""Compiled pattern matching: MSL rules lowered to Python closures.

The paper's MSI pipeline separates a one-time "compile the datamerge
program" phase from the per-query run phase.  This module exploits the
same split one level lower, inside pattern evaluation itself:

* every slot of a pattern is lowered to a specialized closure at
  view-definition time — constant tests are precomputed, variables are
  resolved to **integer registers** in a per-rule :class:`SlotLayout`;
* binding environments become fixed-width tuples (*frames*) with an
  :data:`UNBOUND` sentinel, so a bind is one tuple splice instead of a
  dict copy;
* set-pattern items are searched constants-first (most selective items
  prune the injective assignment earliest), with the child set tracked
  as a bitmask;
* compiled rules precompute the condition schedule
  (:func:`~repro.msl.evaluate.schedule_conditions`) and the head
  projection, and are memoized in a :class:`CompileCache`.

**Equivalence contract.**  The compiled backend is bit-for-bit
equivalent to the interpretive one (:mod:`repro.msl.matcher` /
:mod:`repro.msl.evaluate`): same solutions, in the same order, same
errors, same oid-generator call sequence.  Reordering set items for
selectivity would normally permute solutions, so every matcher tags
each solution with a canonical *choice key* — the per-item
``(child_index, nested_key)`` fragments laid out in the pattern's
original item order — and sorts the per-object solutions by that key
whenever the search order differs from the written order.  Key shape is
fixed per pattern, so the tuple sort restores exactly the interpretive
enumeration order.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.msl.analysis import condition_variables
from repro.msl.ast import (
    Comparison,
    Const,
    ExternalCall,
    Param,
    Pattern,
    PatternCondition,
    PatternItem,
    Rule,
    SemOidTerm,
    SetPattern,
    Term,
    Var,
    VarItem,
)
from repro.msl.bindings import (
    EMPTY_BINDINGS,
    Bindings,
    value_key,
    values_equal,
)
from repro.msl.errors import (
    MSLInstantiationError,
    MSLMatchError,
    MSLSemanticError,
)
from repro.msl.evaluate import (
    compare_values,
    schedule_conditions,
    unschedulable_error,
)
from repro.msl.substitute import head_variables, pattern_variables
from repro.oem.compare import eliminate_duplicates
from repro.oem.model import SET_TYPE, OEMObject
from repro.oem.oid import Oid, OidGenerator, SemanticOid, fresh_oid
from repro.oem.traverse import descendants, walk

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.external.registry import ExternalRegistry
    from repro.msl.analysis import check_rule as _check_rule_t  # noqa: F401

__all__ = [
    "UNBOUND",
    "SlotLayout",
    "CompiledPattern",
    "CompiledRule",
    "CompileCache",
    "compile_head_item",
    "compile_pattern",
    "compile_rule",
    "evaluate_rule_compiled",
    "run_row_extractor",
]


class _Unbound:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unbound>"


#: Register sentinel: the slot has no value yet.
UNBOUND = _Unbound()

_EMPTY: list = []
_NO_KEY: tuple = ()


def _bindings_from(mapping: dict) -> Bindings:
    """Wrap an owned dict as Bindings without the defensive copy."""
    env = Bindings.__new__(Bindings)
    object.__setattr__(env, "_map", mapping)
    return env


class SlotLayout:
    """Variable-name → register-index mapping for one rule or pattern."""

    __slots__ = ("names", "index", "width", "empty_frame")

    def __init__(self, names: Sequence[str]) -> None:
        self.names = tuple(names)
        self.index = {name: i for i, name in enumerate(self.names)}
        self.width = len(self.names)
        self.empty_frame: tuple = (UNBOUND,) * self.width

    def register(self, name: str) -> int:
        return self.index[name]

    def seed(self, bindings: Bindings) -> tuple:
        """A frame pre-loaded with the layout's share of ``bindings``."""
        if not len(bindings):
            return self.empty_frame
        frame = list(self.empty_frame)
        index = self.index
        for name, value in bindings.items():
            position = index.get(name)
            if position is not None:
                frame[position] = value
        return tuple(frame)

    def to_bindings(
        self, frame: tuple, base: Bindings = EMPTY_BINDINGS
    ) -> Bindings:
        """The environment a frame denotes, over incoming ``base``."""
        mapping = dict(base._map) if len(base) else {}
        for name, value in zip(self.names, frame):
            if value is not UNBOUND:
                mapping[name] = value
        return _bindings_from(mapping)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlotLayout({list(self.names)})"


def _bind(frame: tuple, register: int, value: object) -> tuple | None:
    """Bind one register; ``None`` on structural conflict."""
    current = frame[register]
    if current is UNBOUND:
        return frame[:register] + (value,) + frame[register + 1:]
    if current is value or values_equal(current, value):
        return frame
    return None


# ---------------------------------------------------------------------------
# slot compilation
# ---------------------------------------------------------------------------


def _param_error(name: str) -> MSLMatchError:
    return MSLMatchError(
        f"parameter ${name} in a pattern being matched; "
        f"instantiate the template first"
    )


def _compile_term_test(term: Term, layout: SlotLayout):
    """Lower one non-value slot term to ``(actual, frame) -> frame|None``."""
    if isinstance(term, Const):
        want = term.value
        if isinstance(want, str):
            # str equality agrees with values_equal for every actual type
            def test_str(actual, frame, _w=want):
                return frame if actual == _w else None

            return test_str

        def test_const(actual, frame, _w=want):
            return frame if values_equal(_w, actual) else None

        return test_const
    if isinstance(term, Var):
        if term.is_anonymous:
            return lambda actual, frame: frame
        register = layout.register(term.name)

        def test_var(actual, frame, _r=register):
            current = frame[_r]
            if current is UNBOUND:
                return frame[:_r] + (actual,) + frame[_r + 1:]
            if current is actual or values_equal(current, actual):
                return frame
            return None

        return test_var
    if isinstance(term, Param):
        name = term.name

        def test_param(actual, frame, _n=name):
            raise _param_error(_n)

        return test_param
    if isinstance(term, SemOidTerm):
        functor = term.functor
        arity = len(term.args)
        arg_tests = tuple(
            _compile_term_test(arg, layout) for arg in term.args
        )

        def test_semoid(
            actual, frame, _f=functor, _n=arity, _tests=arg_tests
        ):
            if not isinstance(actual, SemanticOid):
                return None
            if actual.functor != _f or len(actual.args) != _n:
                return None
            for test, arg_value in zip(_tests, actual.args):
                frame = test(arg_value, frame)
                if frame is None:
                    return None
            return frame

        return test_semoid
    message = f"cannot match slot term {term!r}"

    def test_unknown(actual, frame, _m=message):
        raise MSLMatchError(_m)

    return test_unknown


def _constant_weight(pattern: Pattern) -> int:
    """A selectivity score: how many constant tests gate this pattern."""
    weight = 0
    if isinstance(pattern.oid, (Const, SemOidTerm)):
        weight += 2
    if isinstance(pattern.label, Const):
        weight += 2
    if isinstance(pattern.type, Const):
        weight += 1
    value = pattern.value
    if isinstance(value, Const):
        weight += 2
    elif isinstance(value, SetPattern):
        for item in value.items:
            if isinstance(item, PatternItem):
                weight += _constant_weight(item.pattern)
    return weight


def _compile_set(setpat: SetPattern, layout: SlotLayout):
    """Lower a ``{...}`` pattern to a keyed set matcher closure."""
    var_item_message = None
    direct: list[Pattern] = []
    deep: list[Pattern] = []
    for item in setpat.items:
        if isinstance(item, VarItem):
            var_item_message = (
                f"bare variable {item.var} inside a set pattern is only"
                f" meaningful in rule heads"
            )
            break
        if isinstance(item, PatternItem):
            (deep if item.descendant else direct).append(item.pattern)

    if var_item_message is not None:
        def raise_var_item(obj, frame, _m=var_item_message):
            if obj.type != SET_TYPE:
                return _EMPTY
            raise MSLMatchError(_m)

        return raise_var_item

    # direct items: (original position, matcher, label prefilter), searched
    # most-constant-first; the choice key restores written-order solutions
    specs = []
    for position, pattern in enumerate(direct):
        matcher, label_const = _compile_matcher(pattern, layout)
        specs.append((position, matcher, label_const))
    ordered = sorted(
        specs, key=lambda spec: -_constant_weight(direct[spec[0]])
    )
    needs_sort = any(
        spec[0] != rank for rank, spec in enumerate(ordered)
    )
    ordered = tuple(ordered)
    n_direct = len(ordered)

    deep_matchers = tuple(
        _compile_matcher(pattern, layout)[0] for pattern in deep
    )
    n_deep = len(deep_matchers)

    has_rest = setpat.rest is not None
    rest_register = None
    rest_cond_matchers: tuple = ()
    if has_rest:
        if not setpat.rest.var.is_anonymous:
            rest_register = layout.register(setpat.rest.var.name)
        rest_cond_matchers = tuple(
            _compile_matcher(pattern, layout)[0]
            for pattern in setpat.rest.conditions
        )
    n_conds = len(rest_cond_matchers)

    if n_direct == 1 and not n_deep and not has_rest:
        # the hot shape — one pushed-down condition like {<name 'Joe'>}
        (_, only_matcher, only_label) = ordered[0]

        if only_label is not None:
            def match_single(obj, frame, _m=only_matcher, _l=only_label):
                if obj.type != SET_TYPE:
                    return _EMPTY
                solutions = []
                for child_index, child in enumerate(obj.value):
                    if child.label != _l:
                        continue
                    for found, nested in _m(child, frame):
                        solutions.append(
                            (found, ((child_index, nested),))
                        )
                return solutions

            return match_single

        def match_single_any(obj, frame, _m=only_matcher):
            if obj.type != SET_TYPE:
                return _EMPTY
            solutions = []
            for child_index, child in enumerate(obj.value):
                for found, nested in _m(child, frame):
                    solutions.append((found, ((child_index, nested),)))
            return solutions

        return match_single_any

    if n_direct == 1 and not n_deep and has_rest and not n_conds:
        # {<name N> | Rest} — one item, bare rest: the rest members are
        # simply the other children, in store order
        (_, only_matcher, only_label) = ordered[0]

        def match_single_rest(obj, frame, _m=only_matcher, _l=only_label):
            if obj.type != SET_TYPE:
                return _EMPTY
            children = obj.value
            solutions = []
            for child_index, child in enumerate(children):
                if _l is not None and child.label != _l:
                    continue
                for found, nested in _m(child, frame):
                    env = found
                    if rest_register is not None:
                        rest_members = tuple(
                            children[:child_index]
                            + children[child_index + 1:]
                        )
                        env = _bind(found, rest_register, rest_members)
                        if env is None:
                            continue
                    solutions.append((env, ((child_index, nested),)))
            return solutions

        return match_single_rest

    def match_set(obj, frame):
        if obj.type != SET_TYPE:
            return _EMPTY
        children = obj.value
        n_children = len(children)
        solutions: list = []
        fragments = [None] * n_direct
        deep_nodes = tuple(descendants(obj)) if n_deep else ()

        def finish(frame, used, deep_fragments):
            base_key = tuple(fragments) + deep_fragments
            if not has_rest:
                solutions.append((frame, base_key))
                return
            rest_members = tuple(
                children[i]
                for i in range(n_children)
                if not (used >> i) & 1
            )
            env = frame
            if rest_register is not None:
                env = _bind(frame, rest_register, rest_members)
                if env is None:
                    return
            if not n_conds:
                solutions.append((env, base_key))
                return

            def assign_conditions(index, cond_used, frame2, cond_frags):
                if index == n_conds:
                    solutions.append((frame2, base_key + cond_frags))
                    return
                matcher = rest_cond_matchers[index]
                for member_index, member in enumerate(rest_members):
                    if (cond_used >> member_index) & 1:
                        continue
                    for found, nested in matcher(member, frame2):
                        assign_conditions(
                            index + 1,
                            cond_used | (1 << member_index),
                            found,
                            cond_frags + ((member_index, nested),),
                        )

            assign_conditions(0, 0, env, ())

        def apply_deep(index, frame, deep_fragments, used):
            if index == n_deep:
                finish(frame, used, deep_fragments)
                return
            matcher = deep_matchers[index]
            for node_index, node in enumerate(deep_nodes):
                for found, nested in matcher(node, frame):
                    apply_deep(
                        index + 1,
                        found,
                        deep_fragments + ((node_index, nested),),
                        used,
                    )

        def assign(index, used, frame):
            if index == n_direct:
                apply_deep(0, frame, (), used)
                return
            position, matcher, label_const = ordered[index]
            for child_index in range(n_children):
                if (used >> child_index) & 1:
                    continue
                child = children[child_index]
                if label_const is not None and child.label != label_const:
                    continue
                for found, nested in matcher(child, frame):
                    fragments[position] = (child_index, nested)
                    assign(index + 1, used | (1 << child_index), found)

        assign(0, 0, frame)
        if needs_sort and len(solutions) > 1:
            solutions.sort(key=_solution_key)
        return solutions

    return match_set


def _solution_key(solution: tuple) -> tuple:
    return solution[1]


def _compile_value_step(pattern: Pattern, layout: SlotLayout):
    """Lower the value slot to ``(obj, frame) -> [(frame, key), ...]``."""
    value = pattern.value
    if isinstance(value, SetPattern):
        return _compile_set(value, layout)
    if isinstance(value, Const):
        want = value.value
        if isinstance(want, str):
            def step_const_str(obj, frame, _w=want):
                if obj.type != SET_TYPE and obj.value == _w:
                    return [(frame, _NO_KEY)]
                return _EMPTY

            return step_const_str

        def step_const(obj, frame, _w=want):
            if obj.type != SET_TYPE and values_equal(_w, obj.value):
                return [(frame, _NO_KEY)]
            return _EMPTY

        return step_const
    if isinstance(value, Var):
        if value.is_anonymous:
            return lambda obj, frame: [(frame, _NO_KEY)]
        register = layout.register(value.name)

        def step_var(obj, frame, _r=register):
            # obj.value is the children tuple for sets, the atom otherwise
            bound = obj.value
            current = frame[_r]
            if current is UNBOUND:
                return [
                    (frame[:_r] + (bound,) + frame[_r + 1:], _NO_KEY)
                ]
            if current is bound or values_equal(current, bound):
                return [(frame, _NO_KEY)]
            return _EMPTY

        return step_var
    if isinstance(value, Param):
        name = value.name

        def step_param(obj, frame, _n=name):
            raise _param_error(_n)

        return step_param
    message = f"cannot match value term {value!r}"

    def step_unknown(obj, frame, _m=message):
        raise MSLMatchError(_m)

    return step_unknown


def _compile_matcher(pattern: Pattern, layout: SlotLayout):
    """Lower a whole pattern; returns ``(match_keyed, label_const)``.

    ``match_keyed(obj, frame)`` returns the keyed solution list for one
    object; ``label_const`` is the pattern's string label constant (for
    caller-side prefiltering), or ``None``.
    """
    steps = []
    if pattern.oid is not None:
        if isinstance(pattern.oid, Const):
            text = str(pattern.oid.value)

            def step_oid_const(obj, frame, _t=text):
                return frame if obj.oid.text == _t else None

            steps.append(step_oid_const)
        else:
            oid_test = _compile_term_test(pattern.oid, layout)

            def step_oid(obj, frame, _t=oid_test):
                return _t(obj.oid, frame)

            steps.append(step_oid)

    label_const = None
    if isinstance(pattern.label, Const) and isinstance(
        pattern.label.value, str
    ):
        label_const = pattern.label.value
    label_test = _compile_term_test(pattern.label, layout)

    def step_label(obj, frame, _t=label_test):
        return _t(obj.label, frame)

    steps.append(step_label)

    if pattern.type is not None:
        type_test = _compile_term_test(pattern.type, layout)

        def step_type(obj, frame, _t=type_test):
            return _t(obj.type, frame)

        steps.append(step_type)

    if pattern.object_var is not None and not pattern.object_var.is_anonymous:
        register = layout.register(pattern.object_var.name)

        def step_object_var(obj, frame, _r=register):
            current = frame[_r]
            if current is UNBOUND:
                return frame[:_r] + (obj,) + frame[_r + 1:]
            if current is obj or values_equal(current, obj):
                return frame
            return None

        steps.append(step_object_var)

    value_step = _compile_value_step(pattern, layout)

    if len(steps) == 1 and label_const is not None:
        # the hottest shape: <label ...> — one string compare gates all
        def match_label_gated(obj, frame, _l=label_const, _v=value_step):
            if obj.label != _l:
                return _EMPTY
            return _v(obj, frame)

        return match_label_gated, label_const

    step_chain = tuple(steps)

    def match_keyed(obj, frame, _steps=step_chain, _v=value_step):
        for step in _steps:
            frame = step(obj, frame)
            if frame is None:
                return _EMPTY
        return _v(obj, frame)

    return match_keyed, label_const


# ---------------------------------------------------------------------------
# public compiled objects
# ---------------------------------------------------------------------------


class CompiledPattern:
    """One pattern lowered to closures over a :class:`SlotLayout`."""

    __slots__ = ("pattern", "layout", "match_keyed", "label_const")

    def __init__(
        self, pattern: Pattern, layout: SlotLayout | None = None
    ) -> None:
        self.pattern = pattern
        self.layout = layout or SlotLayout(
            sorted(pattern_variables(pattern))
        )
        self.match_keyed, self.label_const = _compile_matcher(
            pattern, self.layout
        )

    def match_frames(self, obj: OEMObject, frame: tuple | None = None):
        """All solution frames for one object (choice keys dropped)."""
        if frame is None:
            frame = self.layout.empty_frame
        solutions = self.match_keyed(obj, frame)
        if not solutions:
            return _EMPTY
        return [found for found, _key in solutions]

    def match(
        self, obj: OEMObject, bindings: Bindings = EMPTY_BINDINGS
    ) -> list[Bindings]:
        """Drop-in equivalent of :func:`repro.msl.matcher.match_pattern`."""
        frame = self.layout.seed(bindings)
        return [
            self.layout.to_bindings(found, bindings)
            for found, _key in self.match_keyed(obj, frame)
        ]

    def match_forest(
        self,
        roots: Iterable[OEMObject],
        bindings: Bindings = EMPTY_BINDINGS,
        any_level: bool = False,
    ) -> list[Bindings]:
        """Equivalent of :func:`~repro.msl.matcher.match_against_forest`."""
        frame = self.layout.seed(bindings)
        candidates = walk(roots) if any_level else roots
        results: list[Bindings] = []
        layout = self.layout
        match_keyed = self.match_keyed
        for obj in candidates:
            for found, _key in match_keyed(obj, frame):
                results.append(layout.to_bindings(found, bindings))
        return results

    def match_all(
        self,
        roots: Iterable[OEMObject],
        bindings: Bindings = EMPTY_BINDINGS,
    ) -> list[Bindings]:
        """Equivalent of :func:`~repro.msl.matcher.match_all` (deduped)."""
        frame = self.layout.seed(bindings)
        names = self.layout.names
        fast = not len(bindings)
        seen: set[tuple] = set()
        results: list[Bindings] = []
        for obj in roots:
            for found, _key in self.match_keyed(obj, frame):
                if fast:
                    # layout names are sorted, so this is Bindings.key()
                    key = tuple(
                        (name, value_key(value))
                        for name, value in zip(names, found)
                        if value is not UNBOUND
                    )
                    if key not in seen:
                        seen.add(key)
                        results.append(self.layout.to_bindings(found))
                else:
                    env = self.layout.to_bindings(found, bindings)
                    key = env.key()
                    if key not in seen:
                        seen.add(key)
                        results.append(env)
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledPattern({self.pattern})"


def run_row_extractor(
    compiled: CompiledPattern,
    rows: Iterable[tuple],
    object_position: int,
    carried_positions: Sequence[int],
    carried_checks: Sequence[tuple[int, int]],
    new_registers: Sequence[object],
    add,
    column_name: str,
    error_class: type[Exception] = TypeError,
) -> int:
    """Drive a compiled pattern over raw binding-table row tuples.

    The extractor hot loop, shared between ``ExtractorNode`` and the
    fused pipeline (:mod:`repro.mediator.pipeline`) so both reuse the
    same slot-layout frames (``layout.empty_frame``) and emit identical
    output rows in identical order.  ``carried_checks`` is a sequence
    of ``(row position, register)`` pairs: a pattern variable that
    collides with a carried column is a join, and the row survives only
    when the freshly bound value agrees with the carried one.
    ``new_registers`` maps each output column to its register (or
    ``None`` when the pattern never binds it).  Returns the number of
    matches; rows whose object cell is not an OEM object raise
    ``error_class``.
    """
    empty = compiled.layout.empty_frame
    match_keyed = compiled.match_keyed
    matches = 0
    carried_positions = tuple(carried_positions)
    carried_checks = tuple(carried_checks)
    new_registers = tuple(new_registers)
    for row in rows:
        obj = row[object_position]
        if not isinstance(obj, OEMObject):
            raise error_class(
                f"extractor column {column_name!r} holds non-object"
                f" {obj!r}"
            )
        for frame, _key in match_keyed(obj, empty):
            consistent = True
            for row_position, register in carried_checks:
                bound = frame[register]
                if bound is not UNBOUND and not values_equal(
                    bound, row[row_position]
                ):
                    consistent = False
                    break
            if not consistent:
                continue
            matches += 1
            add(
                tuple(row[p] for p in carried_positions)
                + tuple(
                    frame[r]
                    if r is not None and frame[r] is not UNBOUND
                    else None
                    for r in new_registers
                )
            )
    return matches


# ---------------------------------------------------------------------------
# compiled head instantiation
# ---------------------------------------------------------------------------
#
# The same compile/run split applied to virtual-object creation: a rule
# head is lowered once, per slot layout, to closures that read binding
# rows positionally — no per-row ``Bindings`` dict, no per-row AST
# dispatch, and (for the exact atom types) no re-validation inside
# ``OEMObject.__init__``.  Used by the fused pipeline's constructor
# stage (:mod:`repro.mediator.pipeline`); the unfused ``ConstructorNode``
# keeps :func:`repro.msl.substitute.instantiate_head_item` as the
# interpretive reference, mirroring the compiled/interpretive pattern
# split above.
#
# Equivalence contract: same objects (labels, types, checked values),
# same oid-generator call sequence (parent before children, items in
# written order), same duplicate elimination, same errors with the same
# messages.  ``compile_head_item`` returns ``None`` for any head shape
# outside the compiled subset, and the caller falls back to the
# interpretive builder.

#: Exact Python types whose inferred OEM type and checked value are
#: knowable without running ``infer_type``/``_check_atom``.  Keyed by
#: exact type, so ``bool``-before-``int`` needs no ordering and
#: subclasses fall through to the reference constructor.
_ATOM_TYPE_NAMES: dict[type, str] = {
    str: "string",
    bool: "boolean",
    int: "integer",
    float: "real",  # float(v) is v for exact floats: no coercion needed
    bytes: "bytes",
    type(None): "null",
}

_object_setattr = object.__setattr__


def _fast_atom(label: str, type_: str, value: object, oid: Oid) -> OEMObject:
    """Construct a validated-by-construction atomic OEM object."""
    obj = OEMObject.__new__(OEMObject)
    _object_setattr(obj, "oid", oid)
    _object_setattr(obj, "label", label)
    _object_setattr(obj, "type", type_)
    _object_setattr(obj, "value", value)
    _object_setattr(obj, "_hash", None)
    _object_setattr(obj, "_skey", None)
    return obj


def _fast_set(
    label: str, children: tuple[OEMObject, ...], oid: Oid
) -> OEMObject:
    """Construct a set object whose members are known OEM objects."""
    obj = OEMObject.__new__(OEMObject)
    _object_setattr(obj, "oid", oid)
    _object_setattr(obj, "label", label)
    _object_setattr(obj, "type", SET_TYPE)
    _object_setattr(obj, "value", children)
    _object_setattr(obj, "_hash", None)
    _object_setattr(obj, "_skey", None)
    return obj


def _compile_slot_read(term: Term, index: Mapping[str, int]):
    """Accessor ``row -> slot value`` for a head slot term, or ``None``.

    ``None`` means the term is a shape (anonymous variable, variable
    outside the row layout, parameter...) whose reference behaviour is
    an error — the whole item then falls back to the interpretive
    builder, which raises the canonical message.
    """
    if isinstance(term, Const):
        value = term.value
        return lambda row, _v=value: _v
    if isinstance(term, Var) and not term.is_anonymous:
        position = index.get(term.name)
        if position is None:
            return None
        return lambda row, _p=position: row[_p]
    return None


def _compile_head_oid(term: Term | None, index: Mapping[str, int]):
    """Lower a head oid term to ``(row, oidgen) -> Oid``, or ``None``."""
    if term is None:
        def generated(row, oidgen):
            # reference: _head_oid returns oidgen() (or None, in which
            # case OEMObject.__init__ allocates a fresh synthetic oid)
            return oidgen() if oidgen is not None else fresh_oid()

        return generated
    if isinstance(term, SemOidTerm):
        readers = []
        for arg in term.args:
            reader = _compile_slot_read(arg, index)
            if reader is None:
                return None
            readers.append((arg, reader))
        readers_t = tuple(readers)
        functor = term.functor

        def semantic(row, oidgen, _readers=readers_t, _f=functor):
            args = []
            for arg, reader in _readers:
                value = reader(row)
                if isinstance(value, (OEMObject, tuple)):
                    raise MSLInstantiationError(
                        f"semantic oid argument {arg} bound to a non-atom"
                    )
                args.append(value)
            return SemanticOid(_f, args)

        return semantic
    reader = _compile_slot_read(term, index)
    if reader is None:
        return None

    def plain(row, oidgen, _r=reader, _t=term):
        value = _r(row)
        if isinstance(value, Oid):
            return value
        if isinstance(value, str):
            return Oid(value)
        raise MSLInstantiationError(
            f"head oid term {_t} bound to {value!r}"
        )

    return plain


def _compile_build_object(pattern: Pattern, index: Mapping[str, int]):
    """Lower a head pattern to ``(row, oidgen) -> OEMObject``.

    Returns ``None`` when any slot is outside the compiled subset.
    Slot evaluation order matches ``_build_object``: label, oid (the
    oid-generator tick), then value — with set children built in
    written order, each taking its own generator ticks.
    """
    label_term = pattern.label
    if isinstance(label_term, Const):
        if not isinstance(label_term.value, str):
            return None
        get_label = lambda row, _l=label_term.value: _l  # noqa: E731
    elif isinstance(label_term, Var) and not label_term.is_anonymous:
        position = index.get(label_term.name)
        if position is None:
            return None

        def get_label(row, _p=position):
            label = row[_p]
            if not isinstance(label, str):
                raise MSLInstantiationError(
                    f"head label evaluated to non-string {label!r}"
                )
            return label

    else:
        return None

    build_oid = _compile_head_oid(pattern.oid, index)
    if build_oid is None:
        return None

    type_ = None
    if pattern.type is not None:
        if not (
            isinstance(pattern.type, Const)
            and isinstance(pattern.type.value, str)
        ):
            return None
        type_ = pattern.type.value

    value = pattern.value
    if isinstance(value, SetPattern):
        if value.rest is not None and value.rest.conditions:
            return None
        items: list = list(value.items)
        if value.rest is not None:
            # head semantics: '{a b | R}' splices R's members in
            items.append(VarItem(value.rest.var))
        specs = []
        for item in items:
            if isinstance(item, PatternItem):
                if item.descendant:
                    return None
                child = _compile_build_object(item.pattern, index)
                if child is None:
                    return None
                specs.append((None, child))
            elif isinstance(item, VarItem):
                var = item.var
                if var.is_anonymous:
                    return None
                position = index.get(var.name)
                if position is None:
                    return None
                specs.append((var, position))
            else:  # pragma: no cover - no other item kinds exist
                return None
        specs_t = tuple(specs)

        def build_set(
            row, oidgen, _gl=get_label, _go=build_oid, _specs=specs_t
        ):
            label = _gl(row)
            oid = _go(row, oidgen)
            children: list[OEMObject] = []
            for var, payload in _specs:
                if var is None:
                    children.append(payload(row, oidgen))
                    continue
                bound = row[payload]
                if isinstance(bound, tuple):
                    children.extend(bound)
                elif isinstance(bound, OEMObject):
                    children.append(bound)
                else:
                    raise MSLInstantiationError(
                        f"variable {var} inside head braces is bound to"
                        f" the atom {bound!r}; only objects and sets can"
                        f" be spliced in"
                    )
            return _fast_set(
                label, tuple(eliminate_duplicates(children)), oid
            )

        return build_set
    if isinstance(value, Const):
        const_value = value.value

        def build_const(
            row, oidgen, _gl=get_label, _go=build_oid,
            _v=const_value, _t=type_,
        ):
            label = _gl(row)
            oid = _go(row, oidgen)
            return OEMObject(label, _v, _t, oid)

        return build_const
    if isinstance(value, Var):
        if value.is_anonymous:
            return None
        position = index.get(value.name)
        if position is None:
            return None

        def build_var(
            row, oidgen, _gl=get_label, _go=build_oid,
            _p=position, _t=type_,
        ):
            label = _gl(row)
            oid = _go(row, oidgen)
            bound = row[_p]
            if _t is None:
                cls = type(bound)
                if cls is OEMObject:
                    return _fast_set(label, (bound,), oid)
                if cls is not tuple:
                    type_name = _ATOM_TYPE_NAMES.get(cls)
                    if type_name is not None:
                        return _fast_atom(label, type_name, bound, oid)
            # subclasses, Oids, declared types: reference dispatch
            if isinstance(bound, tuple):
                return OEMObject(label, bound, SET_TYPE, oid)
            if isinstance(bound, OEMObject):
                return OEMObject(label, (bound,), SET_TYPE, oid)
            if isinstance(bound, Oid):
                return OEMObject(label, bound.text, _t, oid)
            return OEMObject(label, bound, _t, oid)

        return build_var
    return None


def compile_head_item(item: object, columns: Sequence[str]):
    """Lower one rule-head item to ``build(row, oidgen) -> [OEMObject]``.

    ``columns`` names the positions of the binding rows the builder will
    read (the constructor's projected column layout).  Returns ``None``
    when the item uses a shape outside the compiled subset; callers fall
    back to :func:`repro.msl.substitute.instantiate_head_item`, whose
    output the compiled builder reproduces bit-for-bit otherwise.
    """
    index = {name: i for i, name in enumerate(columns)}
    if isinstance(item, Var):
        if item.is_anonymous:
            return None
        position = index.get(item.name)
        if position is None:
            return None

        def build_bare(row, oidgen, _p=position, _i=item):
            bound = row[_p]
            if isinstance(bound, OEMObject):
                return [bound]
            if isinstance(bound, tuple):
                return list(bound)
            raise MSLInstantiationError(
                f"head variable {_i} bound to atom {bound!r};"
                f" wrap it in a pattern to emit it as an object"
            )

        return build_bare
    if isinstance(item, Pattern):
        build = _compile_build_object(item, index)
        if build is None:
            return None

        def build_pattern(row, oidgen, _b=build):
            return [_b(row, oidgen)]

        return build_pattern
    return None


class CompiledRule:
    """One rule lowered to a register machine over frames.

    ``evaluate`` replicates :func:`repro.msl.evaluate.evaluate_rule`
    bit-for-bit: same condition schedule, same solution order, same
    projection/dedup, same oid-generator call sequence, same errors.
    """

    __slots__ = (
        "rule",
        "registry",
        "layout",
        "steps",
        "leftover",
        "projection",
    )

    def __init__(
        self, rule: Rule, registry: "ExternalRegistry | None" = None
    ) -> None:
        self.rule = rule
        self.registry = registry
        names: set[str] = set(head_variables(rule.head))
        for condition in rule.tail:
            names |= condition_variables(condition)
        layout = SlotLayout(sorted(names))
        self.layout = layout

        ordered, leftover = schedule_conditions(rule, registry)
        self.leftover = tuple(leftover)
        steps = []
        for condition in ordered:
            if isinstance(condition, PatternCondition):
                steps.append(self._compile_pattern_step(condition, layout))
            elif isinstance(condition, ExternalCall):
                steps.append(self._compile_external_step(condition, layout))
            else:
                steps.append(
                    self._compile_comparison_step(condition, layout)
                )
        self.steps = tuple(steps)

        needed = head_variables(rule.head)
        self.projection = tuple(
            sorted((name, layout.index[name]) for name in needed)
        )

    @staticmethod
    def _compile_pattern_step(
        condition: PatternCondition, layout: SlotLayout
    ):
        compiled = CompiledPattern(condition.pattern, layout)
        match_keyed = compiled.match_keyed
        source = condition.source

        def step(frames, forests, registry, _m=match_keyed, _s=source):
            forest = forests.get(_s)
            if forest is None:
                raise MSLSemanticError(
                    f"no data supplied for source {_s!r}"
                )
            out = []
            append = out.append
            for frame in frames:
                for obj in forest:
                    for found, _key in _m(obj, frame):
                        append(found)
            return out

        return step

    @staticmethod
    def _compile_external_step(call: ExternalCall, layout: SlotLayout):
        # argument plan: ('const', value) | ('var', register) | ('skip',)
        specs = []
        for arg in call.args:
            if isinstance(arg, Const):
                specs.append(("const", arg.value))
            elif isinstance(arg, Var) and not arg.is_anonymous:
                specs.append(("var", layout.register(arg.name)))
            else:
                specs.append(("skip", None))
        specs_t = tuple(specs)
        name = call.name

        def step(frames, forests, registry, _specs=specs_t, _n=name):
            out = []
            for frame in frames:
                args: list[object] = []
                available: list[bool] = []
                for kind, payload in _specs:
                    if kind == "const":
                        args.append(payload)
                        available.append(True)
                    elif kind == "var":
                        bound = frame[payload]
                        if bound is UNBOUND:
                            args.append(None)
                            available.append(False)
                        else:
                            args.append(bound)
                            available.append(True)
                    else:
                        args.append(None)
                        available.append(False)
                for full in registry.evaluate(_n, args, available):
                    result = frame
                    for (kind, payload), value in zip(_specs, full):
                        if kind == "var":
                            result = _bind(result, payload, value)
                            if result is None:
                                break
                        elif kind == "const" and payload != value:
                            result = None
                            break
                    if result is not None:
                        out.append(result)
            return out

        return step

    @staticmethod
    def _compile_comparison_step(
        comparison: Comparison, layout: SlotLayout
    ):
        def accessor(term: Term):
            if isinstance(term, Const):
                value = term.value
                return lambda frame, _v=value: (True, _v)
            if isinstance(term, Var) and not term.is_anonymous:
                register = layout.register(term.name)

                def read(frame, _r=register):
                    value = frame[_r]
                    if value is UNBOUND:
                        return False, None
                    return True, value

                return read
            return lambda frame: (False, None)

        left = accessor(comparison.left)
        right = accessor(comparison.right)
        op = comparison.op

        def step(
            frames, forests, registry,
            _l=left, _r=right, _op=op, _c=comparison,
        ):
            out = []
            for frame in frames:
                left_ok, left_value = _l(frame)
                right_ok, right_value = _r(frame)
                if not (left_ok and right_ok):
                    raise MSLSemanticError(
                        f"comparison {_c} evaluated with unbound operand"
                    )
                if compare_values(_op, left_value, right_value):
                    out.append(frame)
            return out

        return step

    def evaluate(
        self,
        forests: Mapping[str | None, Sequence[OEMObject]],
        registry: "ExternalRegistry | None" = None,
        oidgen: OidGenerator | None = None,
        check: bool = True,
    ) -> list[OEMObject]:
        """Drop-in equivalent of :func:`repro.msl.evaluate.evaluate_rule`."""
        if check:
            from repro.msl.analysis import check_rule

            check_rule(self.rule)
        if registry is None:
            registry = self.registry
        frames: list[tuple] = [self.layout.empty_frame]
        for step in self.steps:
            frames = step(frames, forests, registry)
            if not frames:
                return []
        if self.leftover:
            raise unschedulable_error(self.leftover)

        # footnote 3: project onto head variables, eliminate duplicated
        # bindings, then create an object per surviving binding set
        projection = self.projection
        seen: set[tuple] = set()
        survivors: list[tuple] = []
        for frame in frames:
            key = tuple(
                (name, value_key(frame[register]))
                for name, register in projection
                if frame[register] is not UNBOUND
            )
            if key not in seen:
                seen.add(key)
                survivors.append(frame)

        generator = oidgen or OidGenerator("&v")
        head = self.rule.head
        objects: list[OEMObject] = []
        from repro.msl.substitute import instantiate_head_item

        for frame in survivors:
            env = _bindings_from(
                {
                    name: frame[register]
                    for name, register in projection
                    if frame[register] is not UNBOUND
                }
            )
            for item in head:
                objects.extend(
                    instantiate_head_item(item, env, generator)
                )
        return eliminate_duplicates(objects)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledRule({self.rule})"


# ---------------------------------------------------------------------------
# memoization
# ---------------------------------------------------------------------------


class CompileCache:
    """Bounded memo of compiled rules and patterns (FIFO eviction).

    Both the mediator and each wrapper hold one: repeated queries (and
    every re-execution of a cached plan) skip compilation entirely.
    AST nodes are frozen dataclasses, so rules and patterns hash by
    structure; an unhashable rule (never produced by the parser) simply
    bypasses the cache.
    """

    __slots__ = (
        "registry",
        "max_entries",
        "_rules",
        "_patterns",
        "_lock",
        "hits",
        "misses",
    )

    def __init__(
        self,
        registry: "ExternalRegistry | None" = None,
        max_entries: int = 512,
    ) -> None:
        self.registry = registry
        self.max_entries = max_entries
        self._rules: dict[Rule, CompiledRule] = {}
        self._patterns: dict[Pattern, CompiledPattern] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def rule(self, rule: Rule) -> CompiledRule:
        try:
            with self._lock:
                cached = self._rules.get(rule)
                if cached is not None:
                    self.hits += 1
                    return cached
                self.misses += 1
        except TypeError:
            return CompiledRule(rule, self.registry)
        compiled = CompiledRule(rule, self.registry)
        with self._lock:
            if len(self._rules) >= self.max_entries:
                self._rules.pop(next(iter(self._rules)))
            self._rules[rule] = compiled
        return compiled

    def pattern(self, pattern: Pattern) -> CompiledPattern:
        try:
            with self._lock:
                cached = self._patterns.get(pattern)
                if cached is not None:
                    self.hits += 1
                    return cached
                self.misses += 1
        except TypeError:
            return CompiledPattern(pattern)
        compiled = CompiledPattern(pattern)
        with self._lock:
            if len(self._patterns) >= self.max_entries:
                self._patterns.pop(next(iter(self._patterns)))
            self._patterns[pattern] = compiled
        return compiled

    def stats(self) -> dict[str, int]:
        return {
            "rules": len(self._rules),
            "patterns": len(self._patterns),
            "hits": self.hits,
            "misses": self.misses,
        }


def compile_pattern(
    pattern: Pattern, layout: SlotLayout | None = None
) -> CompiledPattern:
    """Compile one pattern (convenience constructor)."""
    return CompiledPattern(pattern, layout)


def compile_rule(
    rule: Rule, registry: "ExternalRegistry | None" = None
) -> CompiledRule:
    """Compile one rule (convenience constructor)."""
    return CompiledRule(rule, registry)


def evaluate_rule_compiled(
    rule: Rule,
    forests: Mapping[str | None, Sequence[OEMObject]],
    registry: "ExternalRegistry | None" = None,
    oidgen: OidGenerator | None = None,
    check: bool = True,
    cache: CompileCache | None = None,
) -> list[OEMObject]:
    """Compiled drop-in for :func:`repro.msl.evaluate.evaluate_rule`."""
    compiled = cache.rule(rule) if cache is not None else CompiledRule(
        rule, registry
    )
    return compiled.evaluate(forests, registry, oidgen, check=check)

"""Static analysis of MSL rules: safety checks and variable plumbing.

* :func:`check_rule` — the static legality rules (safe head variables,
  no bare variables in tail braces, ...); wrappers and the mediator call
  it before accepting a specification or query.
* :func:`rename_apart` — footnote 7 of the paper: "Before we match a
  query with one or more rules we must rename the variables that appear
  in the query and the rules, so that no two rules, or a query and a
  rule, have identically named variables."
* :func:`condition_variables` — which variables a tail condition can
  bind; the optimizer uses this to order joins and place external calls.
"""

from __future__ import annotations

from typing import Callable

from repro.msl.ast import (
    Comparison,
    Condition,
    ExternalCall,
    HeadItem,
    Pattern,
    PatternCondition,
    PatternItem,
    RestSpec,
    Rule,
    SemOidTerm,
    SetPattern,
    Term,
    Var,
    VarItem,
)
from repro.msl.errors import MSLSemanticError
from repro.msl.substitute import (
    head_variables,
    pattern_variables,
    term_variables,
)

__all__ = [
    "condition_variables",
    "tail_variables",
    "check_rule",
    "check_specification_rule",
    "rename_apart",
    "rename_rule_variables",
]


def condition_variables(condition: Condition) -> set[str]:
    """Named variables occurring in one tail condition."""
    if isinstance(condition, PatternCondition):
        return pattern_variables(condition.pattern)
    if isinstance(condition, ExternalCall):
        names: set[str] = set()
        for arg in condition.args:
            names |= term_variables(arg)
        return names
    if isinstance(condition, Comparison):
        return term_variables(condition.left) | term_variables(condition.right)
    raise TypeError(f"unknown condition type {condition!r}")


def tail_variables(rule: Rule) -> set[str]:
    """Named variables occurring anywhere in the tail."""
    names: set[str] = set()
    for condition in rule.tail:
        names |= condition_variables(condition)
    return names


def _walk_set_patterns(
    pattern: Pattern, visit: Callable[[SetPattern], None]
) -> None:
    value = pattern.value
    if isinstance(value, SetPattern):
        visit(value)
        for item in value.items:
            if isinstance(item, PatternItem):
                _walk_set_patterns(item.pattern, visit)
        if value.rest is not None:
            for condition in value.rest.conditions:
                _walk_set_patterns(condition, visit)


def check_rule(rule: Rule, is_query: bool = False) -> None:
    """Raise :class:`MSLSemanticError` if ``rule`` is statically illegal.

    Checks:

    * the tail is non-empty and pattern conditions dominate (a rule of
      only comparisons derives nothing);
    * every named head variable also occurs in the tail (*safety* — the
      classical range-restriction condition);
    * bare variables inside *tail* braces are rejected (they have head
      semantics only);
    * a Rest variable is not bound twice in the same rule tail unless the
      occurrences are genuinely joinable (we allow repeated use; what is
      rejected is a rest variable also used as an object variable);
    * comparisons and external calls must not be the only place a head
      variable appears... (externals *can* bind free arguments, so they
      do count as binding occurrences).
    """
    if not rule.tail:
        raise MSLSemanticError(f"rule has an empty tail: {rule}")
    if not any(isinstance(c, PatternCondition) for c in rule.tail):
        raise MSLSemanticError(
            f"rule tail has no object patterns: {rule}"
        )

    head_vars = head_variables(rule.head)
    bindable = tail_variables(rule)
    unsafe = head_vars - bindable
    if unsafe:
        raise MSLSemanticError(
            f"unsafe head variable(s) {sorted(unsafe)}: they never occur"
            f" in the rule tail ({rule})"
        )

    object_vars: set[str] = set()
    rest_vars: set[str] = set()

    def check_tail_braces(setpat: SetPattern) -> None:
        for item in setpat.items:
            if isinstance(item, VarItem):
                raise MSLSemanticError(
                    f"bare variable {item.var} inside tail braces; bare"
                    f" variables are only meaningful in rule heads"
                )
        if setpat.rest is not None and not setpat.rest.var.is_anonymous:
            rest_vars.add(setpat.rest.var.name)

    for condition in rule.tail:
        if not isinstance(condition, PatternCondition):
            continue
        pattern = condition.pattern
        if pattern.object_var is not None and not pattern.object_var.is_anonymous:
            object_vars.add(pattern.object_var.name)
        _walk_set_patterns(pattern, check_tail_braces)
        # an inner object variable also counts
        def collect_inner(setpat: SetPattern) -> None:
            for item in setpat.items:
                if isinstance(item, PatternItem):
                    inner = item.pattern.object_var
                    if inner is not None and not inner.is_anonymous:
                        object_vars.add(inner.name)

        _walk_set_patterns(pattern, collect_inner)

    clashes = object_vars & rest_vars
    if clashes:
        raise MSLSemanticError(
            f"variable(s) {sorted(clashes)} used both as object variable"
            f" and as Rest variable in the same rule"
        )

    if is_query:
        for item in rule.head:
            if isinstance(item, Pattern):
                continue
            if isinstance(item, Var) and item.is_anonymous:
                raise MSLSemanticError(
                    "the anonymous variable cannot be a query head"
                )


def check_specification_rule(rule: Rule) -> None:
    """Checks for mediator-specification rules (heads must be patterns).

    The bare-variable head form (``JC :- JC:<...>``) is a *query*
    convenience; a specification rule must say what its view objects look
    like.
    """
    check_rule(rule)
    for item in rule.head:
        if isinstance(item, Var):
            raise MSLSemanticError(
                f"specification rule heads must be object patterns, found"
                f" bare variable {item}"
            )


# ---------------------------------------------------------------------------
# renaming apart
# ---------------------------------------------------------------------------


def _rename_term(term: Term | None, rename: dict[str, str]) -> Term | None:
    if term is None:
        return None
    if isinstance(term, Var):
        if term.is_anonymous:
            return term
        return Var(rename.setdefault(term.name, term.name))
    if isinstance(term, SemOidTerm):
        return SemOidTerm(
            term.functor,
            tuple(_rename_term(a, rename) for a in term.args),  # type: ignore[misc]
        )
    return term


def _rename_pattern(pattern: Pattern, rename: dict[str, str]) -> Pattern:
    value = pattern.value
    if isinstance(value, SetPattern):
        items: list[PatternItem | VarItem] = []
        for item in value.items:
            if isinstance(item, PatternItem):
                items.append(
                    PatternItem(
                        _rename_pattern(item.pattern, rename), item.descendant
                    )
                )
            else:
                renamed = _rename_term(item.var, rename)
                assert isinstance(renamed, Var)
                items.append(VarItem(renamed))
        rest = value.rest
        if rest is not None:
            rest_var = _rename_term(rest.var, rename)
            assert isinstance(rest_var, Var)
            rest = RestSpec(
                rest_var,
                tuple(_rename_pattern(c, rename) for c in rest.conditions),
            )
        new_value: Term | SetPattern = SetPattern(tuple(items), rest)
    else:
        renamed_value = _rename_term(value, rename)
        assert renamed_value is not None
        new_value = renamed_value

    object_var = pattern.object_var
    if object_var is not None and not object_var.is_anonymous:
        renamed_ov = _rename_term(object_var, rename)
        assert isinstance(renamed_ov, Var)
        object_var = renamed_ov

    label = _rename_term(pattern.label, rename)
    assert label is not None
    return Pattern(
        label=label,
        value=new_value,
        type=_rename_term(pattern.type, rename),
        oid=_rename_term(pattern.oid, rename),
        object_var=object_var,
    )


def rename_rule_variables(rule: Rule, mapper: Callable[[str], str]) -> Rule:
    """Rename every named variable in ``rule`` through ``mapper``."""

    class _MapperDict(dict):
        """Lazily applies ``mapper`` on first sight of each variable."""

        def setdefault(self, key: str, default: str = "") -> str:  # type: ignore[override]
            if key not in self:
                self[key] = mapper(key)
            return self[key]

    rename: dict[str, str] = _MapperDict()

    head: list[HeadItem] = []
    for item in rule.head:
        if isinstance(item, Var):
            renamed = _rename_term(item, rename)
            assert isinstance(renamed, Var)
            head.append(renamed)
        else:
            head.append(_rename_pattern(item, rename))

    tail: list[Condition] = []
    for condition in rule.tail:
        if isinstance(condition, PatternCondition):
            tail.append(
                PatternCondition(
                    _rename_pattern(condition.pattern, rename),
                    condition.source,
                )
            )
        elif isinstance(condition, ExternalCall):
            tail.append(
                ExternalCall(
                    condition.name,
                    tuple(_rename_term(a, rename) for a in condition.args),  # type: ignore[arg-type]
                )
            )
        else:
            left = _rename_term(condition.left, rename)
            right = _rename_term(condition.right, rename)
            assert left is not None and right is not None
            tail.append(Comparison(left, condition.op, right))
    return Rule(tuple(head), tuple(tail))


def rename_apart(rule: Rule, suffix: str) -> Rule:
    """Give every variable of ``rule`` a fresh name carrying ``suffix``.

    >>> from repro.msl.parser import parse_rule
    >>> str(rename_apart(parse_rule('<a X> :- <b X>@s'), '_1'))
    '<a X_1> :- <b X_1>@s'
    """
    return rename_rule_variables(rule, lambda name: f"{name}{suffix}")

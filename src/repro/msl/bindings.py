"""Binding environments for MSL evaluation.

A *binding* maps variable names to bound values.  Values can be

* atoms (strings, numbers, booleans) — from atomic value slots and
  label/type/oid slots;
* :class:`~repro.oem.model.OEMObject` — from object variables (``X:<...>``);
* tuples of ``OEMObject`` — from set-valued slots and Rest variables;
* :class:`~repro.oem.oid.Oid` — from oid slots.

Bindings are immutable; ``bind`` and ``merge`` return new environments or
``None`` on conflict.  Conflicts use *structural* value equality (object
identity is not meaningful across sources), which is what lets the same
variable ``R`` join a value from ``whois`` against a label from ``cs``.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.oem.compare import structural_key
from repro.oem.model import OEMObject
from repro.oem.oid import Oid

__all__ = ["Bindings", "EMPTY_BINDINGS", "values_equal", "value_key"]


def value_key(value: object) -> object:
    """A hashable canonical key for a bound value.

    Object sets are canonicalised as frozen bags of structural keys, so
    two Rest bindings with the same members in different order compare
    equal.
    """
    kind = type(value)
    if kind is str:  # the dominant case in dedup keys
        return ("atom", "str", value)
    if kind is int:
        return ("atom", "int", value)
    if isinstance(value, OEMObject):
        return ("obj", structural_key(value))
    if isinstance(value, tuple):
        counts: dict[object, int] = {}
        for member in value:
            key = structural_key(member)
            counts[key] = counts.get(key, 0) + 1
        return ("set", frozenset(counts.items()))
    if isinstance(value, Oid):
        return ("oid", value.text)
    if isinstance(value, bool):
        return ("atom", "bool", value)
    return ("atom", type(value).__name__, value)


def values_equal(a: object, b: object) -> bool:
    """Structural equality of two bound values."""
    if a is b:
        return True
    # atoms of compatible numeric types compare by ==
    if isinstance(a, (str, int, float, bool)) and isinstance(
        b, (str, int, float, bool)
    ):
        if isinstance(a, bool) != isinstance(b, bool):
            return False
        return a == b
    return value_key(a) == value_key(b)


class Bindings:
    """An immutable variable-to-value environment."""

    __slots__ = ("_map",)

    def __init__(self, mapping: Mapping[str, object] | None = None) -> None:
        object.__setattr__(self, "_map", dict(mapping or {}))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Bindings is immutable")

    # -- queries --------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._map

    def __getitem__(self, name: str) -> object:
        return self._map[name]

    def get(self, name: str, default: object = None) -> object:
        return self._map.get(name, default)

    def __len__(self) -> int:
        return len(self._map)

    def __iter__(self) -> Iterator[str]:
        return iter(self._map)

    def items(self) -> Iterator[tuple[str, object]]:
        return iter(self._map.items())

    def variables(self) -> frozenset[str]:
        return frozenset(self._map)

    # -- construction -----------------------------------------------------

    def bind(self, name: str, value: object) -> "Bindings | None":
        """Bind ``name`` to ``value``.

        Returns a new environment, or ``None`` when ``name`` is already
        bound to a different value (the match fails).  Binding the
        anonymous variable ``_`` is a no-op that always succeeds.
        """
        if name == "_":
            return self
        existing = self._map.get(name, _MISSING)
        if existing is not _MISSING:
            return self if values_equal(existing, value) else None
        new_map = dict(self._map)
        new_map[name] = value
        return Bindings(new_map)

    def merge(self, other: "Bindings") -> "Bindings | None":
        """Combine two environments; ``None`` if they disagree anywhere.

        This is the paper's "matching of bindings" step: a binding from
        ``whois`` matches a binding from ``cs`` "if the two bindings agree
        on the values assigned to common variables".
        """
        small, large = (
            (self, other) if len(self) <= len(other) else (other, self)
        )
        merged = dict(large._map)
        for name, value in small._map.items():
            existing = merged.get(name, _MISSING)
            if existing is _MISSING:
                merged[name] = value
            elif not values_equal(existing, value):
                return None
        return Bindings(merged)

    def project(self, names: frozenset[str] | set[str]) -> "Bindings":
        """Restrict to ``names`` (the paper's footnote 3 projection)."""
        return Bindings(
            {k: v for k, v in self._map.items() if k in names}
        )

    def key(self) -> tuple:
        """A hashable key for duplicate elimination of bindings."""
        return tuple(
            sorted(
                ((name, value_key(value)) for name, value in self._map.items()),
                key=lambda pair: pair[0],
            )
        )

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bindings):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={value!r}" for name, value in sorted(self._map.items())
        )
        return f"Bindings({inner})"


_MISSING = object()

#: The empty environment, shared.
EMPTY_BINDINGS = Bindings()

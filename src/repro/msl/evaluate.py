"""A naive, obviously-correct MSL rule evaluator.

This is the **reference semantics** of MSL in this codebase:

1. match every tail pattern against the forest of its source, producing
   binding sets;
2. merge binding sets on common variables (the paper's "matching of
   bindings");
3. evaluate external predicates and comparisons as soon as their
   required arguments are bound;
4. project onto the head variables, eliminate duplicate bindings
   (footnote 3), instantiate the head, and eliminate structurally
   duplicated objects.

Wrappers use it to answer the MSL queries the mediator ships to them,
and the test-suite uses it as the oracle against which the optimized
datamerge engine is checked.  It enumerates the full cross product of
pattern bindings before filtering, so it is intentionally *slow* — the
benchmarks quantify exactly how much the MSI's planned execution wins.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.external.registry import ExternalRegistry
from repro.msl.analysis import check_rule, condition_variables
from repro.msl.ast import (
    Comparison,
    Condition,
    Const,
    ExternalCall,
    PatternCondition,
    Rule,
    Term,
    Var,
)
from repro.msl.bindings import EMPTY_BINDINGS, Bindings
from repro.msl.errors import MSLSemanticError
from repro.msl.matcher import match_against_forest
from repro.msl.substitute import head_variables, instantiate_head_item
from repro.oem.compare import eliminate_duplicates
from repro.oem.model import OEMObject
from repro.oem.oid import OidGenerator

__all__ = [
    "evaluate_rule",
    "evaluate_comparison",
    "compare_values",
    "term_value",
    "schedule_conditions",
]


def term_value(term: Term, bindings: Bindings) -> tuple[bool, object]:
    """Evaluate a term to (is_bound, value)."""
    if isinstance(term, Const):
        return True, term.value
    if isinstance(term, Var):
        if term.is_anonymous or term.name not in bindings:
            return False, None
        return True, bindings[term.name]
    return False, None


def evaluate_comparison(comparison: Comparison, bindings: Bindings) -> bool:
    """Truth of a fully-bound comparison; type mismatches are false.

    >>> from repro.msl.parser import parse_rule
    """
    left_ok, left = term_value(comparison.left, bindings)
    right_ok, right = term_value(comparison.right, bindings)
    if not (left_ok and right_ok):
        raise MSLSemanticError(
            f"comparison {comparison} evaluated with unbound operand"
        )
    return compare_values(comparison.op, left, right)


def compare_values(op: str, left: object, right: object) -> bool:
    """Truth of ``left op right`` over bound atoms (mismatches are false)."""
    if op == "=":
        return _atoms_comparable(left, right) and left == right
    if op == "!=":
        return not (_atoms_comparable(left, right) and left == right)
    if not _atoms_ordered(left, right):
        return False
    if op == "<":
        return left < right  # type: ignore[operator]
    if op == "<=":
        return left <= right  # type: ignore[operator]
    if op == ">":
        return left > right  # type: ignore[operator]
    if op == ">=":
        return left >= right  # type: ignore[operator]
    raise MSLSemanticError(f"unknown comparison operator {op!r}")


def _atoms_comparable(left: object, right: object) -> bool:
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return True
    return type(left) is type(right)


def _atoms_ordered(left: object, right: object) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        return False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return True
    return isinstance(left, str) and isinstance(right, str)


def _expand_pattern(
    condition: PatternCondition,
    bindings_list: list[Bindings],
    forests: Mapping[str | None, Sequence[OEMObject]],
) -> list[Bindings]:
    forest = forests.get(condition.source)
    if forest is None:
        raise MSLSemanticError(
            f"no data supplied for source {condition.source!r}"
        )
    expanded: list[Bindings] = []
    for env in bindings_list:
        expanded.extend(match_against_forest(condition.pattern, forest, env))
    return expanded


def _expand_external(
    call: ExternalCall,
    bindings_list: list[Bindings],
    registry: ExternalRegistry,
) -> list[Bindings]:
    expanded: list[Bindings] = []
    for env in bindings_list:
        args: list[object] = []
        available: list[bool] = []
        for arg in call.args:
            bound, value = term_value(arg, env)
            args.append(value)
            available.append(bound)
        for full in registry.evaluate(call.name, args, available):
            result: Bindings | None = env
            for arg, value in zip(call.args, full):
                if isinstance(arg, Var) and not arg.is_anonymous:
                    result = result.bind(arg.name, value)
                    if result is None:
                        break
                elif isinstance(arg, Const) and arg.value != value:
                    result = None
                    break
            if result is not None:
                expanded.append(result)
    return expanded


def _ready(condition: Condition, bound: set[str], registry: ExternalRegistry | None) -> bool:
    """Can ``condition`` be evaluated once ``bound`` variables are known?"""
    if isinstance(condition, PatternCondition):
        return True
    if isinstance(condition, Comparison):
        return condition_variables(condition) <= bound
    if isinstance(condition, ExternalCall):
        if registry is None:
            return False
        availability = [
            isinstance(arg, Const)
            or (isinstance(arg, Var) and arg.name in bound)
            for arg in condition.args
        ]
        try:
            registry.select(condition.name, availability)
        except Exception:
            return False
        return True
    return False


def schedule_conditions(
    rule: Rule, registry: ExternalRegistry | None = None
) -> tuple[list[Condition], list[Condition]]:
    """Static evaluation order for a rule tail.

    The choice at every step depends only on which variables are bound
    so far — never on data — so the whole order can be fixed before any
    matching happens (the compiled backend precomputes it once per
    rule).  Returns ``(ordered, unschedulable)``: conditions in
    evaluation order, then any leftovers no binding order can ready
    (external predicates lacking an implementation for the available
    adornment).  Leftovers only become an *error* if evaluation of the
    ordered prefix still has live bindings — an empty intermediate
    result short-circuits first, exactly as the interpretive loop did.
    """
    remaining: list[Condition] = list(rule.tail)
    ordered: list[Condition] = []
    bound: set[str] = set()
    while remaining:
        chosen_index = None
        # prefer the first evaluable non-pattern condition (cheap filters
        # first), otherwise the first pattern condition
        for index, condition in enumerate(remaining):
            if not isinstance(condition, PatternCondition) and _ready(
                condition, bound, registry
            ):
                chosen_index = index
                break
        if chosen_index is None:
            for index, condition in enumerate(remaining):
                if isinstance(condition, PatternCondition):
                    chosen_index = index
                    break
        if chosen_index is None:
            return ordered, remaining
        condition = remaining.pop(chosen_index)
        ordered.append(condition)
        bound |= condition_variables(condition)
    return ordered, []


def unschedulable_error(leftover: Sequence[Condition]) -> MSLSemanticError:
    return MSLSemanticError(
        f"cannot schedule remaining conditions"
        f" {[str(c) for c in leftover]}: external predicates"
        f" lack implementations for the available bindings"
    )


def evaluate_rule(
    rule: Rule,
    forests: Mapping[str | None, Sequence[OEMObject]],
    registry: ExternalRegistry | None = None,
    oidgen: OidGenerator | None = None,
    check: bool = True,
) -> list[OEMObject]:
    """Evaluate ``rule`` against per-source forests; return head objects.

    ``forests`` maps source names (as written after ``@``) to their
    top-level objects; the key ``None`` serves conditions with no
    ``@source`` annotation (queries already addressed to one source).

    >>> from repro.msl.parser import parse_rule
    >>> from repro.oem import parse_oem
    >>> data = parse_oem("<&1, person, set, {&2}> <&2, name, string, 'Ann'>")
    >>> rule = parse_rule("<who N> :- <person {<name N>}>@s")
    >>> [o.value for o in evaluate_rule(rule, {'s': data})]
    ['Ann']
    """
    if check:
        check_rule(rule)

    ordered, leftover = schedule_conditions(rule, registry)
    bindings_list: list[Bindings] = [EMPTY_BINDINGS]
    for condition in ordered:
        if isinstance(condition, PatternCondition):
            bindings_list = _expand_pattern(condition, bindings_list, forests)
        elif isinstance(condition, ExternalCall):
            assert registry is not None
            bindings_list = _expand_external(condition, bindings_list, registry)
        else:
            bindings_list = [
                env
                for env in bindings_list
                if evaluate_comparison(condition, env)
            ]
        if not bindings_list:
            return []
    if leftover:
        raise unschedulable_error(leftover)

    # footnote 3: project onto head variables, eliminate duplicated
    # bindings, then create an object per surviving binding set
    needed = frozenset(head_variables(rule.head))
    seen: set[tuple] = set()
    projected: list[Bindings] = []
    for env in bindings_list:
        proj = env.project(needed)
        key = proj.key()
        if key not in seen:
            seen.add(key)
            projected.append(proj)

    generator = oidgen or OidGenerator("&v")
    objects: list[OEMObject] = []
    for env in projected:
        for item in rule.head:
            objects.extend(instantiate_head_item(item, env, generator))
    return eliminate_duplicates(objects)

"""Substitution and head instantiation.

Two related jobs live here:

* **syntactic substitution** — replacing variables/parameters inside
  patterns with constants (used by the view expander when applying
  unifier mappings, and by parameterized-query plan nodes when filling
  ``$param`` slots);
* **head instantiation** — the paper's "creation of the virtual
  objects": given a rule head and a binding environment, build the OEM
  objects the rule derives, including the *flattening* semantics ("when
  variables that have been bound to sets appear inside curly braces {}
  in a rule head, the first level of their contents is flattened out").
"""

from __future__ import annotations

from typing import Mapping

from repro.msl.ast import (
    Const,
    HeadItem,
    Param,
    Pattern,
    PatternItem,
    RestSpec,
    SemOidTerm,
    SetPattern,
    Term,
    Var,
    VarItem,
)
from repro.msl.bindings import Bindings
from repro.msl.errors import MSLInstantiationError
from repro.oem.model import OEMObject, SET_TYPE
from repro.oem.oid import Oid, OidGenerator, SemanticOid

__all__ = [
    "subst_term",
    "subst_pattern",
    "instantiate_params_in_pattern",
    "instantiate_head_item",
    "head_variables",
    "term_variables",
    "pattern_variables",
]


# ---------------------------------------------------------------------------
# variable inventory
# ---------------------------------------------------------------------------


def term_variables(term: Term | None) -> set[str]:
    """Named (non-anonymous) variables occurring in a term."""
    if isinstance(term, Var) and not term.is_anonymous:
        return {term.name}
    if isinstance(term, SemOidTerm):
        names: set[str] = set()
        for arg in term.args:
            names |= term_variables(arg)
        return names
    return set()


def pattern_variables(pattern: Pattern) -> set[str]:
    """All named variables occurring anywhere in ``pattern``."""
    names = term_variables(pattern.oid)
    names |= term_variables(pattern.label)
    names |= term_variables(pattern.type)
    if pattern.object_var is not None and not pattern.object_var.is_anonymous:
        names.add(pattern.object_var.name)
    value = pattern.value
    if isinstance(value, SetPattern):
        for item in value.items:
            if isinstance(item, PatternItem):
                names |= pattern_variables(item.pattern)
            elif isinstance(item, VarItem) and not item.var.is_anonymous:
                names.add(item.var.name)
        if value.rest is not None:
            if not value.rest.var.is_anonymous:
                names.add(value.rest.var.name)
            for condition in value.rest.conditions:
                names |= pattern_variables(condition)
    else:
        names |= term_variables(value)
    return names


def head_variables(head: tuple[HeadItem, ...]) -> set[str]:
    """Named variables occurring in a rule head."""
    names: set[str] = set()
    for item in head:
        if isinstance(item, Var):
            if not item.is_anonymous:
                names.add(item.name)
        else:
            names |= pattern_variables(item)
    return names


# ---------------------------------------------------------------------------
# syntactic substitution
# ---------------------------------------------------------------------------


def _atom_to_term(value: object) -> Term:
    if isinstance(value, Oid):
        return Const(value.text)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return Const(value)
    raise MSLInstantiationError(
        f"cannot substitute non-atomic value {value!r} into a pattern slot"
    )


def subst_term(term: Term | None, bindings: Bindings) -> Term | None:
    """Replace bound variables in ``term`` with constants.

    Unbound variables are left untouched; set-bound variables cannot be
    expressed as constants and raise.
    """
    if term is None:
        return None
    if isinstance(term, Var):
        if term.is_anonymous or term.name not in bindings:
            return term
        return _atom_to_term(bindings[term.name])
    if isinstance(term, SemOidTerm):
        return SemOidTerm(
            term.functor,
            tuple(subst_term(arg, bindings) for arg in term.args),  # type: ignore[misc]
        )
    return term


def subst_pattern(pattern: Pattern, bindings: Bindings) -> Pattern:
    """Apply ``bindings`` to every slot of ``pattern`` (syntactically).

    Variables bound to atoms become constants; variables bound to sets or
    objects are left in place (they cannot appear as constants — the view
    expander handles them via definitions instead).
    """

    def safe(term: Term | None) -> Term | None:
        if term is None or isinstance(term, (Const, Param)):
            return term
        if isinstance(term, Var):
            if term.is_anonymous or term.name not in bindings:
                return term
            value = bindings[term.name]
            if isinstance(value, (OEMObject, tuple)):
                return term
            return _atom_to_term(value)
        if isinstance(term, SemOidTerm):
            return SemOidTerm(
                term.functor, tuple(safe(a) for a in term.args)  # type: ignore[misc]
            )
        return term

    value = pattern.value
    if isinstance(value, SetPattern):
        new_items: list[PatternItem | VarItem] = []
        for item in value.items:
            if isinstance(item, PatternItem):
                new_items.append(
                    PatternItem(
                        subst_pattern(item.pattern, bindings), item.descendant
                    )
                )
            else:
                new_items.append(item)
        new_rest = value.rest
        if new_rest is not None and new_rest.conditions:
            new_rest = RestSpec(
                new_rest.var,
                tuple(
                    subst_pattern(c, bindings) for c in new_rest.conditions
                ),
            )
        new_value: Term | SetPattern = SetPattern(tuple(new_items), new_rest)
    else:
        substituted = safe(value)
        assert substituted is not None
        new_value = substituted

    return Pattern(
        label=safe(pattern.label) or pattern.label,
        value=new_value,
        type=safe(pattern.type),
        oid=safe(pattern.oid),
        object_var=pattern.object_var,
    )


def instantiate_params_in_pattern(
    pattern: Pattern, params: Mapping[str, object]
) -> Pattern:
    """Fill every ``$name`` placeholder from ``params``.

    Used by the parameterized-query node (Section 3.4): "the values for
    query parameters $R, $LN, and $FN are taken from ... the incoming
    table".
    """

    def fill(term: Term | None) -> Term | None:
        if isinstance(term, Param):
            if term.name not in params:
                raise MSLInstantiationError(
                    f"no value supplied for parameter ${term.name}"
                )
            return _atom_to_term(params[term.name])
        if isinstance(term, SemOidTerm):
            return SemOidTerm(
                term.functor, tuple(fill(a) for a in term.args)  # type: ignore[misc]
            )
        return term

    value = pattern.value
    if isinstance(value, SetPattern):
        items: list[PatternItem | VarItem] = []
        for item in value.items:
            if isinstance(item, PatternItem):
                items.append(
                    PatternItem(
                        instantiate_params_in_pattern(item.pattern, params),
                        item.descendant,
                    )
                )
            else:
                items.append(item)
        rest = value.rest
        if rest is not None and rest.conditions:
            rest = RestSpec(
                rest.var,
                tuple(
                    instantiate_params_in_pattern(c, params)
                    for c in rest.conditions
                ),
            )
        new_value: Term | SetPattern = SetPattern(tuple(items), rest)
    else:
        filled = fill(value)
        assert filled is not None
        new_value = filled

    return Pattern(
        label=fill(pattern.label) or pattern.label,
        value=new_value,
        type=fill(pattern.type),
        oid=fill(pattern.oid),
        object_var=pattern.object_var,
    )


# ---------------------------------------------------------------------------
# head instantiation (virtual-object creation)
# ---------------------------------------------------------------------------


def _slot_atom(term: Term, bindings: Bindings, slot: str) -> object:
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        if term.is_anonymous or term.name not in bindings:
            raise MSLInstantiationError(
                f"unbound variable {term} in head {slot} slot"
            )
        return bindings[term.name]
    raise MSLInstantiationError(f"invalid head {slot} term {term}")


def _head_oid(
    term: Term | None, bindings: Bindings, oidgen: OidGenerator | None
) -> Oid | None:
    if term is None:
        return oidgen() if oidgen is not None else None
    if isinstance(term, SemOidTerm):
        args = []
        for arg in term.args:
            value = _slot_atom(arg, bindings, "oid")
            if isinstance(value, (OEMObject, tuple)):
                raise MSLInstantiationError(
                    f"semantic oid argument {arg} bound to a non-atom"
                )
            args.append(value)
        return SemanticOid(term.functor, args)
    value = _slot_atom(term, bindings, "oid")
    if isinstance(value, Oid):
        return value
    if isinstance(value, str):
        return Oid(value)
    raise MSLInstantiationError(f"head oid term {term} bound to {value!r}")


def instantiate_head_item(
    item: HeadItem,
    bindings: Bindings,
    oidgen: OidGenerator | None = None,
) -> list[OEMObject]:
    """Create the OEM object(s) a head item describes under ``bindings``.

    A bare head variable yields the object(s) it is bound to (the query
    form ``JC :- JC:<...>``).  A pattern yields one constructed object.
    """
    if isinstance(item, Var):
        if item.is_anonymous or item.name not in bindings:
            raise MSLInstantiationError(f"unbound head variable {item}")
        value = bindings[item.name]
        if isinstance(value, OEMObject):
            return [value]
        if isinstance(value, tuple):
            return list(value)
        raise MSLInstantiationError(
            f"head variable {item} bound to atom {value!r};"
            f" wrap it in a pattern to emit it as an object"
        )
    return [_build_object(item, bindings, oidgen)]


def _build_object(
    pattern: Pattern, bindings: Bindings, oidgen: OidGenerator | None
) -> OEMObject:
    label = _slot_atom(pattern.label, bindings, "label")
    if not isinstance(label, str):
        raise MSLInstantiationError(
            f"head label evaluated to non-string {label!r}"
        )
    oid = _head_oid(pattern.oid, bindings, oidgen)
    type_ = None
    if pattern.type is not None:
        declared = _slot_atom(pattern.type, bindings, "type")
        if not isinstance(declared, str):
            raise MSLInstantiationError(
                f"head type evaluated to non-string {declared!r}"
            )
        type_ = declared

    value = pattern.value
    if isinstance(value, SetPattern):
        # OEM set values are sets: structurally equal members collapse
        # (e.g. a 'year' object arriving from both sources via Rest1 and
        # Rest2 appears once in the integrated object)
        from repro.oem.compare import eliminate_duplicates

        children = eliminate_duplicates(
            _build_children(value, bindings, oidgen)
        )
        return OEMObject(label, children, SET_TYPE, oid)
    if isinstance(value, Const):
        return OEMObject(label, value.value, type_, oid)
    if isinstance(value, Var):
        if value.is_anonymous or value.name not in bindings:
            raise MSLInstantiationError(
                f"unbound variable {value} in head value slot"
            )
        bound = bindings[value.name]
        if isinstance(bound, tuple):
            return OEMObject(label, bound, SET_TYPE, oid)
        if isinstance(bound, OEMObject):
            return OEMObject(label, (bound,), SET_TYPE, oid)
        if isinstance(bound, Oid):
            return OEMObject(label, bound.text, type_, oid)
        return OEMObject(label, bound, type_, oid)
    raise MSLInstantiationError(f"invalid head value term {value}")


def _build_children(
    setpat: SetPattern, bindings: Bindings, oidgen: OidGenerator | None
) -> list[OEMObject]:
    """Children of a head set pattern, with one-level flattening."""
    items: list[PatternItem | VarItem] = list(setpat.items)
    if setpat.rest is not None:
        # in a head, '{a b | R}' means the same as '{a b R}': splice the
        # remaining members in (attached conditions make no sense here)
        if setpat.rest.conditions:
            raise MSLInstantiationError(
                "conditions on a Rest variable are not allowed in a rule"
                " head"
            )
        items.append(VarItem(setpat.rest.var))
    children: list[OEMObject] = []
    for item in items:
        if isinstance(item, PatternItem):
            if item.descendant:
                raise MSLInstantiationError(
                    "a descendant item ('..') is not allowed in a rule head"
                )
            children.append(_build_object(item.pattern, bindings, oidgen))
            continue
        # VarItem: flatten sets one level, include objects directly
        var = item.var
        if var.is_anonymous or var.name not in bindings:
            raise MSLInstantiationError(
                f"unbound variable {var} inside head braces"
            )
        bound = bindings[var.name]
        if isinstance(bound, tuple):
            children.extend(bound)
        elif isinstance(bound, OEMObject):
            children.append(bound)
        else:
            raise MSLInstantiationError(
                f"variable {var} inside head braces is bound to the atom"
                f" {bound!r}; only objects and sets can be spliced in"
            )
    return children

"""Pattern matching: MSL patterns against OEM object structures.

This implements the paper's "process of creating the virtual objects ...
as pattern matching": tail patterns are matched against the object
structure of a source, "trying to bind the variables to object
components".  The matcher produces a *stream of binding environments* —
one per way the pattern embeds into the data.

Semantics implemented here:

* a set pattern's explicit items match **distinct** direct sub-objects
  (an injective embedding); extra sub-objects are simply ignored unless a
  ``| Rest`` variable is present, in which case Rest binds to exactly the
  sub-objects not consumed by the explicit items;
* rest *conditions* (``| Rest:{<year 3>}``, produced by condition
  pushdown) must match injectively among the rest's members without
  removing them from the Rest binding;
* descendant items (``.. <p>``) match at any depth below the enclosing
  object and do not consume a direct child (so they never affect Rest);
* constants in any slot filter; variables in any slot bind — including
  the **label** slot, which is what resolves schematic discrepancies;
* the anonymous variable ``_`` matches anything and binds nothing.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.msl.ast import (
    Const,
    Param,
    Pattern,
    PatternItem,
    SemOidTerm,
    SetPattern,
    Term,
    Var,
    VarItem,
)
from repro.msl.bindings import EMPTY_BINDINGS, Bindings, values_equal
from repro.msl.errors import MSLMatchError
from repro.oem.model import OEMObject
from repro.oem.oid import SemanticOid
from repro.oem.traverse import descendants

__all__ = [
    "match_pattern",
    "match_against_forest",
    "match_all",
]


# ---------------------------------------------------------------------------
# slot matching
# ---------------------------------------------------------------------------


def _match_slot(
    term: Term, actual: object, bindings: Bindings
) -> Bindings | None:
    """Match one non-value slot term against an actual atom."""
    if isinstance(term, Const):
        return bindings if values_equal(term.value, actual) else None
    if isinstance(term, Var):
        return bindings.bind(term.name, actual)
    if isinstance(term, Param):
        raise MSLMatchError(
            f"parameter ${term.name} in a pattern being matched; "
            f"instantiate the template first"
        )
    if isinstance(term, SemOidTerm):
        # a semantic-oid term in a tail oid slot matches an object whose
        # oid is the corresponding SemanticOid
        return _match_semantic_oid(term, actual, bindings)
    raise MSLMatchError(f"cannot match slot term {term!r}")


def _match_semantic_oid(
    term: SemOidTerm, actual: object, bindings: Bindings
) -> Bindings | None:
    if not isinstance(actual, SemanticOid):
        return None
    if actual.functor != term.functor or len(actual.args) != len(term.args):
        return None
    env: Bindings | None = bindings
    for arg_term, arg_value in zip(term.args, actual.args):
        env = _match_slot(arg_term, arg_value, env)
        if env is None:
            return None
    return env


# ---------------------------------------------------------------------------
# pattern matching
# ---------------------------------------------------------------------------


def match_pattern(
    pattern: Pattern, obj: OEMObject, bindings: Bindings = EMPTY_BINDINGS
) -> Iterator[Bindings]:
    """All ways ``pattern`` matches the single object ``obj``.

    >>> from repro.msl.parser import parse_pattern
    >>> from repro.oem import parse_one
    >>> o = parse_one("<&1, name, string, 'Fred'>")
    >>> [dict(b.items()) for b in match_pattern(parse_pattern('<name N>'), o)]
    [{'N': 'Fred'}]
    """
    env: Bindings | None = bindings
    # oid slot
    if pattern.oid is not None:
        if isinstance(pattern.oid, Const):
            if str(pattern.oid.value) != obj.oid.text:
                return
        else:
            env = _match_slot(pattern.oid, obj.oid, env)
            if env is None:
                return
    # label slot
    env = _match_slot(pattern.label, obj.label, env)
    if env is None:
        return
    # type slot
    if pattern.type is not None:
        env = _match_slot(pattern.type, obj.type, env)
        if env is None:
            return
    # object variable
    if pattern.object_var is not None and not pattern.object_var.is_anonymous:
        env = env.bind(pattern.object_var.name, obj)
        if env is None:
            return
    # value slot
    value = pattern.value
    if isinstance(value, SetPattern):
        if not obj.is_set:
            return
        yield from _match_set(value, obj, env)
        return
    if isinstance(value, Const):
        if obj.is_atomic and values_equal(value.value, obj.value):
            yield env
        return
    if isinstance(value, Var):
        bound = obj.children if obj.is_set else obj.value
        result = env.bind(value.name, bound)
        if result is not None:
            yield result
        return
    if isinstance(value, Param):
        raise MSLMatchError(
            f"parameter ${value.name} in a pattern being matched; "
            f"instantiate the template first"
        )
    raise MSLMatchError(f"cannot match value term {value!r}")


def _match_set(
    setpat: SetPattern, obj: OEMObject, bindings: Bindings
) -> Iterator[Bindings]:
    """Match a ``{...}`` pattern against the children of set object ``obj``."""
    children = obj.children
    direct: list[Pattern] = []
    deep: list[Pattern] = []
    for item in setpat.items:
        if isinstance(item, VarItem):
            raise MSLMatchError(
                f"bare variable {item.var} inside a set pattern is only"
                f" meaningful in rule heads"
            )
        if isinstance(item, PatternItem):
            (deep if item.descendant else direct).append(item.pattern)

    def assign_direct(
        index: int, used: frozenset[int], env: Bindings
    ) -> Iterator[tuple[frozenset[int], Bindings]]:
        """Injective assignment of direct item patterns to children."""
        if index == len(direct):
            yield used, env
            return
        item_pattern = direct[index]
        for child_index, child in enumerate(children):
            if child_index in used:
                continue
            if isinstance(item_pattern.label, Const) and (
                item_pattern.label.value != child.label
            ):
                continue
            for extended in match_pattern(item_pattern, child, env):
                yield from assign_direct(
                    index + 1, used | {child_index}, extended
                )

    def apply_deep(
        index: int, env: Bindings
    ) -> Iterator[Bindings]:
        """Descendant items: match anywhere below ``obj``, non-consuming."""
        if index == len(deep):
            yield env
            return
        for node in descendants(obj):
            for extended in match_pattern(deep[index], node, env):
                yield from apply_deep(index + 1, extended)

    for used, env in assign_direct(0, frozenset(), bindings):
        for env2 in apply_deep(0, env):
            if setpat.rest is None:
                yield env2
                continue
            rest_members = tuple(
                child
                for child_index, child in enumerate(children)
                if child_index not in used
            )
            rest_env = (
                env2
                if setpat.rest.var.is_anonymous
                else env2.bind(setpat.rest.var.name, rest_members)
            )
            if rest_env is None:
                continue
            yield from _check_rest_conditions(
                setpat.rest.conditions, rest_members, rest_env
            )


def _check_rest_conditions(
    conditions: tuple[Pattern, ...],
    members: tuple[OEMObject, ...],
    bindings: Bindings,
) -> Iterator[Bindings]:
    """Pushed-down conditions on a Rest variable.

    Each condition must match a distinct member of the rest set; members
    stay in the Rest binding (conditions filter, they do not consume).
    """
    if not conditions:
        yield bindings
        return

    def assign(
        index: int, used: frozenset[int], env: Bindings
    ) -> Iterator[Bindings]:
        if index == len(conditions):
            yield env
            return
        for member_index, member in enumerate(members):
            if member_index in used:
                continue
            for extended in match_pattern(conditions[index], member, env):
                yield from assign(index + 1, used | {member_index}, extended)

    yield from assign(0, frozenset(), bindings)


# ---------------------------------------------------------------------------
# forest-level matching
# ---------------------------------------------------------------------------


def match_against_forest(
    pattern: Pattern,
    roots: Iterable[OEMObject],
    bindings: Bindings = EMPTY_BINDINGS,
    any_level: bool = False,
) -> Iterator[Bindings]:
    """Match ``pattern`` against the top-level objects of a source.

    With ``any_level=True`` the pattern is tried against every object at
    any depth (the wildcard search of Section 2's "Other Features") —
    "the client is not restricted to query the object structure starting
    from top-level objects".
    """
    if any_level:
        from repro.oem.traverse import walk

        candidates: Iterable[OEMObject] = walk(roots)
    else:
        candidates = roots
    for obj in candidates:
        yield from match_pattern(pattern, obj, bindings)


def match_all(
    pattern: Pattern,
    roots: Iterable[OEMObject],
    bindings: Bindings = EMPTY_BINDINGS,
) -> list[Bindings]:
    """Eager list version of :func:`match_against_forest` (deduplicated)."""
    seen: set[tuple] = set()
    results: list[Bindings] = []
    for env in match_against_forest(pattern, roots, bindings):
        key = env.key()
        if key not in seen:
            seen.add(key)
            results.append(env)
    return results

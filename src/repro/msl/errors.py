"""Error hierarchy for the MSL language layer."""

from __future__ import annotations

__all__ = [
    "MSLError",
    "MSLSyntaxError",
    "MSLSemanticError",
    "MSLMatchError",
    "MSLInstantiationError",
]


class MSLError(Exception):
    """Base class for all MSL-layer errors."""


class MSLSyntaxError(MSLError):
    """MSL text failed to parse.

    Carries the offset and (line, column) of the offending token when
    known, so callers can point at the problem in a specification file.
    """

    def __init__(
        self, message: str, position: int = -1, line: int = -1, column: int = -1
    ) -> None:
        location = ""
        if line >= 1:
            location = f" (line {line}, column {column})"
        elif position >= 0:
            location = f" (offset {position})"
        super().__init__(message + location)
        self.position = position
        self.line = line
        self.column = column


class MSLSemanticError(MSLError):
    """A parsed rule or query violates MSL's static rules.

    Examples: an unsafe head variable that never occurs in the tail, a
    Rest variable used twice in the same set pattern, an external
    predicate call with no registered implementation for any adornment.
    """


class MSLMatchError(MSLError):
    """Raised for malformed matching requests (not for match failures —
    a pattern that simply matches nothing yields an empty binding stream)."""


class MSLInstantiationError(MSLError):
    """A rule head could not be instantiated from a set of bindings.

    Typical cause: a variable in label position bound to a non-string, or
    an unbound head variable surviving analysis (an internal error).
    """

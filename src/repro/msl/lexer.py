"""Tokenizer for MSL text.

Token kinds:

``punct``    ``< > { } ( ) , | @ ; .. :- :``
``compare``  ``= != <= >= > <`` (note ``<``/``>`` double as pattern
             delimiters; the lexer emits them as ``punct`` and the parser
             decides by context)
``string``   quoted with ``'`` or ``"`` (backslash escapes)
``number``   integer or real
``word``     identifiers; the parser classifies variables (capitalised)
             vs. constants (lowercase) via :func:`~repro.msl.ast.is_variable_name`
``oid``      ``&name``
``param``    ``$name``

Comments run from ``//`` or ``#`` to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.msl.errors import MSLSyntaxError

__all__ = ["Token", "tokenize"]


@dataclass(frozen=True, slots=True)
class Token:
    kind: str
    text: str
    value: object
    pos: int
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


_SIMPLE_PUNCT = set("<>{}(),|@;")


def _is_digit(ch: str) -> bool:
    """ASCII digits only: str.isdigit() accepts characters (e.g. '²')
    that int() rejects."""
    return "0" <= ch <= "9"

# multi-character operators, longest first
_MULTI = [":-", "..", "!=", "<=", ">="]


def tokenize(text: str) -> list[Token]:
    """Tokenize MSL source ``text``.

    >>> [t.kind for t in tokenize("<name N>")]
    ['punct', 'word', 'word', 'punct']
    """
    tokens: list[Token] = []
    i, n = 0, len(text)
    line, line_start = 1, 0

    def location(pos: int) -> tuple[int, int]:
        return line, pos - line_start + 1

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch.isspace():
            i += 1
            continue
        if ch == "#" or text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
            continue

        ln, col = location(i)

        matched_multi = False
        for op in _MULTI:
            if text.startswith(op, i):
                kind = "compare" if op in ("!=", "<=", ">=") else "punct"
                # '<=' only counts as compare when not opening a pattern;
                # the parser resolves that by context, so emit compare.
                tokens.append(Token(kind, op, op, i, ln, col))
                i += len(op)
                matched_multi = True
                break
        if matched_multi:
            continue

        if ch == "=":
            tokens.append(Token("compare", "=", "=", i, ln, col))
            i += 1
            continue
        if ch == ":":
            tokens.append(Token("punct", ":", ":", i, ln, col))
            i += 1
            continue
        if ch in _SIMPLE_PUNCT:
            tokens.append(Token("punct", ch, ch, i, ln, col))
            i += 1
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            parts: list[str] = []
            while j < n:
                cj = text[j]
                if cj == "\\" and j + 1 < n:
                    parts.append(text[j + 1])
                    j += 2
                    continue
                if cj == quote:
                    break
                if cj == "\n":
                    raise MSLSyntaxError(
                        "newline inside string literal", i, ln, col
                    )
                parts.append(cj)
                j += 1
            else:
                raise MSLSyntaxError("unterminated string literal", i, ln, col)
            tokens.append(
                Token("string", text[i : j + 1], "".join(parts), i, ln, col)
            )
            i = j + 1
            continue
        if ch == "&":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                raise MSLSyntaxError("bare '&' is not an oid", i, ln, col)
            tokens.append(Token("oid", text[i:j], text[i + 1 : j], i, ln, col))
            i = j
            continue
        if ch == "$":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                raise MSLSyntaxError("bare '$' is not a parameter", i, ln, col)
            tokens.append(
                Token("param", text[i:j], text[i + 1 : j], i, ln, col)
            )
            i = j
            continue
        if _is_digit(ch) or (
            ch == "-" and i + 1 < n and _is_digit(text[i + 1])
        ):
            j = i + 1
            seen_dot = seen_exp = False
            while j < n:
                cj = text[j]
                if _is_digit(cj):
                    j += 1
                elif (
                    cj == "."
                    and not seen_dot
                    and not seen_exp
                    and j + 1 < n
                    and _is_digit(text[j + 1])
                ):
                    seen_dot = True
                    j += 1
                elif (
                    cj in "eE"
                    and not seen_exp
                    and j + 1 < n
                    and (
                        _is_digit(text[j + 1])
                        or (
                            text[j + 1] in "+-"
                            and j + 2 < n
                            and _is_digit(text[j + 2])
                        )
                    )
                ):
                    seen_exp = True
                    j += 2 if text[j + 1] in "+-" else 1
                else:
                    break
            raw = text[i:j]
            value: object = (
                float(raw) if seen_dot or seen_exp else int(raw)
            )
            tokens.append(Token("number", raw, value, i, ln, col))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            tokens.append(Token("word", word, word, i, ln, col))
            i = j
            continue
        raise MSLSyntaxError(f"unexpected character {ch!r}", i, ln, col)
    return tokens

"""Recursive-descent parser for MSL.

Grammar (informally; ``[x]`` optional, ``x*`` repetition):

.. code-block:: text

    spec      := (rule [';'] | extdecl [';'])*
    extdecl   := 'EXT' name '(' adword (',' adword)* ')' 'BY' name
    adword    := 'bound' | 'free' | 'b' | 'f'
    rule      := head ':-' tail
    head      := headitem+
    headitem  := VAR | pattern
    tail      := conjunct (('AND' | ',') conjunct)*
    conjunct  := [VAR ':'] pattern ['@' name]
               | name '(' term (',' term)* ')'
               | term cmp term
    pattern   := '<' field+ '>'            -- 1 to 4 fields, elision rules
    field     := oidterm | term | setpat
    setpat    := '{' item* ['|' rest] '}'
    item      := ['..'] pattern | VAR
    rest      := VAR [':' '{' pattern* '}']
    oidterm   := '&'name | '&'name '(' term (',' term)* ')'
    term      := VAR | constant | '$'name
    cmp       := '=' | '!=' | '<' | '<=' | '>' | '>='

Variables are capitalised identifiers (or ``_``); lowercase identifiers
are constants (labels, type names, bare-word strings).  Comments start
with ``//`` or ``#``.
"""

from __future__ import annotations

from repro.msl.ast import (
    ANONYMOUS,
    COMPARISON_OPS,
    Comparison,
    Condition,
    Const,
    ExternalCall,
    ExternalDecl,
    HeadItem,
    Param,
    Pattern,
    PatternCondition,
    PatternItem,
    RestSpec,
    Rule,
    SemOidTerm,
    SetPattern,
    Specification,
    Term,
    Var,
    VarItem,
    is_variable_name,
)
from repro.msl.errors import MSLSyntaxError
from repro.msl.lexer import Token, tokenize

__all__ = ["parse_specification", "parse_rule", "parse_query", "parse_pattern"]


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing --------------------------------------------------

    def peek(self, ahead: int = 0) -> Token | None:
        index = self.pos + ahead
        if index < len(self.tokens):
            return self.tokens[index]
        return None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise MSLSyntaxError("unexpected end of input")
        self.pos += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise MSLSyntaxError(
                f"expected {text!r}, found {tok.text!r}",
                tok.pos,
                tok.line,
                tok.column,
            )
        return tok

    def at(self, text: str, ahead: int = 0) -> bool:
        tok = self.peek(ahead)
        return tok is not None and tok.text == text

    def at_word(self, word: str, ahead: int = 0) -> bool:
        tok = self.peek(ahead)
        return (
            tok is not None
            and tok.kind == "word"
            and tok.text.upper() == word.upper()
        )

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    def error(self, message: str) -> MSLSyntaxError:
        tok = self.peek()
        if tok is None:
            return MSLSyntaxError(message + " (at end of input)")
        return MSLSyntaxError(message, tok.pos, tok.line, tok.column)

    # -- specification ---------------------------------------------------

    def parse_specification(self) -> Specification:
        rules: list[Rule] = []
        externals: list[ExternalDecl] = []
        while not self.at_end():
            if self.at(";"):
                self.pos += 1
                continue
            if self.at_word("EXT"):
                externals.append(self.parse_extdecl())
            else:
                rules.append(self.parse_rule())
        return Specification(tuple(rules), tuple(externals))

    def parse_extdecl(self) -> ExternalDecl:
        self.next()  # EXT
        name_tok = self.next()
        if name_tok.kind != "word":
            raise self.error("expected a predicate name after EXT")
        self.expect("(")
        adornment: list[str] = []
        while True:
            tok = self.next()
            if tok.kind != "word":
                raise MSLSyntaxError(
                    f"expected 'bound' or 'free', found {tok.text!r}",
                    tok.pos,
                    tok.line,
                    tok.column,
                )
            word = tok.text.lower()
            if word in ("bound", "b"):
                adornment.append("b")
            elif word in ("free", "f"):
                adornment.append("f")
            else:
                raise MSLSyntaxError(
                    f"expected 'bound' or 'free', found {tok.text!r}",
                    tok.pos,
                    tok.line,
                    tok.column,
                )
            if self.at(","):
                self.pos += 1
                continue
            break
        self.expect(")")
        if not self.at_word("BY"):
            raise self.error("expected BY in external declaration")
        self.next()
        func_tok = self.next()
        if func_tok.kind != "word":
            raise self.error("expected a function name after BY")
        return ExternalDecl(name_tok.text, tuple(adornment), func_tok.text)

    # -- rules -------------------------------------------------------------

    def parse_rule(self) -> Rule:
        head = self.parse_head()
        self.expect(":-")
        tail = self.parse_tail()
        return Rule(tuple(head), tuple(tail))

    def parse_head(self) -> list[HeadItem]:
        items: list[HeadItem] = []
        while True:
            tok = self.peek()
            if tok is None:
                raise self.error("unexpected end of input in rule head")
            if tok.text == ":-":
                break
            if tok.text == "<":
                items.append(self.parse_pattern())
            elif tok.kind == "word" and is_variable_name(tok.text):
                self.pos += 1
                items.append(Var(tok.text))
            else:
                raise self.error(
                    f"rule head expects patterns or variables,"
                    f" found {tok.text!r}"
                )
        if not items:
            raise self.error("rule head is empty")
        return items

    def parse_tail(self) -> list[Condition]:
        conditions = [self.parse_conjunct()]
        while True:
            if self.at(",") or self.at_word("AND"):
                self.pos += 1
                conditions.append(self.parse_conjunct())
                continue
            break
        return conditions

    def parse_conjunct(self) -> Condition:
        tok = self.peek()
        if tok is None:
            raise self.error("expected a condition")
        # object-variable pattern: Var : <...>
        if (
            tok.kind == "word"
            and is_variable_name(tok.text)
            and self.at(":", 1)
            and self.at("<", 2)
        ):
            self.pos += 2
            pattern = self.parse_pattern(object_var=Var(tok.text))
            return self._with_source(pattern)
        if tok.text == "<":
            pattern = self.parse_pattern()
            return self._with_source(pattern)
        # external call: name ( ... )
        if tok.kind == "word" and not is_variable_name(tok.text) and self.at("(", 1):
            self.pos += 2
            args: list[Term] = []
            while not self.at(")"):
                args.append(self.parse_term())
                if self.at(","):
                    self.pos += 1
            self.expect(")")
            return ExternalCall(tok.text, tuple(args))
        # comparison: term op term
        left = self.parse_term()
        op_tok = self.next()
        op = op_tok.text
        if op not in COMPARISON_OPS:
            raise MSLSyntaxError(
                f"expected a comparison operator, found {op!r}",
                op_tok.pos,
                op_tok.line,
                op_tok.column,
            )
        right = self.parse_term()
        return Comparison(left, op, right)

    def _with_source(self, pattern: Pattern) -> PatternCondition:
        if self.at("@"):
            self.pos += 1
            tok = self.next()
            if tok.kind != "word":
                raise MSLSyntaxError(
                    f"expected a source name after '@', found {tok.text!r}",
                    tok.pos,
                    tok.line,
                    tok.column,
                )
            return PatternCondition(pattern, tok.text)
        return PatternCondition(pattern, None)

    # -- patterns ------------------------------------------------------------

    def parse_pattern(self, object_var: Var | None = None) -> Pattern:
        self.expect("<")
        fields: list[object] = []
        while True:
            tok = self.peek()
            if tok is None:
                raise self.error("unterminated pattern (missing '>')")
            if tok.text == ">":
                self.pos += 1
                break
            if tok.text == ",":
                self.pos += 1
                continue
            if tok.text == "{":
                fields.append(self.parse_set_pattern())
                continue
            if tok.kind == "oid":
                fields.append(self.parse_oid_term())
                continue
            fields.append(self.parse_term())
        return self._assemble_pattern(fields, object_var)

    def parse_oid_term(self) -> Term:
        tok = self.next()  # the oid token
        if self.at("("):
            self.pos += 1
            args: list[Term] = []
            while not self.at(")"):
                args.append(self.parse_term())
                if self.at(","):
                    self.pos += 1
            self.expect(")")
            return SemOidTerm(str(tok.value), tuple(args))
        return Const(tok.text)

    def _assemble_pattern(
        self, fields: list[object], object_var: Var | None
    ) -> Pattern:
        """Apply MSL's field-elision rules (mirroring OEM's).

        1 field: label only, value anonymous.  2: label value.
        3: oid label value.  4: oid label type value.
        """
        if not 1 <= len(fields) <= 4:
            raise self.error(
                f"a pattern has 1-4 fields, found {len(fields)}"
            )
        oid: Term | None = None
        type_: Term | None = None
        if len(fields) == 1:
            (label,) = fields
            value: object = Var(ANONYMOUS)
        elif len(fields) == 2:
            label, value = fields
        elif len(fields) == 3:
            oid, label, value = fields  # type: ignore[assignment]
        else:
            oid, label, type_, value = fields  # type: ignore[assignment]

        label_term = _require_slot_term(label, "label", self)
        if oid is not None:
            oid = _require_slot_term(oid, "oid", self)
        if type_ is not None:
            type_ = _require_slot_term(type_, "type", self)
        if not isinstance(value, (Const, Var, Param, SemOidTerm, SetPattern)):
            raise self.error(f"invalid pattern value {value!r}")
        return Pattern(
            label=label_term,
            value=value,
            type=type_,
            oid=oid,
            object_var=object_var,
        )

    def parse_set_pattern(self) -> SetPattern:
        self.expect("{")
        items: list[PatternItem | VarItem] = []
        rest: RestSpec | None = None
        while True:
            tok = self.peek()
            if tok is None:
                raise self.error("unterminated set pattern (missing '}')")
            if tok.text == "}":
                self.pos += 1
                break
            if tok.text == ",":
                self.pos += 1
                continue
            if tok.text == "|":
                self.pos += 1
                rest = self.parse_rest_spec()
                self.expect("}")
                break
            if tok.text == "..":
                self.pos += 1
                items.append(PatternItem(self.parse_pattern(), descendant=True))
                continue
            if tok.text == "<":
                # an object-variable item  V:<...>  is not legal here; a
                # pattern item may still carry one via the conjunct form.
                items.append(PatternItem(self.parse_pattern()))
                continue
            if (
                tok.kind == "word"
                and is_variable_name(tok.text)
                and self.at(":", 1)
                and self.at("<", 2)
            ):
                self.pos += 2
                items.append(
                    PatternItem(self.parse_pattern(object_var=Var(tok.text)))
                )
                continue
            if tok.kind == "word" and is_variable_name(tok.text):
                self.pos += 1
                items.append(VarItem(Var(tok.text)))
                continue
            raise self.error(
                f"unexpected {tok.text!r} inside set pattern"
            )
        return SetPattern(tuple(items), rest)

    def parse_rest_spec(self) -> RestSpec:
        tok = self.next()
        if tok.kind != "word" or not is_variable_name(tok.text):
            raise MSLSyntaxError(
                f"expected a rest variable after '|', found {tok.text!r}",
                tok.pos,
                tok.line,
                tok.column,
            )
        var = Var(tok.text)
        conditions: list[Pattern] = []
        if self.at(":"):
            self.pos += 1
            self.expect("{")
            while not self.at("}"):
                if self.at(","):
                    self.pos += 1
                    continue
                conditions.append(self.parse_pattern())
            self.expect("}")
        return RestSpec(var, tuple(conditions))

    # -- terms --------------------------------------------------------------

    def parse_term(self) -> Term:
        tok = self.next()
        if tok.kind == "string":
            return Const(tok.value)
        if tok.kind == "number":
            return Const(tok.value)
        if tok.kind == "param":
            return Param(str(tok.value))
        if tok.kind == "oid":
            return Const(tok.text)
        if tok.kind == "word":
            if is_variable_name(tok.text):
                return Var(tok.text)
            lowered = tok.text.lower()
            if lowered == "true":
                return Const(True)
            if lowered == "false":
                return Const(False)
            return Const(tok.text)
        raise MSLSyntaxError(
            f"expected a term, found {tok.text!r}",
            tok.pos,
            tok.line,
            tok.column,
        )


def _require_slot_term(field: object, slot: str, parser: _Parser) -> Term:
    if isinstance(field, (Const, Var, SemOidTerm, Param)):
        if slot == "label" and isinstance(field, SemOidTerm):
            raise parser.error("a semantic oid cannot fill the label slot")
        return field
    raise parser.error(f"invalid {slot} field {field!r}")


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def parse_specification(text: str) -> Specification:
    """Parse a full mediator specification (rules + EXT declarations).

    >>> spec = parse_specification(
    ...     "<p {<a X>}> :- <q {<a X>}>@src")
    >>> len(spec.rules)
    1
    """
    parser = _Parser(text)
    return parser.parse_specification()


def parse_rule(text: str) -> Rule:
    """Parse text containing exactly one rule."""
    spec = parse_specification(text)
    if len(spec.rules) != 1 or spec.externals:
        raise MSLSyntaxError(
            f"expected exactly one rule, found {len(spec.rules)} rules"
            f" and {len(spec.externals)} declarations"
        )
    return spec.rules[0]


def parse_query(text: str) -> Rule:
    """Parse an MSL query (a single rule; the paper's query form).

    >>> q = parse_query("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med")
    >>> str(q.head[0])
    'JC'
    """
    return parse_rule(text)


def parse_pattern(text: str) -> Pattern:
    """Parse a standalone object pattern, e.g. ``<person {<name N>}>``.

    The object-variable form ``X:<...>`` is accepted too.
    """
    parser = _Parser(text)
    object_var: Var | None = None
    tok = parser.peek()
    if (
        tok is not None
        and tok.kind == "word"
        and is_variable_name(tok.text)
        and parser.at(":", 1)
        and parser.at("<", 2)
    ):
        parser.pos += 2
        object_var = Var(tok.text)
    pattern = parser.parse_pattern(object_var=object_var)
    if not parser.at_end():
        raise parser.error("trailing input after pattern")
    return pattern

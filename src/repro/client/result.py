"""Client-side materialization and display of query results.

"Unlike mediator specification, when MSL is used for querying, the
objects specified by the query rule head are materialized at the
client."  A :class:`ResultSet` wraps the materialized objects with the
conveniences a client application wants: structural display, conversion
to plain Python data, selection by label, and stable ordering.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.oem.builders import to_python
from repro.oem.compare import structural_key
from repro.oem.model import OEMObject
from repro.oem.printer import format_forest, to_text

__all__ = ["ResultSet"]


class ResultSet:
    """The materialized answer to an MSL query."""

    def __init__(self, objects: Sequence[OEMObject]) -> None:
        self._objects = list(objects)

    # -- sequence protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[OEMObject]:
        return iter(self._objects)

    def __getitem__(self, index: int) -> OEMObject:
        return self._objects[index]

    def __bool__(self) -> bool:
        return bool(self._objects)

    # -- conveniences -----------------------------------------------------

    def objects(self) -> list[OEMObject]:
        return list(self._objects)

    def with_label(self, label: str) -> "ResultSet":
        """Only the result objects carrying ``label``."""
        return ResultSet([o for o in self._objects if o.label == label])

    def where(self, predicate: Callable[[OEMObject], bool]) -> "ResultSet":
        return ResultSet([o for o in self._objects if predicate(o)])

    def sorted_by(self, key_label: str) -> "ResultSet":
        """Sort by the value of each object's first ``key_label`` child."""

        def key(obj: OEMObject) -> tuple:
            value = obj.get(key_label)
            return (value is None, str(value))

        return ResultSet(sorted(self._objects, key=key))

    def canonical(self) -> "ResultSet":
        """Deterministic order by structural key (for comparisons)."""
        return ResultSet(
            sorted(self._objects, key=lambda o: repr(structural_key(o)))
        )

    def to_python(self) -> list[object]:
        """Plain Python data (dicts/lists/atoms), one per object."""
        return [to_python(o) for o in self._objects]

    # -- display ---------------------------------------------------------------

    def pretty(self) -> str:
        """Inline notation, one object per line."""
        return format_forest(self._objects)

    def dump(self) -> str:
        """The paper's reference style (one component per line)."""
        return to_text(self._objects)

    def __repr__(self) -> str:
        return f"ResultSet({len(self._objects)} objects)"

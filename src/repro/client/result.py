"""Client-side materialization and display of query results.

"Unlike mediator specification, when MSL is used for querying, the
objects specified by the query rule head are materialized at the
client."  A :class:`ResultSet` wraps the materialized objects with the
conveniences a client application wants: structural display, conversion
to plain Python data, selection by label, and stable ordering.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.oem.builders import to_python
from repro.oem.compare import structural_key
from repro.oem.model import OEMObject
from repro.oem.printer import format_forest, to_text

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.reliability.health import SourceWarning

__all__ = ["ResultSet"]


class ResultSet:
    """The materialized answer to an MSL query.

    ``warnings`` carries the structured
    :class:`~repro.reliability.health.SourceWarning` records a mediator
    produced in degrade mode, plus any
    :class:`~repro.governor.budget.BudgetWarning` records a
    truncate-mode governor produced — empty for a complete answer.  A
    result with warnings is *partial*: every object in it is correct,
    but objects may be missing.  Repeated identical warnings (same
    source and error, or same budget and plan node) are aggregated into
    one record carrying a ``count``.
    """

    def __init__(
        self,
        objects: Sequence[OEMObject],
        warnings: Sequence["SourceWarning"] = (),
    ) -> None:
        from repro.reliability.health import aggregate_warnings

        self._objects = list(objects)
        self.warnings: list["SourceWarning"] = aggregate_warnings(warnings)

    @property
    def complete(self) -> bool:
        """True when no source degraded while answering."""
        return not self.warnings

    # -- sequence protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[OEMObject]:
        return iter(self._objects)

    def __getitem__(self, index: int) -> OEMObject:
        return self._objects[index]

    def __bool__(self) -> bool:
        return bool(self._objects)

    # -- conveniences -----------------------------------------------------

    def objects(self) -> list[OEMObject]:
        return list(self._objects)

    def with_label(self, label: str) -> "ResultSet":
        """Only the result objects carrying ``label``."""
        return ResultSet(
            [o for o in self._objects if o.label == label], self.warnings
        )

    def where(self, predicate: Callable[[OEMObject], bool]) -> "ResultSet":
        return ResultSet(
            [o for o in self._objects if predicate(o)], self.warnings
        )

    def sorted_by(self, key_label: str) -> "ResultSet":
        """Sort by the value of each object's first ``key_label`` child."""

        def key(obj: OEMObject) -> tuple:
            value = obj.get(key_label)
            return (value is None, str(value))

        return ResultSet(sorted(self._objects, key=key), self.warnings)

    def canonical(self) -> "ResultSet":
        """Deterministic order by structural key (for comparisons)."""
        return ResultSet(
            sorted(self._objects, key=lambda o: repr(structural_key(o))),
            self.warnings,
        )

    def to_python(self) -> list[object]:
        """Plain Python data (dicts/lists/atoms), one per object."""
        return [to_python(o) for o in self._objects]

    # -- display ---------------------------------------------------------------

    def pretty(self) -> str:
        """Inline notation, one object per line."""
        return format_forest(self._objects)

    def dump(self) -> str:
        """The paper's reference style (one component per line)."""
        return to_text(self._objects)

    def render_warnings(self) -> str:
        """The degradation warnings, one per line (empty if complete)."""
        return "\n".join(warning.render() for warning in self.warnings)

    def __repr__(self) -> str:
        suffix = (
            f", {len(self.warnings)} warning(s)" if self.warnings else ""
        )
        return f"ResultSet({len(self._objects)} objects{suffix})"

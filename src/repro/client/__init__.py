"""Client-side conveniences for consuming mediator results."""

from repro.client.result import ResultSet

__all__ = ["ResultSet"]

"""``python -m repro`` — the MedMaker command-line interface."""

import sys

from repro.cli import main

sys.exit(main())

#!/usr/bin/env python3
"""Schema evolution and irregularity: MSL's headline capability.

The paper (Section 2): "The format and contents of the sources may
change over time, often without notification to the mediator
implementor ... if 'birthday' is included or dropped, it should be
automatically included or dropped from the med view, without need to
change the mediator specification."

This example takes the running staff scenario and *mutates the sources
live* — adding a relational attribute, dropping one, and inserting an
irregular whois object — while the mediator specification never
changes.  Rest variables do all the work.

Run:  python examples/schema_evolution.py
"""

from repro.client import ResultSet
from repro.datasets import JOE_CHUNG_QUERY, build_scenario
from repro.oem import atom, obj


def show_view(mediator, title):
    print(f"=== {title} ===")
    for person in ResultSet(mediator.export()).sorted_by("name"):
        print(person)
    print()


def main() -> None:
    scenario = build_scenario()
    med = scenario.mediator

    show_view(med, "The view before any schema change")

    # -- 1. the cs DBA adds a 'birthday' column -------------------------
    student = scenario.cs.database.table("student")
    student.add_attribute("birthday")
    student.delete_where(lambda row: True)
    student.insert("Nick", "Naive", 3, "1975-06-01")
    print(">>> cs: ALTER TABLE student ADD COLUMN birthday; Nick updated")
    show_view(med, "birthday flows into the view via Rest2 — spec unchanged")

    # -- 2. the cs DBA drops 'title' ----------------------------------------
    scenario.cs.database.table("employee").drop_attribute("title")
    print(">>> cs: ALTER TABLE employee DROP COLUMN title")
    (joe,) = med.answer(JOE_CHUNG_QUERY)
    print("Joe without a title, nothing else disturbed:")
    print(joe)
    print()

    # -- 3. whois grows an object with fields nobody planned for -------------
    scenario.whois.add(
        obj(
            "person",
            atom("name", "Ada Fresh"),
            atom("dept", "CS"),
            atom("relation", "student"),
            atom("pronouns", "she/her"),
            obj("homepage", atom("url", "http://cs/~ada"), atom("visits", 42)),
        )
    )
    scenario.cs.database.table("student").insert(
        "Ada", "Fresh", 1, "1980-01-01"
    )
    print(">>> whois: new person with 'pronouns' and a nested 'homepage'")
    show_view(
        med,
        "irregular and nested fields propagate untouched (Rest1)",
    )

    # -- 4. and queries can explore structure via label variables -----------
    print("=== Label variables: what fields does the view have? ===")
    labels = med.answer("<field L> :- <cs_person {<L V>}>@med")
    print(sorted(o.value for o in labels))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Recursive views: reporting chains in the CS department.

The paper notes (footnote 4) that "MSL is more powerful than LOREL
(e.g., MSL allows the specification of recursive views)".  This example
exercises that power: from the flat ``reports_to`` edges of the ``cs``
relational source, a recursive mediator derives the full *management
chain* relation — who is above whom, at any distance.

Recursive specifications are evaluated by naive fixpoint iteration over
the materialized view (see ``Mediator._fixpoint_materialize``).

Run:  python examples/recursive_views.py
"""

from repro import Mediator, RelationalWrapper, SourceRegistry
from repro.client import ResultSet
from repro.relational import Database, RelationSchema


def build_org_source() -> RelationalWrapper:
    db = Database("org")
    employee = db.create_table(
        RelationSchema("employee", ["name", "reports_to"])
    )
    rows = [
        ("Joe Chung", "Mary Lane"),
        ("Ada Fresh", "Mary Lane"),
        ("Mary Lane", "John Hennessy"),
        ("Sam Stone", "John Hennessy"),
        ("John Hennessy", None),  # the root reports to nobody
    ]
    employee.insert_many(rows)
    return RelationalWrapper("org", db)


CHAIN_SPEC = """
<above {<junior X> <senior Y>}> :-
    <employee {<name X> <reports_to Y>}>@org ;

<above {<junior X> <senior Z>}> :-
    <employee {<name X> <reports_to Y>}>@org
    AND <above {<junior Y> <senior Z>}>@chain ;
"""


def main() -> None:
    registry = SourceRegistry()
    registry.register(build_org_source())
    chain = Mediator("chain", CHAIN_SPEC, registry)
    print("specification is recursive:", chain.is_recursive)
    print()

    print("=== the full management-chain view (fixpoint) ===")
    view = ResultSet(chain.export()).sorted_by("junior")
    for pair in view:
        print(f"  {pair.get('junior'):<15} is under {pair.get('senior')}")

    print()
    print("=== everyone under John Hennessy, at any distance ===")
    result = chain.answer(
        "P :- P:<above {<senior 'John Hennessy'>}>@chain"
    )
    for pair in ResultSet(result).sorted_by("junior"):
        print(" ", pair.get("junior"))

    print()
    print("=== is Joe Chung under John Hennessy? ===")
    hit = chain.answer(
        "P :- P:<above {<junior 'Joe Chung'> <senior 'John Hennessy'>}>@chain"
    )
    print("  yes" if hit else "  no")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Builds the two heterogeneous sources of Section 2 —

* ``cs``    — a relational database (tables employee/student) behind a
              wrapper that exports each tuple as an OEM object;
* ``whois`` — a semi-structured source with irregular person objects;

defines the ``med`` mediator with the declarative specification MS1, and
runs query Q1 ("all the data for Joe Chung") through the full Mediator
Specification Interpreter pipeline: view expansion, cost-based
optimization, and datamerge-graph execution.

Run:  python examples/quickstart.py
"""

from repro import Mediator, OEMStoreWrapper, RelationalWrapper, SourceRegistry
from repro.client import ResultSet
from repro.oem import parse_oem, to_text
from repro.relational import Attribute, Database, RelationSchema


def build_cs_source() -> RelationalWrapper:
    """The relational source: employee and student tables."""
    db = Database("cs")
    employee = db.create_table(
        RelationSchema(
            "employee", ["first_name", "last_name", "title", "reports_to"]
        )
    )
    employee.insert("Joe", "Chung", "professor", "John Hennessy")
    student = db.create_table(
        RelationSchema(
            "student",
            ["first_name", "last_name", Attribute("year", "integer")],
        )
    )
    student.insert("Nick", "Naive", 3)
    return RelationalWrapper("cs", db)


def build_whois_source() -> OEMStoreWrapper:
    """The semi-structured source (note: &p2 has no e_mail — that's OEM)."""
    objects = parse_oem(
        """
        <&p1, person, set, {&n1,&d1,&rel1,&elm1}>
          <&n1, name, string, 'Joe Chung'>
          <&d1, dept, string, 'CS'>
          <&rel1, relation, string, 'employee'>
          <&elm1, e_mail, string, 'chung@cs'>
        ;
        <&p2, person, set, {&n2,&d2,&rel2,&y2}>
          <&n2, name, string, 'Nick Naive'>
          <&d2, dept, string, 'CS'>
          <&rel2, relation, string, 'student'>
          <&y2, year, integer, 3>
        ;
        """
    )
    return OEMStoreWrapper("whois", objects)


#: The paper's mediator specification MS1: one declarative rule that
#: joins the sources, resolves the schematic discrepancy (R is a value
#: in whois, a relation *name* in cs), tolerates schema evolution
#: (Rest1/Rest2), and decomposes names with an external predicate.
MS1 = """
<cs_person {<name N> <rel R> Rest1 Rest2}> :-
    <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois
    AND decomp(N, LN, FN)
    AND <R {<first_name FN> <last_name LN> | Rest2}>@cs ;

EXT decomp(bound, free, free) BY name_to_lnfn ;
EXT decomp(free, bound, bound) BY lnfn_to_name ;
"""


def main() -> None:
    registry = SourceRegistry()
    registry.register(build_whois_source())
    registry.register(build_cs_source())
    med = Mediator("med", MS1, registry)

    print("=== What each source exports (Figures 2.2 / 2.3) ===")
    print(to_text(registry.resolve("cs").export()))
    print(to_text(registry.resolve("whois").export()))

    query = "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med"
    print("=== Query Q1 ===")
    print(query)

    print()
    print("=== How the MSI processes it ===")
    print(med.explain(query))

    print()
    print("=== The integrated result (Figure 2.4) ===")
    results = ResultSet(med.answer(query))
    print(results.dump())

    print()
    print("=== The whole integrated view ===")
    for person in ResultSet(med.export()).sorted_by("name"):
        print(person)

    print()
    print(
        f"(queries shipped to sources on the last call:"
        f" {med.last_context.queries_sent})"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Electronic mail: the paper's opening example of semi-structured data.

"A typical example is electronic mail where objects have some well
defined 'fields' such as the destination and source addresses, but there
are others that vary from one mailer to another.  Furthermore, fields
are constantly being added or modified."

Two mail archives with different conventions:

* ``unixmail`` — classic headers (``from``/``to``/``subject``), some
  messages carry ``cc`` or ``x_mailer``; nested ``received`` hops;
* ``webmail``  — a different vocabulary (``sender``/``recipient``/
  ``title``), some messages have ``labels`` and ``thread`` objects.

The ``mail`` mediator unifies both under one ``message`` vocabulary —
including label renaming (value-level) and the pass-through of every
unanticipated field via Rest variables — and a second mediator derives a
per-sender digest on top, showing mediator stacking.

Run:  python examples/email_archive.py
"""

from repro import Mediator, OEMStoreWrapper, SourceRegistry
from repro.client import ResultSet
from repro.oem import parse_oem

UNIXMAIL = """
<&u1, mail, set, {&u1f,&u1t,&u1s,&u1x}>
  <&u1f, from, string, 'chung@cs'>
  <&u1t, to, string, 'widom@cs'>
  <&u1s, subject, string, 'draft of the MedMaker paper'>
  <&u1x, x_mailer, string, 'elm 2.4'>
;
<&u2, mail, set, {&u2f,&u2t,&u2s,&u2c,&u2r}>
  <&u2f, from, string, 'widom@cs'>
  <&u2t, to, string, 'chung@cs'>
  <&u2s, subject, string, 'Re: draft of the MedMaker paper'>
  <&u2c, cc, string, 'ullman@cs'>
  <&u2r, received, set, {&u2r1,&u2r2}>
    <&u2r1, hop, string, 'relay1.stanford.edu'>
    <&u2r2, hop, string, 'cs.stanford.edu'>
;
"""

WEBMAIL = """
<&w1, mail, set, {&w1f,&w1t,&w1s,&w1l}>
  <&w1f, sender, string, 'hector@cs'>
  <&w1t, recipient, string, 'chung@cs'>
  <&w1s, title, string, 'ICDE camera-ready deadline'>
  <&w1l, labels, set, {&w1l1,&w1l2}>
    <&w1l1, label, string, 'deadlines'>
    <&w1l2, label, string, 'icde96'>
;
<&w2, mail, set, {&w2f,&w2t,&w2s,&w2th}>
  <&w2f, sender, string, 'chung@cs'>
  <&w2t, recipient, string, 'hector@cs'>
  <&w2s, title, string, 'Re: ICDE camera-ready deadline'>
  <&w2th, thread, integer, 42>
;
"""

#: One rule per source; note how webmail's sender/recipient/title are
#: renamed into the unified vocabulary while Rest keeps mailer quirks.
MAIL_SPEC = """
<message {<from F> <to T> <subject S> | Rest}> :-
    <mail {<from F> <to T> <subject S> | Rest}>@unixmail ;

<message {<from F> <to T> <subject S> | Rest}> :-
    <mail {<sender F> <recipient T> <title S> | Rest}>@webmail ;
"""

DIGEST_SPEC = """
<outbox {<author F> <sent S>}> :-
    <message {<from F> <subject S>}>@mail ;
"""


def main() -> None:
    registry = SourceRegistry()
    registry.register(OEMStoreWrapper("unixmail", parse_oem(UNIXMAIL)))
    registry.register(OEMStoreWrapper("webmail", parse_oem(WEBMAIL)))
    mail = Mediator("mail", MAIL_SPEC, registry)

    print("=== unified mailbox (both archives, one vocabulary) ===")
    for message in ResultSet(mail.export()).sorted_by("subject"):
        print(message)

    print()
    print("=== everything sent to chung@cs, regardless of archive ===")
    for message in mail.answer("M :- M:<message {<to 'chung@cs'>}>@mail"):
        print(message)

    print()
    print("=== quirky fields survive: which messages have labels? ===")
    for message in mail.answer(
        "M :- M:<message {<labels {<label 'deadlines'>}>}>@mail"
    ):
        print(message)

    print()
    print("=== a digest mediator stacked on the mail mediator ===")
    digest = Mediator("digest", DIGEST_SPEC, registry)
    for entry in ResultSet(digest.export()).sorted_by("author"):
        print(entry)

    print()
    print("=== exploring structure with label variables ===")
    fields = mail.answer("<field L> :- <message {<L V>}>@mail")
    print("fields in the unified view:", sorted(o.value for o in fields))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Beyond MS1: the fusion variant of the staff view.

The paper notes MS1's limitation: "it only includes information for
people that appear in both cs and whois.  In particular, we may wish to
include information in med even if it appears in a single source", and
points at *semantic object-ids* as "a powerful mechanism for object
fusion".

This example runs the two specifications side by side on sources with
partial overlap:

* ``MS1``        — the join view: one rule, both sources required;
* ``MS1_FUSION`` — one rule per source, heads identified by the
  semantic oid ``&person(LN, FN)``; contributions about the same person
  fuse, single-source people survive.

Run:  python examples/staff_fusion.py
"""

from repro import Mediator, OEMStoreWrapper, RelationalWrapper, SourceRegistry
from repro.client import ResultSet
from repro.datasets import (
    MS1,
    MS1_FUSION,
    build_cs_database,
    build_whois_objects,
)
from repro.oem import atom, obj


def build_sources(registry: SourceRegistry) -> None:
    whois = OEMStoreWrapper("whois", build_whois_objects())
    # someone only the whois facility knows about
    whois.add(
        obj(
            "person",
            atom("name", "Wendy Whoisonly"),
            atom("dept", "CS"),
            atom("relation", "student"),
            atom("e_mail", "wendy@cs"),
        )
    )
    # someone only the relational database knows about
    cs = RelationalWrapper(
        "cs", build_cs_database(extra_students=[("Sue", "Solo", 1)])
    )
    registry.register(whois)
    registry.register(cs)


def show(title: str, mediator: Mediator) -> None:
    print(f"=== {title} ===")
    for person in ResultSet(mediator.export()).sorted_by("name"):
        print(person)
    print()


def main() -> None:
    join_registry = SourceRegistry()
    build_sources(join_registry)
    join_view = Mediator("med", MS1, join_registry)
    show("MS1 (join view): only people in BOTH sources", join_view)

    fusion_registry = SourceRegistry()
    build_sources(fusion_registry)
    fusion_view = Mediator("med", MS1_FUSION, fusion_registry)
    show(
        "MS1_FUSION: every person, fused where both sources contribute",
        fusion_view,
    )

    print("=== identity: fused objects carry semantic object-ids ===")
    (joe,) = fusion_view.answer(
        "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med"
    )
    print(f"oid of Joe's view object: {joe.oid}")
    print(
        "the same oid arises from every rule that mentions"
        " (Chung, Joe) — that's what makes the fusion safe."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Source capabilities, condition pushdown, and plan inspection.

Section 3.3/3.5 of the paper: the VE&AO "pushes to the sources all
conditions that can be pushed", but "the limited query capabilities of
the underlying sources may prohibit even simple algebraic optimizations
... the source whois may not be able to evaluate the condition on
'year'".

This example runs the same ``year = 3`` query against two builds of the
running scenario:

1. a fully-capable ``whois``: the condition ships inside the source
   query (τ1's ``Rest1:{<year 3>}``);
2. a limited ``whois`` that can only filter name/dept/relation: the
   optimizer relaxes the shipped query and compensates with a
   mediator-side filter node — same answers, more data on the wire.

Run:  python examples/capabilities_and_plans.py
"""

from repro.datasets import (
    WHOIS_LIMITED_CAPABILITY,
    YEAR3_QUERY,
    build_scenario,
)


def run(title, scenario):
    print(f"=== {title} ===")
    print("-- logical program & physical plan --")
    print(scenario.mediator.explain(YEAR3_QUERY))
    print()
    answer = scenario.mediator.answer(YEAR3_QUERY)
    print("-- answer --")
    for person in answer:
        print(person)
    context = scenario.mediator.last_context
    print(
        f"-- cost: {context.total_queries} source queries,"
        f" {context.total_objects} objects shipped --"
    )
    print()
    return context


def main() -> None:
    # 'needed' push mode reproduces the paper's τ1/τ2 presentation
    full = build_scenario(push_mode="needed")
    limited = build_scenario(
        push_mode="needed", whois_capability=WHOIS_LIMITED_CAPABILITY
    )

    run("whois with full filtering capability", full)
    run("whois that cannot evaluate the 'year' condition", limited)

    print("=== Wire-cost comparison at scale (200 people) ===")
    from repro.datasets import build_scaled_scenario

    for label, capability in (
        ("full   ", None),
        ("limited", WHOIS_LIMITED_CAPABILITY),
    ):
        scenario = build_scaled_scenario(
            200, push_mode="needed", whois_capability=capability
        )
        # 'office' is a whois-side irregular field the limited source
        # cannot filter on
        answer = scenario.mediator.answer(
            "S :- S:<cs_person {<office 'Gates 4'>}>@med"
        )
        context = scenario.mediator.last_context
        print(
            f"  {label}: {len(answer):>3} answers, "
            f"{context.objects_received['whois']:>4} objects shipped from"
            f" whois, {context.queries_sent['cs']:>4} queries to cs"
        )
    print(
        "the limited source ships every matching-relation person and the"
        " mediator filters locally; the answers are identical."
    )


if __name__ == "__main__":
    main()

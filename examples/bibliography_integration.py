#!/usr/bin/env python3
"""The introduction's motivating scenario: a bibliography mediator.

"A mediator for Computer Science publications could provide access to a
set of bibliographic sources ... with, for example, duplicates removed
and inconsistencies resolved (e.g., all author names would be in the
format last name, first name)."

Two heterogeneous bibliographic sources:

* ``deptbib`` — relational, ``paper(title, author, venue, year)``,
  authors formatted ``'First Last'``;
* ``webbib``  — semi-structured ``entry`` objects with irregular extras
  (pages, url), authors formatted ``'Last, First'``.

The ``bib`` mediator gives every publication a *semantic object-id*
``&pub(T, Y)``, so the same paper arriving from both sources **fuses**
into one object combining all known fields — and papers present in only
one source are still included (unlike the join-only view of the staff
example).  Author names are normalised by an external function.

Run:  python examples/bibliography_integration.py
"""

from repro.client import ResultSet
from repro.datasets import build_bibliography


def main() -> None:
    scenario = build_bibliography(papers=14, overlap_fraction=0.5, seed=3)

    print("=== deptbib rows (relational; authors 'First Last') ===")
    for row in scenario.deptbib.database.table("paper"):
        print("   ", row)

    print()
    print("=== webbib entries (semi-structured; authors 'Last, First') ===")
    for entry in scenario.webbib.export():
        print("   ", entry)

    print()
    print("=== The mediator's specification ===")
    print(scenario.mediator.specification)

    print()
    print("=== The unified view: fused, deduplicated, normalised ===")
    view = ResultSet(scenario.mediator.export()).sorted_by("title")
    for publication in view:
        print(publication)

    fused = view.where(
        lambda o: o.first("venue") is not None
        and (o.first("pages") is not None or o.first("url") is not None)
    )
    print()
    print(
        f"{len(view)} publications; {len(fused)} combine relational fields"
        f" (venue) with web-only fields (pages/url) via object fusion"
    )

    print()
    print("=== Querying the view ===")
    wanted = view[0].get("title")
    result = scenario.mediator.answer(
        f"P :- P:<publication {{<title '{wanted}'>}}>@bib"
    )
    print(f"publications titled {wanted!r}:")
    for publication in result:
        print("   ", publication)


if __name__ == "__main__":
    main()

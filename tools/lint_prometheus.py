#!/usr/bin/env python3
"""Lint a Prometheus text-exposition file.

A small, dependency-free checker for the output of
``Mediator.metrics_text()`` / ``PrometheusTextExporter`` (and any
``--metrics-out`` file).  It enforces the parts of the exposition
format the scrapers we care about actually reject:

* every line is a ``# HELP``, ``# TYPE``, other comment, blank line,
  or a sample ``name{labels} value``;
* metric and label names are legal (``[a-zA-Z_:][a-zA-Z0-9_:]*`` /
  ``[a-zA-Z_][a-zA-Z0-9_]*``), label values are double-quoted with
  ``\\`` / ``\"`` / ``\n`` escapes, sample values parse as floats
  (``+Inf`` / ``-Inf`` / ``NaN`` included);
* at most one ``# TYPE`` per metric, declaring a known type, and it
  precedes every sample of that metric;
* ``# HELP`` (when present) is unique per metric;
* counter names end in ``_total`` (histogram/summary series names may
  carry ``_bucket`` / ``_sum`` / ``_count`` suffixes);
* no duplicate sample (same name and label set).

Usage::

    python tools/lint_prometheus.py metrics.prom [more.prom ...]
    some-command | python tools/lint_prometheus.py -

Exits 0 when every file is clean, 1 on any violation (each printed as
``file:line: message``), 2 on usage errors.
"""

from __future__ import annotations

import re
import sys

METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"
LABEL_VALUE = r'"(?:\\[\\"n]|[^"\\])*"'

_HELP_RE = re.compile(rf"^# HELP ({METRIC_NAME}) (.*)$")
_TYPE_RE = re.compile(rf"^# TYPE ({METRIC_NAME}) ([a-z]+)$")
_LABEL_RE = re.compile(rf"^({LABEL_NAME})=({LABEL_VALUE})$")
_SAMPLE_RE = re.compile(
    rf"^({METRIC_NAME})(?:\{{(.*)\}})? ([^ ]+)(?: [0-9]+)?$"
)
_SPLIT_LABELS_RE = re.compile(rf"{LABEL_NAME}={LABEL_VALUE}")

TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}

#: Series suffixes that roll up to a declared histogram/summary name.
SUFFIXES = ("_bucket", "_sum", "_count")


def base_name(name: str, types: dict[str, str]) -> str:
    """The declared metric a sample line belongs to.

    ``repro_query_seconds_bucket`` rolls up to ``repro_query_seconds``
    when that name was declared a histogram or summary.
    """
    for suffix in SUFFIXES:
        if name.endswith(suffix):
            stem = name[: -len(suffix)]
            if types.get(stem) in ("histogram", "summary"):
                return stem
    return name


def parse_labels(raw: str, errors: list[str], where: str) -> tuple | None:
    """The sorted (name, value) pairs of one ``{...}`` body."""
    if raw == "":
        return ()
    pairs = []
    rest = raw
    while rest:
        match = _SPLIT_LABELS_RE.match(rest)
        if match is None:
            errors.append(f"{where}: malformed label set {{{raw}}}")
            return None
        pair = _LABEL_RE.match(match.group(0))
        assert pair is not None
        pairs.append((pair.group(1), pair.group(2)))
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            errors.append(f"{where}: malformed label set {{{raw}}}")
            return None
    names = [name for name, _ in pairs]
    if len(set(names)) != len(names):
        errors.append(f"{where}: duplicate label name in {{{raw}}}")
        return None
    return tuple(sorted(pairs))


def is_valid_value(text: str) -> bool:
    if text in ("+Inf", "-Inf", "Inf", "NaN"):
        return True
    try:
        float(text)
    except ValueError:
        return False
    return True


def lint(text: str, filename: str = "<stdin>") -> list[str]:
    """Every violation in ``text``, formatted ``file:line: message``."""
    errors: list[str] = []
    types: dict[str, str] = {}
    helps: set[str] = set()
    sampled: set[str] = set()
    seen_series: set[tuple] = set()

    for number, line in enumerate(text.splitlines(), start=1):
        where = f"{filename}:{number}"
        if line == "":
            continue
        if line != line.rstrip():
            errors.append(f"{where}: trailing whitespace")
            line = line.rstrip()
        if line.startswith("#"):
            type_match = _TYPE_RE.match(line)
            help_match = _HELP_RE.match(line)
            if type_match:
                name, kind = type_match.groups()
                if kind not in TYPES:
                    errors.append(f"{where}: unknown type {kind!r}")
                if name in types:
                    errors.append(f"{where}: duplicate TYPE for {name}")
                elif name in sampled:
                    errors.append(
                        f"{where}: TYPE for {name} after its samples"
                    )
                types.setdefault(name, kind)
            elif help_match:
                name = help_match.group(1)
                if name in helps:
                    errors.append(f"{where}: duplicate HELP for {name}")
                helps.add(name)
            elif line.startswith(("# TYPE", "# HELP")):
                errors.append(f"{where}: malformed metadata line: {line}")
            # any other comment is legal and ignored
            continue

        sample = _SAMPLE_RE.match(line)
        if sample is None:
            errors.append(f"{where}: unparseable sample line: {line}")
            continue
        name, raw_labels, value = sample.groups()
        if not is_valid_value(value):
            errors.append(f"{where}: bad sample value {value!r}")
        labels = parse_labels(raw_labels or "", errors, where)
        stem = base_name(name, types)
        sampled.add(stem)
        kind = types.get(stem)
        if kind is None:
            errors.append(f"{where}: sample for {name} has no TYPE")
        elif kind == "counter" and not stem.endswith("_total"):
            errors.append(
                f"{where}: counter {stem} should end in _total"
            )
        if labels is not None:
            series = (name, labels)
            if series in seen_series:
                errors.append(f"{where}: duplicate series {line!r}")
            seen_series.add(series)
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print(
            "usage: python tools/lint_prometheus.py FILE [FILE ...]"
            " (- for stdin)",
            file=sys.stderr,
        )
        return 2
    failures = 0
    for path in argv:
        if path == "-":
            text, label = sys.stdin.read(), "<stdin>"
        else:
            try:
                with open(path) as handle:
                    text = handle.read()
            except OSError as exc:
                print(f"error: cannot read {path}: {exc}", file=sys.stderr)
                return 2
            label = path
        errors = lint(text, label)
        for error in errors:
            print(error)
        if errors:
            failures += 1
        else:
            lines = sum(1 for l in text.splitlines() if l)
            print(f"{label}: OK ({lines} non-blank line(s))")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

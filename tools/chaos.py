#!/usr/bin/env python3
"""Chaos harness: seeded randomized fault schedules for the mediator.

Each seed deterministically generates one *schedule* — a scaled staff
scenario whose sources are wrapped in
:class:`~repro.reliability.faults.FaultInjectingSource` with randomly
drawn fault, latency, and death parameters, queried through a randomly
drawn mediator configuration (parallelism, caching, budgets, hedging).
The harness then asserts the invariants the resilience stack promises
*regardless* of the schedule:

* **completion** — a degrade-mode, truncate-budget mediator finishes
  every query; no run hangs past a generous real-time bound;
* **degrade ⊆ fault-free** — a degraded answer is a subset of the
  fault-free answer, never an invention;
* **budgets respected** — ``max_result_objects`` caps the answer size;
* **hedging is invisible in the result** — a hedged mediator's answer
  is bit-for-bit (structural key) equal to the unhedged answer over the
  same data;
* **no leaked hedges** — after a drain, no attempt is outstanding and
  the race accounting balances:
  ``hedge_wins + primary_wins == hedges_issued``;
* **concurrent serving is safe** (kind C) — many threads hammering one
  admission-gated mediator never deadlock, the gate's accounting
  balances exactly (``submitted == completed + shed``), no admitted
  query blows through its deadline budget, every completed answer is a
  subset of the fault-free answer (equal when the schedule injects no
  faults), and the controller drains clean.

Usage::

    PYTHONPATH=src python tools/chaos.py --seeds 25
    PYTHONPATH=src python tools/chaos.py --seeds 5 --quick --verbose
    PYTHONPATH=src python tools/chaos.py --kind concurrent --seeds 25

Exits 0 when every schedule holds every invariant, 1 otherwise.  The
same ``--base-seed`` always replays the same schedules.
"""

from __future__ import annotations

import argparse
import random
import sys
import threading
import time
from pathlib import Path

if __package__ in (None, ""):
    # runnable straight from a checkout: python tools/chaos.py
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.datasets import build_scaled_scenario
from repro.governor.budget import QueryBudget
from repro.mediator import Mediator
from repro.oem import structural_key
from repro.reliability import (
    FaultInjectingSource,
    HedgePolicy,
    ManualClock,
    ResilienceConfig,
    RetryPolicy,
)
from repro.reliability.clock import MonotonicClock
from repro.serving import AdmissionConfig, BulkheadRegistry, QueryRejected

QUERY = "S :- S:<cs_person {<rel 'student'>}>@med"

#: A schedule that takes longer than this (real seconds) counts as a
#: hang — fault latencies ride a ManualClock, so real time is pure
#: compute plus (for latency schedules) sub-millisecond thread waits.
HANG_BOUND = 60.0


def canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


def build_sources(scenario, rng, clock, **fault_kwargs):
    """Wrap the scenario's sources in seeded fault injectors."""
    injectors = {}
    for name in ("whois", "cs"):
        inner = scenario.registry.resolve(name)
        scenario.registry.deregister(name)
        injector = FaultInjectingSource(
            inner,
            seed=rng.randrange(2**31),
            clock=clock,
            **fault_kwargs,
        )
        injectors[name] = injector
        scenario.registry.register(injector)
    return injectors


def remake_mediator(scenario, **kwargs):
    return Mediator(
        "med",
        scenario.mediator.specification,
        scenario.registry,
        scenario.externals,
        push_mode="needed",
        register=False,
        **kwargs,
    )


class Violations(list):
    def check(self, condition, message):
        if not condition:
            self.append(message)


def run_fault_schedule(seed, quick, verbose):
    """Kind A: transient faults, dead sources, tight budgets — the run
    must complete in degrade+truncate mode with a subset answer."""
    rng = random.Random(seed)
    people = 8 if quick else rng.choice((10, 16, 24))
    parallelism = rng.choice((1, 2, 4, 8))
    use_cache = rng.random() < 0.5

    # the fault-free answer over the same data is the reference
    reference = build_scaled_scenario(people, seed=seed, push_mode="needed")
    fault_free = canonical(reference.mediator.answer(QUERY))

    scenario = build_scaled_scenario(people, seed=seed, push_mode="needed")
    clock = ManualClock()
    fault_kwargs = {
        "fault_rate": rng.choice((0.0, 0.1, 0.3)),
        "empty_rate": rng.choice((0.0, 0.1)),
        "latency": rng.choice((0.0, 0.005, 0.02)),
    }
    if rng.random() < 0.3:
        fault_kwargs["die_after"] = rng.randrange(2, 2 * people + 2)
    build_sources(scenario, rng, clock, **fault_kwargs)

    max_results = rng.choice((None, 2, people))
    budget = QueryBudget(
        deadline=rng.choice((None, 0.5, 5.0)),
        max_result_objects=max_results,
        max_total_rows=rng.choice((None, 50 * people)),
    )
    kwargs = dict(
        on_source_failure="degrade",
        resilience=ResilienceConfig(
            retry=RetryPolicy(
                max_attempts=rng.choice((1, 2, 3)),
                base_delay=0.01,
                jitter_mode=rng.choice(("equal", "full")),
            ),
            breaker_threshold=rng.choice((2, 5)),
            breaker_cooldown=1.0,
        ),
        adaptive_timeouts=rng.random() < 0.5,
        # half the schedules run the fused pipeline path, half the
        # node-per-operator reference path — faults, budgets, and
        # degrade warnings must behave identically under both
        fuse=rng.random() < 0.5,
        budget=budget,
        budget_mode="truncate",
        clock=clock,
        parallelism=parallelism,
    )
    if use_cache:
        from repro.exec import AnswerCache

        kwargs["cache"] = AnswerCache(max_entries=64)
    mediator = remake_mediator(scenario, **kwargs)

    violations = Violations()
    started = time.monotonic()
    rounds = 2 if quick else 3
    try:
        for round_index in range(rounds):
            results = mediator.answer(QUERY)
            answer = canonical(results)
            violations.check(
                set(answer) <= set(fault_free),
                f"degraded answer invents objects (round {round_index}):"
                f" {sorted(set(answer) - set(fault_free))[:3]}",
            )
            if max_results is not None:
                violations.check(
                    len(results) <= max_results,
                    f"answer size {len(results)} exceeds"
                    f" max_result_objects={max_results}",
                )
    except Exception as exc:  # completion invariant
        violations.append(
            f"degrade+truncate run raised {type(exc).__name__}: {exc}"
        )
    finally:
        mediator.dispatcher.shutdown()
    elapsed = time.monotonic() - started
    violations.check(
        elapsed < HANG_BOUND, f"schedule took {elapsed:.1f}s (hang?)"
    )
    if verbose:
        print(
            f"  faults: people={people} parallelism={parallelism}"
            f" cache={use_cache} faults={fault_kwargs}"
            f" budget=(deadline={budget.deadline},"
            f" max_results={max_results}) -> {len(violations)} violation(s)"
        )
    return violations


def run_latency_schedule(seed, quick, verbose):
    """Kind B: a heavy-tailed latency distribution, no faults — hedged
    and unhedged answers must be bit-for-bit equal, and the hedge
    accounting must balance once drained."""
    rng = random.Random(seed ^ 0x5A5A5A5A)
    people = 8 if quick else rng.choice((10, 16))
    parallelism = rng.choice((2, 4, 8))

    def make(hedge):
        scenario = build_scaled_scenario(
            people, seed=seed, push_mode="needed"
        )
        # a real clock (sleeps are tiny) so hedge timers actually race
        build_sources(
            scenario,
            random.Random(seed),
            MonotonicClock(),
            latency=0.0005,
            slow_rate=rng.choice((0.05, 0.15, 0.3)),
            slow_latency=rng.choice((0.01, 0.03)),
        )
        kwargs = dict(parallelism=parallelism)
        if hedge:
            kwargs["hedge"] = HedgePolicy(delay=0.0, min_delay=0.0)
        if rng.random() < 0.5:
            from repro.exec import AnswerCache

            kwargs["cache"] = AnswerCache(max_entries=64)
        return remake_mediator(scenario, **kwargs)

    violations = Violations()
    started = time.monotonic()
    unhedged = make(hedge=False)
    hedged = make(hedge=True)
    rounds = 2 if quick else 3
    try:
        expected = canonical(unhedged.answer(QUERY))
        for round_index in range(rounds):
            got = canonical(hedged.answer(QUERY))
            violations.check(
                got == expected,
                f"hedged answer differs from unhedged (round {round_index})",
            )
        coordinator = hedged.hedging
        violations.check(coordinator.drain(), "hedge attempts leaked")
        stats = coordinator.stats()
        violations.check(
            stats["outstanding"] == 0,
            f"outstanding attempts after drain: {stats['outstanding']}",
        )
        violations.check(
            stats["hedge_wins"] + stats["primary_wins"]
            == stats["hedges_issued"],
            f"hedge accounting does not balance: {stats}",
        )
    except Exception as exc:
        violations.append(
            f"latency schedule raised {type(exc).__name__}: {exc}"
        )
    finally:
        unhedged.dispatcher.shutdown()
        hedged.dispatcher.shutdown()
    elapsed = time.monotonic() - started
    violations.check(
        elapsed < HANG_BOUND, f"schedule took {elapsed:.1f}s (hang?)"
    )
    if verbose:
        stats = locals().get("stats", {})
        print(
            f"  latency: people={people} parallelism={parallelism}"
            f" hedges={stats.get('hedges_issued', '?')}"
            f" wins={stats.get('hedge_wins', '?')}"
            f" -> {len(violations)} violation(s)"
        )
    return violations


def run_concurrent_schedule(seed, quick, verbose):
    """Kind C: many threads against one admission-gated mediator.

    The harness submits a fixed batch of queries from 8–16 concurrent
    client threads with random tenants and priorities, then asserts
    the serving invariants: no deadlock (the batch finishes inside the
    hang bound), exact accounting (``submitted == completed + shed``
    from both the clients' and the controller's perspective), no
    admitted query exceeding its end-to-end deadline budget (queue
    wait is charged against it), subset-correct answers, and a fully
    drained controller afterwards.
    """
    rng = random.Random(seed ^ 0x3C3C3C3C)
    people = 8 if quick else rng.choice((10, 16))
    client_threads = rng.choice((8, 12, 16))
    queries_per_client = 2 if quick else 3
    parallelism = rng.choice((1, 2, 4))
    fault_rate = rng.choice((0.0, 0.0, 0.1, 0.3))
    latency = rng.choice((0.0, 0.001, 0.003))
    deadline = 10.0

    reference = build_scaled_scenario(people, seed=seed, push_mode="needed")
    fault_free = canonical(reference.mediator.answer(QUERY))

    scenario = build_scaled_scenario(people, seed=seed, push_mode="needed")
    # a real clock: concurrency is real threads racing, and queue wait
    # must be measured in the same time base the governor deadline uses
    build_sources(
        scenario,
        rng,
        MonotonicClock(),
        fault_rate=fault_rate,
        latency=latency,
    )

    kwargs = dict(
        on_source_failure="degrade",
        budget=QueryBudget(deadline=deadline),
        budget_mode="truncate",
        parallelism=parallelism,
        admission=AdmissionConfig(
            max_concurrent=rng.choice((2, 4)),
            max_queue_depth=rng.choice((8, 16, 64)),
            adaptive=rng.random() < 0.5,
        ),
    )
    if rng.random() < 0.5:
        kwargs["bulkheads"] = BulkheadRegistry(
            max_per_source=rng.choice((2, 4)), max_wait=5.0
        )
    if rng.random() < 0.5:
        from repro.exec import AnswerCache

        kwargs["cache"] = AnswerCache(max_entries=64)
    if rng.random() < 0.5:
        kwargs["resilience"] = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2, base_delay=0.001)
        )
    mediator = remake_mediator(scenario, **kwargs)

    violations = Violations()
    lock = threading.Lock()
    completed = []  # (canonical answer, end-to-end seconds)
    shed = []  # rejection reasons
    unexpected = []

    def client(index):
        thread_rng = random.Random((seed << 8) | index)
        for _ in range(queries_per_client):
            tenant = f"tenant{thread_rng.randrange(3)}"
            priority = thread_rng.randrange(3)
            started = time.monotonic()
            try:
                results = mediator.answer(
                    QUERY, tenant=tenant, priority=priority
                )
            except QueryRejected as exc:
                with lock:
                    shed.append(exc.reason)
            except Exception as exc:  # no other error is acceptable
                with lock:
                    unexpected.append(
                        f"{type(exc).__name__}: {exc}"
                    )
            else:
                elapsed = time.monotonic() - started
                with lock:
                    completed.append((canonical(results), elapsed))

    started = time.monotonic()
    workers = [
        threading.Thread(target=client, args=(index,), daemon=True)
        for index in range(client_threads)
    ]
    try:
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(HANG_BOUND)
        hung = [w for w in workers if w.is_alive()]
        violations.check(
            not hung,
            f"{len(hung)} client thread(s) still running after"
            f" {HANG_BOUND:.0f}s (deadlock?)",
        )
        if hung:
            return violations  # counters below would block/lie

        submitted = client_threads * queries_per_client
        violations.check(
            not unexpected,
            f"unexpected client errors: {unexpected[:3]}",
        )
        violations.check(
            len(completed) + len(shed) == submitted,
            f"accounting: {len(completed)} completed + {len(shed)} shed"
            f" != {submitted} submitted",
        )
        snapshot = mediator.admission.snapshot()
        violations.check(
            snapshot["submitted"]
            == snapshot["admitted"] + snapshot["shed"],
            f"controller accounting does not balance: {snapshot}",
        )
        violations.check(
            snapshot["admitted"] == snapshot["completed"],
            f"admitted != completed after drain: {snapshot}",
        )
        violations.check(
            snapshot["submitted"] == submitted,
            f"controller saw {snapshot['submitted']} of"
            f" {submitted} submissions",
        )
        violations.check(
            snapshot["inflight"] == 0 and snapshot["queue_depth"] == 0,
            f"controller not drained: {snapshot}",
        )
        # deadline invariant: admitted means "can finish in budget";
        # slack covers scheduler jitter around the governor's clock
        worst = max((elapsed for _, elapsed in completed), default=0.0)
        violations.check(
            worst <= deadline + 1.0,
            f"an admitted query took {worst:.2f}s against a"
            f" {deadline:.0f}s deadline budget",
        )
        for answer, _ in completed:
            violations.check(
                set(answer) <= set(fault_free),
                "a concurrent answer invents objects:"
                f" {sorted(set(answer) - set(fault_free))[:3]}",
            )
            if fault_rate == 0.0:
                violations.check(
                    answer == fault_free,
                    "fault-free concurrent answer differs from the"
                    " sequential reference",
                )
            if not violations:
                continue
            break
    finally:
        mediator.close()
    violations.check(
        mediator.closed and mediator.admission.closed,
        "close() did not propagate to the admission controller",
    )
    elapsed = time.monotonic() - started
    violations.check(
        elapsed < HANG_BOUND, f"schedule took {elapsed:.1f}s (hang?)"
    )
    if verbose:
        print(
            f"  concurrent: people={people} clients={client_threads}"
            f" parallelism={parallelism} faults={fault_rate}"
            f" -> {len(completed)} completed, {len(shed)} shed,"
            f" {len(violations)} violation(s)"
        )
    return violations


KINDS = (
    ("faults", run_fault_schedule),
    ("latency", run_latency_schedule),
    ("concurrent", run_concurrent_schedule),
)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="chaos",
        description="seeded randomized fault schedules for the mediator",
    )
    parser.add_argument(
        "--seeds", type=int, default=25, metavar="N",
        help="number of seeded schedules per kind (default: 25)",
    )
    parser.add_argument(
        "--base-seed", type=int, default=1996, metavar="SEED",
        help="first seed; schedules are base..base+N-1 (default: 1996)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller scenarios and fewer rounds per schedule",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="print one line per schedule",
    )
    parser.add_argument(
        "--kind",
        choices=tuple(name for name, _ in KINDS) + ("all",),
        default="all",
        help="run only one schedule kind (default: all)",
    )
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be at least 1")
    kinds = [
        (name, runner)
        for name, runner in KINDS
        if args.kind in ("all", name)
    ]

    failures = 0
    started = time.monotonic()
    for index in range(args.seeds):
        seed = args.base_seed + index
        for kind, runner in kinds:
            violations = runner(seed, args.quick, args.verbose)
            if violations:
                failures += 1
                print(f"FAIL seed={seed} kind={kind}")
                for violation in violations:
                    print(f"  - {violation}")
            elif args.verbose:
                print(f"ok   seed={seed} kind={kind}")
    elapsed = time.monotonic() - started
    total = args.seeds * len(kinds)
    print(
        f"chaos: {total - failures}/{total} schedule(s) clean"
        f" in {elapsed:.1f}s"
        + (f", {failures} FAILED" if failures else "")
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Experiments τ1/τ2 and S2 — Section 3.3: condition pushdown.

Regenerates the two pushdown rules (Q3/Q4) for the ``year = 3`` query
and runs the ablation the section motivates: *pushing selections down*
versus *materialize-the-view-then-filter*.  The paper's claim — pushdown
is the "well-known in relational DBs" optimization carried over to
nested objects — shows up as fewer objects shipped and less time, with
the gap widening with source size.
"""

import pytest

from repro.datasets import (
    MS1,
    YEAR3_QUERY,
    build_scaled_scenario,
    build_scenario,
)
from repro.mediator import ViewExpander
from repro.msl import evaluate_rule, parse_query, parse_specification


def test_tau1_tau2_artifact(artifact_sink, benchmark):
    expander = ViewExpander("med", parse_specification(MS1), push_mode="needed")
    query = parse_query(YEAR3_QUERY)
    program = benchmark(expander.expand, query)
    artifact_sink(
        "Section 3.3 — logical datamerge program Q3/Q4 (tau1/tau2)",
        str(program),
    )
    assert len(program) == 2


def selective_query(scenario):
    """A query selecting one person by an attribute only whois knows."""
    target = next(
        o for o in scenario.whois.export() if o.first("e_mail") is not None
    )
    return (
        f"X :- X:<cs_person {{<e_mail '{target.get('e_mail')}'>}}>@med",
        target.get("name"),
    )


@pytest.mark.parametrize("people", [100, 300])
def test_with_pushdown(people, benchmark):
    scenario = build_scaled_scenario(people, push_mode="needed")
    query, name = selective_query(scenario)
    result = benchmark(scenario.mediator.answer, query)
    assert any(o.get("name") == name for o in result)


@pytest.mark.parametrize("people", [100, 300])
def test_without_pushdown_materialize_then_filter(people, benchmark):
    """The ablation baseline: evaluate the whole view, filter at client."""
    scenario = build_scaled_scenario(people, push_mode="needed")
    query, name = selective_query(scenario)

    def materialize_and_filter():
        view = scenario.mediator.export()
        return evaluate_rule(
            parse_query(query),
            {"med": view, None: view},
            scenario.mediator.externals,
            check=False,
        )

    result = benchmark(materialize_and_filter)
    assert any(o.get("name") == name for o in result)


def test_pushdown_ships_fewer_objects(artifact_sink, benchmark):
    """The wire-cost side of the ablation (the series the harness reports)."""
    def series():
        rows = []
        for people in (50, 100, 200, 400):
            scenario = build_scaled_scenario(people, push_mode="needed")
            query, _ = selective_query(scenario)
            scenario.mediator.answer(query)
            pushed = scenario.mediator.last_context.total_objects

            scenario2 = build_scaled_scenario(people, push_mode="needed")
            scenario2.mediator.export()
            materialized = scenario2.mediator.last_context.total_objects
            rows.append((people, pushed, materialized))
            assert pushed < materialized
        return rows

    rows = benchmark.pedantic(series, rounds=1, iterations=1)

    table = "people  pushdown-objects  materialize-objects\n" + "\n".join(
        f"{p:>6}  {a:>16}  {b:>19}" for p, a, b in rows
    )
    artifact_sink("S2 — objects shipped: pushdown vs materialization", table)

"""Experiment O1 — cost and fidelity of the telemetry subsystem.

Two promises the observability layer must keep before it can sit in
every mediator (docs/observability.md):

* **cost** — telemetry off (the default) must leave the query path
  untouched: every emission site is one ``is not None`` check.  Even
  telemetry *on* with ``trace_sample_rate=0.0`` — the no-op-tracer
  path, where children of unsampled roots are a shared no-op span —
  must stay within noise of the bare engine (median paired ratio
  <= 1.02), and full tracing at ``sample_rate=1.0`` must cost at most
  15% on the scaling scenario;
* **fidelity** — a traced ``parallelism=8`` federated query must
  export (via JSONL) a single-rooted span tree whose ``source-call``
  spans match the ``SourceRegistry`` call counters *exactly*: a span
  is emitted when and only when a query actually ships.

Everything is deterministic: seeded scaled scenario, no faults, no
cache, unique per-person parameterized queries (so single-flight never
merges calls).
"""

import gc
import json
import time

from repro.datasets import build_scaled_scenario
from repro.mediator import Mediator
from repro.obs import JsonLinesExporter

PEOPLE = 50
SEGMENTS = 5
CYCLES = 10
WARMUP = 8
FANOUT_PEOPLE = 24
FANOUT_QUERY = "S :- S:<cs_person {<rel 'student'>}>@med"
JSON_FILE = "BENCH_obs.json"


def _mediator(scenario, **telemetry_kwargs):
    return Mediator(
        "med",
        scenario.mediator.specification,
        scenario.registry,
        scenario.externals,
        push_mode="needed",
        register=False,
        **telemetry_kwargs,
    )


def _overhead_segment(scenario, query, cycles=CYCLES, warmup=WARMUP):
    """Per-cycle paired ratios from one set of fresh mediators.

    Each cycle times the three configurations in palindrome order
    (``bare noop traced traced noop bare``), so linear drift within the
    ~50ms cycle cancels exactly and a load spike lands on all three
    alike.  A fresh mediator trio per segment keeps one instance's
    allocation-layout luck from biasing a whole run.
    """
    configs = {
        "bare": _mediator(scenario),
        "noop": _mediator(scenario, telemetry=True, trace_sample_rate=0.0),
        "traced": _mediator(scenario, telemetry=True, trace_sample_rate=1.0),
    }
    for mediator in configs.values():
        for _ in range(warmup):
            mediator.answer(query)
    tracer = configs["traced"].telemetry.tracer
    tracer.clear()
    order = ["bare", "noop", "traced", "traced", "noop", "bare"]
    ratios = []
    # collector pauses land on whole cycles otherwise (the suite runs
    # this module with a large heap from earlier benchmarks); collect
    # between cycles instead, outside the timed region
    gc.collect()
    gc.disable()
    try:
        for _ in range(cycles):
            timed = dict.fromkeys(configs, 0.0)
            for key in order:
                start = time.perf_counter()
                configs[key].answer(query)
                timed[key] += time.perf_counter() - start
            tracer.clear()
            gc.collect()
            ratios.append(
                (
                    timed["noop"] / timed["bare"],
                    timed["traced"] / timed["bare"],
                    timed["bare"] / 2.0,
                )
            )
    finally:
        gc.enable()
    return ratios


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def test_overhead_disabled_and_traced(
    artifact_sink, bench_json_sink, benchmark
):
    """Telemetry off / sampled-out / fully traced vs the bare engine.

    The workload is the federated fan-out query: per-person
    parameterized source calls doing real matching work, the shape
    telemetry is meant to observe.  Every measurement cycle times all
    three configurations back to back in palindrome order, the run is
    split across several fresh mediator trios, and the reported figure
    is the median of the pooled per-cycle paired ratios — a load
    spike, drift, or one instance's allocation-layout luck corrupts a
    few ratios; the median discards them.
    """
    scenario = build_scaled_scenario(PEOPLE, seed=1996, push_mode="needed")
    query = FANOUT_QUERY

    samples = []
    for _ in range(SEGMENTS):
        samples.extend(_overhead_segment(scenario, query))
    noop_ratio = _median([s[0] for s in samples])
    traced_ratio = _median([s[1] for s in samples])
    bare_ms = min(s[2] for s in samples) * 1e3
    noop_ms = bare_ms * noop_ratio
    traced_ms = bare_ms * traced_ratio

    artifact_sink(
        "telemetry overhead (scaled scenario)",
        f"people={PEOPLE} segments={SEGMENTS} cycles={CYCLES}\n"
        f"telemetry off     : {bare_ms:8.3f} ms/answer (baseline)\n"
        f"sample_rate=0.0   : {noop_ms:8.3f} ms/answer"
        f"  x{noop_ratio:.3f}  (target <= 1.02)\n"
        f"sample_rate=1.0   : {traced_ms:8.3f} ms/answer"
        f"  x{traced_ratio:.3f}  (target <= 1.15)",
    )
    bench_json_sink(
        JSON_FILE,
        "overhead",
        {
            "people": PEOPLE,
            "segments": SEGMENTS,
            "cycles": CYCLES,
            "query": query,
            "baseline_ms": round(bare_ms, 4),
            "sampled_out_ms": round(noop_ms, 4),
            "traced_ms": round(traced_ms, 4),
            "noop_median_paired_ratio": round(noop_ratio, 4),
            "traced_median_paired_ratio": round(traced_ratio, 4),
        },
    )

    result = benchmark(_mediator(scenario).answer, query)
    assert result
    assert noop_ratio <= 1.02, (
        f"no-op tracer overhead x{noop_ratio:.3f}, expected within noise"
    )
    assert traced_ratio <= 1.15, (
        f"full tracing overhead x{traced_ratio:.3f}, expected <= 1.15x"
    )


def test_parallel_trace_export_is_exact(
    artifact_sink, bench_json_sink, benchmark, tmp_path
):
    """A parallelism=8 JSONL trace is a tree and misses no source call."""
    scenario = build_scaled_scenario(
        FANOUT_PEOPLE, seed=1996, push_mode="needed"
    )
    mediator = _mediator(scenario, parallelism=8, telemetry=True)

    # the registered "med" mediator reports no wrapper counters ({})
    before = {
        name: stats.get("queries_answered", 0)
        for name, stats in scenario.registry.stats_snapshot().items()
    }
    mediator.answer(FANOUT_QUERY)
    shipped = {
        name: stats.get("queries_answered", 0) - before[name]
        for name, stats in scenario.registry.stats_snapshot().items()
    }

    trace_path = tmp_path / "trace.jsonl"
    JsonLinesExporter().export_path(
        str(trace_path),
        tracer=mediator.telemetry.tracer,
        registry=mediator.telemetry.metrics,
    )
    records = [
        json.loads(line)
        for line in trace_path.read_text().splitlines()
        if line
    ]
    spans = [r for r in records if r["record"] == "span"]
    assert spans and any(r["record"] == "metric" for r in records)

    # one query -> one root; every edge resolves inside the trace
    roots = [s for s in spans if s["parent_id"] is None]
    assert len(roots) == 1
    ids = {s["span_id"] for s in spans}
    assert all(
        s["parent_id"] in ids for s in spans if s["parent_id"] is not None
    )
    assert {s["query_id"] for s in spans} == {roots[0]["query_id"]}

    # source-call spans == actual wire traffic, per source, exactly
    observed: dict[str, int] = {}
    for span in spans:
        if span["kind"] == "source-call":
            observed[span["name"]] = observed.get(span["name"], 0) + 1
    for name, count in shipped.items():
        assert observed.get(name, 0) == count, (
            f"{name}: {observed.get(name, 0)} source-call span(s)"
            f" vs {count} shipped"
        )

    artifact_sink(
        "traced parallel fan-out (parallelism=8)",
        f"people={FANOUT_PEOPLE} query={FANOUT_QUERY!r}\n"
        f"spans exported : {len(spans)}\n"
        f"source calls   : "
        + ", ".join(
            f"{name}={count}" for name, count in sorted(shipped.items())
        )
        + "\nsource-call spans match registry counters exactly",
    )
    bench_json_sink(
        JSON_FILE,
        "parallel_trace_export",
        {
            "people": FANOUT_PEOPLE,
            "parallelism": 8,
            "query": FANOUT_QUERY,
            "spans_exported": len(spans),
            "roots": len(roots),
            "source_calls": {k: v for k, v in sorted(shipped.items())},
            "source_call_spans": {
                k: v for k, v in sorted(observed.items())
            },
        },
    )

    fresh = _mediator(scenario, parallelism=8, telemetry=True)
    benchmark(fresh.answer, FANOUT_QUERY)

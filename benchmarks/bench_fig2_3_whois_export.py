"""Experiment F2.3 — Figure 2.3: the ``whois`` semi-structured source.

Regenerates the figure's two irregular person objects and measures the
OEM store wrapper: parsing the paper's textual notation, answering
queries with and without the inverted index, and tolerance of
irregularity (objects missing fields cost nothing extra).
"""

import pytest

from repro.datasets import WHOIS_TEXT, build_scaled_scenario
from repro.msl import parse_rule
from repro.oem import parse_oem, to_text
from repro.wrappers import OEMStoreWrapper


def test_figure_2_3_artifact(artifact_sink, benchmark):
    objects = benchmark(parse_oem, WHOIS_TEXT)
    artifact_sink(
        "Figure 2.3 — OEM object structure of whois", to_text(objects)
    )
    joe, nick = objects
    assert joe.get("e_mail") == "chung@cs"  # &p1 has e_mail
    assert nick.first("e_mail") is None  # &p2 does not (irregularity)


@pytest.fixture(scope="module")
def scaled_whois():
    return build_scaled_scenario(500, seed=5).whois


SELECTIVE = "<n N> :- <person {<name N> <relation 'student'>}>"


def test_indexed_selective_query(scaled_whois, benchmark):
    query = parse_rule(SELECTIVE)
    result = benchmark(scaled_whois.answer, query)
    assert result


def test_unindexed_selective_query(scaled_whois, benchmark):
    plain = OEMStoreWrapper("w", scaled_whois.export(), indexed=False)
    query = parse_rule("<n N> :- <person {<name N> <relation 'student'>}>")
    result = benchmark(plain.answer, query)
    assert sorted(o.value for o in result) == sorted(
        o.value for o in scaled_whois.answer(parse_rule(SELECTIVE))
    )


def test_full_scan_query(scaled_whois, benchmark):
    query = parse_rule("<n N> :- <person {<name N> | R}>")
    result = benchmark(scaled_whois.answer, query)
    assert len(result) == len(scaled_whois)

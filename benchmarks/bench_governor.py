"""Experiment G1 — cost and effect of the query governor.

Two questions the governor must answer before it can sit on every
datamerge run:

* **overhead** — governing a run that stays within budget adds a row
  admission check per intermediate row and a checkpoint per node;
  against bare execution the end-to-end cost must stay within noise
  (the ungoverned hot path is untouched: tables without a governor
  bind the raw ``list.append``);
* **effect** — truncate-mode budgets must actually bound the work: as
  ``max_total_rows`` shrinks, admitted rows (and with them answer
  size) shrink monotonically while the run still completes.

Everything is deterministic: the workload is the seeded scaled
scenario and no budget in the overhead measurement ever fires.
"""

import time

from repro.datasets import build_scaled_scenario
from repro.governor import QueryBudget

PEOPLE = 200
ROUNDS = 30


def _query_for(scenario, index=PEOPLE // 2):
    name = scenario.whois.export()[index].get("name")
    return f"X :- X:<cs_person {{<name '{name}'>}}>@med"


def _time_answers(mediator, query, rounds=ROUNDS):
    start = time.perf_counter()
    for _ in range(rounds):
        mediator.answer(query)
    return (time.perf_counter() - start) / rounds


def test_overhead_within_budget(artifact_sink, benchmark):
    """Governed (budgets never firing) vs bare execution."""
    bare = build_scaled_scenario(PEOPLE, push_mode="needed")
    query = _query_for(bare)

    governed = build_scaled_scenario(PEOPLE, push_mode="needed")
    governed.mediator.budget = QueryBudget(
        deadline=3600.0,
        max_rows_per_table=10**9,
        max_total_rows=10**9,
        max_result_objects=10**9,
        max_external_calls=10**9,
    )

    # warm both paths, then interleave timed rounds
    bare.mediator.answer(query)
    governed.mediator.answer(query)
    # paired batches, median ratio: a load spike lands inside one pair
    # and corrupts one ratio; the median discards it.  min() keeps the
    # reported absolute times spike-free too.
    bare_time = governed_time = float("inf")
    ratios = []
    for _ in range(5):
        b = _time_answers(bare.mediator, query)
        g = _time_answers(governed.mediator, query)
        bare_time = min(bare_time, b)
        governed_time = min(governed_time, g)
        ratios.append(g / b)
    ratios.sort()
    overhead = ratios[len(ratios) // 2] - 1.0

    artifact_sink(
        "governor overhead (budgets never firing)",
        f"people={PEOPLE} rounds={ROUNDS}\n"
        f"bare     : {bare_time * 1e3:8.3f} ms/answer\n"
        f"governed : {governed_time * 1e3:8.3f} ms/answer\n"
        f"overhead : {overhead * 100:+.2f}%  (target: within noise)",
    )

    result = benchmark(governed.mediator.answer, query)
    assert len(result) <= 1
    # generous CI bound; the artifact records the real number
    assert overhead < 0.25, f"governor overhead {overhead:.1%}"


def test_truncation_bounds_work(artifact_sink, benchmark):
    """Admitted rows shrink monotonically with max_total_rows."""
    query = "X :- X:<cs_person {}>@med"
    rows = ["max_total_rows   rows admitted   answer objects   warnings"]
    admitted_curve = []
    for limit in (None, 400, 100, 25, 5):
        scenario = build_scaled_scenario(50, push_mode="needed")
        mediator = scenario.mediator
        mediator.budget = (
            QueryBudget(max_total_rows=limit) if limit else QueryBudget()
        )
        mediator.budget_mode = "truncate"
        results = mediator.query(query)
        governor = mediator.last_governor
        admitted = governor.total_rows if governor else 0
        admitted_curve.append((limit, admitted, len(results)))
        rows.append(
            f"{limit if limit else 'unlimited':>14}   {admitted:13d}"
            f"   {len(results):14d}   {len(results.warnings):8d}"
        )
        if limit is not None:
            assert admitted <= limit

    # shrinking budgets never admit more rows or return more objects
    for (_, high_rows, high_objs), (_, low_rows, low_objs) in zip(
        admitted_curve, admitted_curve[1:]
    ):
        assert low_rows <= high_rows
        assert low_objs <= high_objs

    artifact_sink(
        "governor truncation curve (seeded scaled scenario)",
        "\n".join(rows),
    )

    scenario = build_scaled_scenario(50, push_mode="needed")
    scenario.mediator.budget = QueryBudget(max_total_rows=100)
    scenario.mediator.budget_mode = "truncate"
    benchmark(scenario.mediator.answer, query)

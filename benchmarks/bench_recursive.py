"""Extension experiment — recursive views (footnote 4).

"MSL is more powerful than LOREL (e.g., MSL allows the specification of
recursive views)".  We measure naive-fixpoint evaluation of the
transitive-closure mediator over chains and random DAGs of growing
size: cost grows with |closure| (quadratic on a chain), and queries on
a recursive view pay the materialization.
"""

import pytest

from repro.mediator import Mediator
from repro.oem import atom, obj
from repro.wrappers import OEMStoreWrapper, SourceRegistry

SPEC = """
<path {<src X> <dst Y>}> :- <edge {<src X> <dst Y>}>@g ;
<path {<src X> <dst Z>}> :-
    <edge {<src X> <dst Y>}>@g AND <path {<src Y> <dst Z>}>@tc
"""


def chain_mediator(length: int) -> Mediator:
    edges = [
        obj("edge", atom("src", f"n{i}"), atom("dst", f"n{i + 1}"))
        for i in range(length)
    ]
    registry = SourceRegistry(OEMStoreWrapper("g", edges))
    return Mediator("tc", SPEC, registry)


@pytest.mark.parametrize("length", [4, 8, 16])
def test_transitive_closure_chain(length, benchmark):
    mediator = chain_mediator(length)
    closure = benchmark(mediator.export)
    # a chain of n edges has n(n+1)/2 paths
    assert len(closure) == length * (length + 1) // 2


def test_query_on_recursive_view(benchmark):
    mediator = chain_mediator(10)
    result = benchmark(
        mediator.answer, "P :- P:<path {<src 'n0'> <dst 'n10'>}>@tc"
    )
    assert len(result) == 1


def test_fixpoint_iteration_count(artifact_sink, benchmark):
    """Rounds needed = path length (semi-naive would do better)."""

    def measure():
        rows = []
        for length in (4, 8, 16):
            mediator = chain_mediator(length)
            closure = mediator.export()
            rows.append((length, len(closure)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = "chain-edges  closure-size\n" + "\n".join(
        f"{n:>11}  {c:>12}" for n, c in rows
    )
    artifact_sink("Extension — recursive view (transitive closure)", table)
    assert rows[-1][1] == 16 * 17 // 2

"""Experiment S1 — pipeline scaling with source size.

Our sweep (the paper reports no numbers): end-to-end mediation cost as
the sources grow, for a selective point query and the full-view export.
The shape to hold: point queries stay near-flat thanks to pushdown and
the whois index, while full materialization grows linearly-plus (every
person crosses the wire and joins).
"""

import time

import pytest

from repro.datasets import build_scaled_scenario

SIZES = [50, 100, 200, 400]


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@pytest.mark.parametrize("people", SIZES)
def test_point_query_scaling(people, benchmark):
    scenario = build_scaled_scenario(people, push_mode="needed")
    name = scenario.whois.export()[people // 2].get("name")
    query = f"X :- X:<cs_person {{<name '{name}'>}}>@med"
    result = benchmark(scenario.mediator.answer, query)
    assert len(result) <= 1


@pytest.mark.parametrize("people", SIZES)
def test_export_scaling(people, benchmark):
    scenario = build_scaled_scenario(people, push_mode="needed")
    view = benchmark(scenario.mediator.export)
    assert len(view) >= people * 0.7


def test_scaling_series(artifact_sink, benchmark):
    """The series the harness reports: one row per source size."""
    def series():
        rows = []
        for people in SIZES:
            scenario = build_scaled_scenario(people, push_mode="needed")
            name = scenario.whois.export()[people // 2].get("name")
            query = f"X :- X:<cs_person {{<name '{name}'>}}>@med"

            start = time.perf_counter()
            scenario.mediator.answer(query)
            point = time.perf_counter() - start

            start = time.perf_counter()
            view = scenario.mediator.export()
            full = time.perf_counter() - start
            rows.append((people, point * 1000, full * 1000, len(view)))
        return rows

    rows = benchmark.pedantic(series, rounds=1, iterations=1)

    table = (
        "people  point-query-ms  full-export-ms  view-size\n"
        + "\n".join(
            f"{p:>6}  {q:>14.2f}  {f:>14.2f}  {v:>9}" for p, q, f, v in rows
        )
    )
    artifact_sink("S1 — scaling with source size", table)
    # shape assertions: full export grows much faster than point queries
    first, last = rows[0], rows[-1]
    export_growth = last[2] / max(first[2], 1e-9)
    point_growth = last[1] / max(first[1], 1e-9)
    assert export_growth > point_growth


def test_backend_speedup_series(artifact_sink, benchmark):
    """Compiled-over-interpretive export speedup across source sizes.

    Both scenarios are built whole (wrappers included) with the chosen
    backend, so the ratio covers the entire mediation pipeline.
    """

    def series():
        rows = []
        for people in SIZES:
            interpretive = build_scaled_scenario(
                people, push_mode="needed", compile=False
            )
            compiled = build_scaled_scenario(
                people, push_mode="needed", compile=True
            )
            # warm both: the compiled side pays per-rule compilation on
            # the first export, then repeated (structurally equal)
            # source queries hit the compile cache — the steady state
            interpretive.mediator.export()
            compiled.mediator.export()
            slow = min(
                _timed(interpretive.mediator.export) for _ in range(2)
            )
            fast = min(
                _timed(compiled.mediator.export) for _ in range(2)
            )
            rows.append((people, slow * 1000, fast * 1000, slow / fast))
        return rows

    rows = benchmark.pedantic(series, rounds=1, iterations=1)
    table = (
        "people  interp-export-ms  compiled-export-ms  speedup\n"
        + "\n".join(
            f"{p:>6}  {s:>16.2f}  {f:>18.2f}  {x:>6.2f}x"
            for p, s, f, x in rows
        )
    )
    artifact_sink(
        "S1 — full-export scaling: interpretive vs compiled backend",
        table,
    )
    assert all(x > 0.8 for _, _, _, x in rows)  # never pathological

"""Extension experiment — shipping comparisons into capable sources.

When a source advertises ``supports_comparisons``, the optimizer moves
query comparisons (``Y > 2``) *into* the shipped query instead of
filtering at the mediator.  On selective comparisons this cuts the
objects crossing the wire; the answers are identical either way.
"""

import pytest

from repro.datasets import build_scaled_scenario
from repro.oem import structural_key
from repro.wrappers import Capability

PEOPLE = 200
#: students in year >= 5 are rare -> selective comparison
QUERY = (
    "S :- S:<cs_person {<rel 'student'> <year Y>}>@med AND Y >= 5"
)


def build(supports_comparisons: bool):
    scenario = build_scaled_scenario(PEOPLE, push_mode="needed")
    if not supports_comparisons:
        # replace cs's capability with one refusing comparisons
        scenario.cs._capability = Capability(
            supports_comparisons=False, name="nocmp"
        )
    return scenario


def test_shipped_comparisons(benchmark):
    scenario = build(True)
    result = benchmark(scenario.mediator.answer, QUERY)
    assert result


def test_mediator_side_comparisons(benchmark):
    scenario = build(False)
    result = benchmark(scenario.mediator.answer, QUERY)
    assert result


def test_identical_answers_fewer_objects(artifact_sink, benchmark):
    def series():
        rows = []
        answers = []
        for shipped in (True, False):
            scenario = build(shipped)
            result = scenario.mediator.answer(QUERY)
            answers.append(
                sorted(repr(structural_key(o)) for o in result)
            )
            context = scenario.mediator.last_context
            rows.append(
                (
                    "shipped" if shipped else "mediator-side",
                    len(result),
                    context.objects_received.get("cs", 0),
                )
            )
        assert answers[0] == answers[1]
        return rows

    rows = benchmark.pedantic(series, rounds=1, iterations=1)
    table = "mode           answers  objects-from-cs\n" + "\n".join(
        f"{m:<14} {a:>7} {o:>16}" for m, a, o in rows
    )
    artifact_sink("Extension — comparison shipping vs compensation", table)
    by_mode = {m: o for m, a, o in rows}
    assert by_mode["shipped"] <= by_mode["mediator-side"]

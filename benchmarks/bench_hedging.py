"""Experiment H1 — hedged requests under a heavy-tailed slow source.

The setup the hedge was built for: every source call normally answers
in ~4ms, but one source (``cs``) stalls at 20x that (80ms) on 10% of
its calls.  One stalled call then sets the whole answer's latency —
the classic fan-out tail.  The questions:

* **tail compression** — with hedging on (hedge delay ~2x the median),
  how much of the p99 does first-result-wins recover?  Target: >= 2x
  (asserted at ``parallelism=1``, where the seeded fault schedule —
  and therefore the measured tail — is deterministic: calls are
  sequential, so the injector's RNG draws happen in a fixed order.
  At higher parallelism worker interleaving makes the draw order, and
  with it the rare double-stall — both attempts of one hedged call
  drawing the 10% stall — nondeterministic, so those levels are
  reported but not asserted);
* **correctness** — hedged answers must be bit-for-bit (structural
  key) equal to unhedged answers, every round;
* **overhead** — what fraction of calls actually hedge?  Should track
  the stall rate, not explode.

Numbers land in ``benchmarks/BENCH_hedging.json`` (via
``bench_json_sink``) and in the artifacts file quoted by
EXPERIMENTS.md.
"""

import time

from repro.datasets import build_scaled_scenario
from repro.mediator import Mediator
from repro.oem import structural_key
from repro.reliability import FaultInjectingSource, HedgePolicy
from repro.reliability.clock import MonotonicClock

PEOPLE = 16
LATENCY = 0.004          # median per-call seconds (really slept)
SLOW_LATENCY = 0.08      # the heavy tail: 20x the median
SLOW_RATE = 0.10         # fraction of cs calls that stall
HEDGE_DELAY = 0.008      # ~2x median: hedge only genuine stragglers
ROUNDS = 14
FANOUT_QUERY = "S :- S:<cs_person {<rel 'student'>}>@med"
JSON_FILE = "BENCH_hedging.json"


def _canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


def _percentile(samples, quantile):
    ordered = sorted(samples)
    rank = max(1, -(-int(quantile * 100) * len(ordered) // 100))
    return ordered[min(rank, len(ordered)) - 1]


def _scenario(seed=1996):
    scenario = build_scaled_scenario(PEOPLE, seed=seed, push_mode="needed")
    clock = MonotonicClock()
    for name in ("whois", "cs"):
        inner = scenario.registry.resolve(name)
        scenario.registry.deregister(name)
        scenario.registry.register(
            FaultInjectingSource(
                inner,
                latency=LATENCY,
                slow_rate=SLOW_RATE if name == "cs" else 0.0,
                slow_latency=SLOW_LATENCY,
                seed=seed,
                clock=clock,
            )
        )
    return scenario


def _mediator(scenario, parallelism, hedge):
    kwargs = {}
    if hedge:
        # trigger off the median (x2), not the default p95: with a 10%
        # stall rate the p95 *is* the stall, and a p95-based delay
        # would wait out the very tail it should cut
        kwargs["hedge"] = HedgePolicy(
            delay=HEDGE_DELAY, quantile=0.5, multiplier=2.0
        )
    return Mediator(
        "med",
        scenario.mediator.specification,
        scenario.registry,
        scenario.externals,
        push_mode="needed",
        register=False,
        parallelism=parallelism,
        **kwargs,
    )


def _timed_answers(mediator, expected, rounds=ROUNDS):
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        results = mediator.answer(FANOUT_QUERY)
        samples.append(time.perf_counter() - start)
        assert _canonical(results) == expected
    return samples


def test_hedging_compresses_the_tail(artifact_sink, bench_json_sink,
                                     benchmark):
    """p50/p99 with and without hedging across parallelism levels."""
    expected = _canonical(
        _mediator(_scenario(), parallelism=1, hedge=False).answer(
            FANOUT_QUERY
        )
    )

    rows = ["parallelism   mode       p50       p99    hedge-rate"]
    levels = []
    ratios = {}
    for parallelism in (1, 4, 8):
        level = {"parallelism": parallelism}
        for hedge in (False, True):
            scenario = _scenario()
            mediator = _mediator(scenario, parallelism, hedge)
            try:
                samples = _timed_answers(mediator, expected)
                p50 = _percentile(samples, 0.50)
                p99 = _percentile(samples, 0.99)
                hedge_rate = 0.0
                if hedge:
                    assert mediator.hedging.drain()
                    stats = mediator.hedging.stats()
                    assert stats["outstanding"] == 0
                    assert (
                        stats["hedge_wins"] + stats["primary_wins"]
                        == stats["hedges_issued"]
                    )
                    hedge_rate = stats["hedges_issued"] / stats["calls"]
                mode = "hedged" if hedge else "unhedged"
                level[mode] = {
                    "p50_s": round(p50, 6),
                    "p99_s": round(p99, 6),
                    "hedge_rate": round(hedge_rate, 4),
                }
                rows.append(
                    f"{parallelism:11d}   {mode:8s}  {p50 * 1e3:7.2f}ms"
                    f"  {p99 * 1e3:7.2f}ms    {hedge_rate:8.3f}"
                )
            finally:
                mediator.dispatcher.shutdown()
        ratios[parallelism] = (
            level["unhedged"]["p99_s"] / level["hedged"]["p99_s"]
        )
        level["p99_ratio"] = round(ratios[parallelism], 3)
        levels.append(level)

    artifact_sink(
        "hedged requests vs the heavy tail",
        f"people={PEOPLE} median={LATENCY}s, cs stalls at"
        f" {SLOW_LATENCY}s ({SLOW_LATENCY / LATENCY:.0f}x) on"
        f" {SLOW_RATE:.0%} of calls, hedge after {HEDGE_DELAY}s\n"
        + "\n".join(rows) + "\n"
        + "\n".join(
            f"p99 ratio at parallelism={p}: {r:.2f}x"
            for p, r in ratios.items()
        ),
    )
    bench_json_sink(
        JSON_FILE,
        "tail_compression",
        {
            "people": PEOPLE,
            "median_latency_s": LATENCY,
            "slow_latency_s": SLOW_LATENCY,
            "slow_rate": SLOW_RATE,
            "slow_source": "cs",
            "hedge_delay_s": HEDGE_DELAY,
            "rounds": ROUNDS,
            "query": FANOUT_QUERY,
            "levels": levels,
        },
    )

    fast = _mediator(_scenario(), parallelism=4, hedge=True)
    try:
        benchmark(fast.answer, FANOUT_QUERY)
    finally:
        fast.dispatcher.shutdown()
    assert ratios[1] >= 2.0, (
        f"hedging cut p99 only {ratios[1]:.2f}x at parallelism=1,"
        " expected >= 2x"
    )
